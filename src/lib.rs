//! Umbrella crate for the ICDCS 2010 GPS direct-linearization reproduction.
//!
//! Re-exports the workspace crates so that examples and integration tests can
//! use a single dependency. See the individual crates for full documentation:
//! [`gps_core`] holds the paper's algorithms (NR, DLO, DLG), [`gps_sim`]
//! regenerates the paper's tables and figures.

pub use gps_atmosphere as atmosphere;
pub use gps_clock as clock;
pub use gps_core as core;
pub use gps_faults as faults;
pub use gps_geodesy as geodesy;
pub use gps_linalg as linalg;
pub use gps_obs as obs;
pub use gps_orbits as orbits;
pub use gps_pool as pool;
pub use gps_sim as sim;
pub use gps_time as time;
