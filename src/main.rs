//! `gps-repro` — command-line front end for the reproduction workspace.
//!
//! ```text
//! gps-repro generate --station SRZN --epochs 2880 --interval 30 --out srzn.obs
//! gps-repro info srzn.obs
//! gps-repro solve srzn.obs --algorithm dlg --satellites 8
//! gps-repro experiment fig51
//! gps-repro almanac --out gps.alm
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use gps_repro::core::{
    Bancroft, Dlg, Dlo, Engine, Epoch, EpochJob, NewtonRaphson, ParallelEngine, SolveContext,
    Solver,
};
use gps_repro::faults::FaultPlan;
use gps_repro::obs::{format, paper_stations, DataSet, DatasetGenerator};
use gps_repro::orbits::{yuma, Constellation};
use gps_repro::pool::ThreadPool;
use gps_repro::sim::{experiments, to_measurements, ExperimentConfig};
use gps_telemetry::{FileFormat, FileSink, Level, StderrSink};

fn usage() -> ExitCode {
    eprintln!(
        "gps-repro — ICDCS 2010 GPS direct-linearization reproduction

USAGE:
  gps-repro generate --station <SRZN|YYR1|FAI1|KYCP> [--epochs N] [--interval S]
                     [--seed N] [--mask DEG] --out <FILE>
  gps-repro info <FILE>
  gps-repro solve <FILE> [--algorithm nr|dlo|dlg|bancroft] [--satellites M]
  gps-repro engine <FILE> [--satellites M] [--epochs N]
  gps-repro throughput [--jobs N] [--epochs N] [--satellites M] [--seed N]
                       [--station <SRZN|YYR1|FAI1|KYCP>] [--quick]
  gps-repro experiment <table51|fig51|fig52|extensions|fault_campaign|all>
                       [--paper-scale|--quick] [--seed N]
  gps-repro almanac [--out <FILE>]

THROUGHPUT (parallel batch positioning):
  --jobs N              worker threads (default: available parallelism);
                        the epoch stream is sharded across them and merged
                        back in deterministic epoch order
  --epochs N            stream length (default 2000; --quick: 240)
  --satellites M        satellites per epoch (default 8)

FAULT CAMPAIGN (experiment fault_campaign):
  --faults <spec>       comma-separated scenarios to inject (default
                        dropout,ramp,blackout). Known scenarios: dropout,
                        blackout, step, ramp, clock-jump, multipath,
                        corrupt, stale-base
  --fault-seed N        fault-plan RNG seed (default 42), independent of
                        the dataset seed
  --all-stations        fan the campaign across all four paper stations in
                        parallel (--jobs N workers, default all cores)

TELEMETRY (any command):
  --log-level <trace|debug|info|warn|error>   human-readable events on stderr
  --telemetry-out <FILE>                      structured events + final metrics
                                              snapshot (enables detailed metrics)
  --metrics-format <jsonl|csv>                --telemetry-out format (default jsonl)"
    );
    ExitCode::FAILURE
}

/// Minimal flag parser: returns (positional args, flag lookups).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = if iter.peek().is_some_and(|v| !v.starts_with("--")) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_owned(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }
}

/// Wires up the `--log-level` / `--telemetry-out` / `--metrics-format`
/// sinks. Returns whether any sink was registered (so `main` knows to
/// write the final metrics snapshot).
fn init_telemetry(args: &Args) -> Result<bool, String> {
    for name in ["log-level", "telemetry-out", "metrics-format"] {
        if args.has(name) && args.flag(name).is_none() {
            return Err(format!("--{name} requires a value"));
        }
    }
    let mut active = false;
    if let Some(level) = args.flag("log-level") {
        let level: Level = level.parse()?;
        gps_telemetry::add_sink(level, Box::new(StderrSink));
        active = true;
    }
    if let Some(path) = args.flag("telemetry-out") {
        let format: FileFormat = args.flag("metrics-format").unwrap_or("jsonl").parse()?;
        let sink = FileSink::create(Path::new(path), format)
            .map_err(|e| format!("--telemetry-out {path}: {e}"))?;
        gps_telemetry::add_sink(Level::Trace, Box::new(sink));
        // File capture wants the expensive observations too (condition
        // numbers, covariance-assembly timing).
        gps_telemetry::set_detail(true);
        active = true;
    } else if args.has("metrics-format") {
        return Err("--metrics-format requires --telemetry-out".to_owned());
    }
    Ok(active)
}

fn load_dataset(path: &str) -> Result<DataSet, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let site = args.flag("station").ok_or("--station is required")?;
    let out = args.flag("out").ok_or("--out is required")?;
    let stations = paper_stations();
    let station = stations
        .iter()
        .find(|s| s.id() == site)
        .ok_or_else(|| format!("unknown station `{site}` (SRZN|YYR1|FAI1|KYCP)"))?;
    let epochs: usize = args.flag_parse("epochs", 2_880)?;
    let interval: f64 = args.flag_parse("interval", 30.0)?;
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let mask: f64 = args.flag_parse("mask", 5.0)?;

    let data = DatasetGenerator::new(seed)
        .epoch_interval_s(interval)
        .epoch_count(epochs)
        .elevation_mask_deg(mask)
        .generate(station);
    fs::write(out, format::write(&data)).map_err(|e| format!("{out}: {e}"))?;
    let (smin, smax) = data.satellite_count_range();
    println!(
        "wrote {out}: {} epochs @ {interval}s, {smin}-{smax} satellites/epoch",
        data.epochs().len()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("info needs a file argument")?;
    let data = load_dataset(path)?;
    let (smin, smax) = data.satellite_count_range();
    println!("station : {}", data.station());
    println!("epochs  : {}", data.epochs().len());
    println!("satellites/epoch: {smin}-{smax}");
    if let (Some(first), Some(last)) = (data.epochs().first(), data.epochs().last()) {
        println!(
            "span    : {} → {} ({:.1} h)",
            first.time(),
            last.time(),
            (last.time() - first.time()).as_hours()
        );
    }
    let resets = data
        .epochs()
        .iter()
        .filter(|e| e.truth().clock_reset)
        .count();
    println!("clock resets recorded: {resets}");
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("solve needs a file argument")?;
    let data = load_dataset(path)?;
    let algorithm = args.flag("algorithm").unwrap_or("dlg");
    let m: usize = args.flag_parse("satellites", usize::MAX)?;

    let solver: Box<dyn Solver> = match algorithm {
        "nr" => Box::new(NewtonRaphson::default()),
        "dlo" => Box::new(Dlo::default()),
        "dlg" => Box::new(Dlg::default()),
        "bancroft" => Box::new(Bancroft),
        other => return Err(format!("unknown algorithm `{other}`")),
    };

    // Clock prediction for the direct methods: true per-epoch bias is in
    // the file's truth channel; a production caller would run the
    // gps-clock predictor instead (see examples/clock_calibration.rs).
    let truth = data.station().position();
    let mut errors = gps_repro::core::metrics::Summary::new();
    let mut failures = 0usize;
    let mut ctx = SolveContext::new();
    for epoch in data.epochs() {
        let meas = to_measurements(&epoch.take_satellites(m));
        if meas.len() < solver.min_satellites() {
            failures += 1;
            continue;
        }
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        match solver.solve(&Epoch::new(&meas, bias), &mut ctx) {
            Ok(fix) => errors.push(fix.position.distance_to(truth)),
            Err(_) => failures += 1,
        }
    }
    println!(
        "{}: {} epochs solved, {} failed",
        solver.name(),
        errors.count(),
        failures
    );
    if errors.count() > 0 {
        println!(
            "position error vs station truth: mean {:.2} m, rms {:.2} m, max {:.2} m",
            errors.mean(),
            errors.rms(),
            errors.max()
        );
    }
    Ok(())
}

fn cmd_engine(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("engine needs a file argument")?;
    let data = load_dataset(path)?;
    let m: usize = args.flag_parse("satellites", usize::MAX)?;
    let limit: usize = args.flag_parse("epochs", usize::MAX)?;

    let truth = data.station().position();
    let mut engine = Engine::all_solvers();
    let mut errors = vec![gps_repro::core::metrics::Summary::new(); engine.lanes().len()];
    for epoch in data.epochs().iter().take(limit) {
        let meas = to_measurements(&epoch.take_satellites(m));
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        engine.run_epoch(&meas, bias);
        for (lane, err) in engine.lanes().iter().zip(errors.iter_mut()) {
            if let Some(Ok(fix)) = lane.last() {
                err.push(fix.position.distance_to(truth));
            }
        }
    }
    println!(
        "engine: {} epochs through {} lanes",
        engine.epochs(),
        engine.lanes().len()
    );
    for (lane, err) in engine.lanes().iter().zip(&errors) {
        let stats = lane.stats();
        println!(
            "  {:<9} solved {:>5}  failed {:>5}  mean {:>8.1} µs  rms err {:.2} m",
            lane.name(),
            stats.solved,
            stats.failed,
            stats.mean_time().as_secs_f64() * 1e6,
            err.rms()
        );
    }
    Ok(())
}

/// Builds the throughput workload: a generated dataset reduced to
/// owned per-epoch measurement batches with truth-channel clock
/// predictions (the same inputs `cmd_engine` feeds serially).
fn throughput_stream(station_id: &str, epochs: usize, m: usize, seed: u64) -> Vec<EpochJob> {
    let stations = paper_stations();
    let station = stations
        .iter()
        .find(|s| s.id() == station_id)
        .expect("validated by caller");
    let data = DatasetGenerator::new(seed)
        .epoch_interval_s(30.0)
        .epoch_count(epochs)
        .elevation_mask_deg(5.0)
        .generate(station);
    data.epochs()
        .iter()
        .map(|epoch| {
            let meas = to_measurements(&epoch.take_satellites(m));
            let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
            EpochJob::new(meas, bias)
        })
        .collect()
}

fn cmd_throughput(args: &Args) -> Result<(), String> {
    let quick = args.has("quick");
    let epochs: usize = args.flag_parse("epochs", if quick { 240 } else { 2_000 })?;
    let m: usize = args.flag_parse("satellites", 8)?;
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let jobs: usize = args.flag_parse("jobs", gps_repro::pool::available_parallelism())?;
    let station = args.flag("station").unwrap_or("SRZN");
    if !["SRZN", "YYR1", "FAI1", "KYCP"].contains(&station) {
        return Err(format!("unknown station `{station}` (SRZN|YYR1|FAI1|KYCP)"));
    }
    if epochs == 0 {
        return Err("--epochs must be at least 1".to_owned());
    }

    println!("throughput: {epochs} epochs × {m} satellites from {station} (seed {seed})");
    let stream = throughput_stream(station, epochs, m, seed);

    // Serial baseline: the batched Engine, timing disabled so both
    // paths run the identical per-epoch work and the wall clock is the
    // only measurement.
    let mut serial = Engine::all_solvers().with_timing(false);
    let serial_start = std::time::Instant::now();
    for job in &stream {
        serial.run_epoch(&job.measurements, job.predicted_receiver_bias_m);
    }
    let serial_elapsed = serial_start.elapsed();

    // Parallel run across the pool.
    let pool = ThreadPool::new(jobs);
    let run = ParallelEngine::all_solvers().run(&pool, stream);

    // Determinism spot check: the parallel merge must agree with the
    // serial engine on every lane's outcome tallies.
    for (lane, stats) in serial.lanes().iter().zip(&run.lane_stats) {
        if lane.stats().solved != stats.solved || lane.stats().failed != stats.failed {
            return Err(format!(
                "parallel/serial divergence on {}: serial {}/{} vs parallel {}/{}",
                lane.name(),
                lane.stats().solved,
                lane.stats().failed,
                stats.solved,
                stats.failed
            ));
        }
    }

    let serial_s = serial_elapsed.as_secs_f64();
    let parallel_s = run.elapsed.as_secs_f64();
    let speedup = if parallel_s > 0.0 {
        serial_s / parallel_s
    } else {
        0.0
    };
    println!(
        "serial   : {serial_s:>8.3} s  ({:>10.0} fixes/s total)",
        run.lane_stats.iter().map(|s| s.solved).sum::<u64>() as f64 / serial_s.max(1e-12)
    );
    println!(
        "parallel : {parallel_s:>8.3} s  ({:>10.0} fixes/s total)  jobs {}  speedup {speedup:.2}x",
        run.total_fixes_per_sec(),
        run.workers.len()
    );
    println!("per lane (fixes/s = solved epochs / batch wall-clock):");
    for (lane, stats) in run.lane_names.iter().zip(&run.lane_stats) {
        let serial_rate = stats.solved as f64 / serial_s.max(1e-12);
        let parallel_rate = stats.solved as f64 / parallel_s.max(1e-12);
        println!(
            "  {lane:<9} solved {:>6}  failed {:>4}  serial {serial_rate:>9.0}/s  parallel {parallel_rate:>9.0}/s  speedup {:>5.2}x",
            stats.solved,
            stats.failed,
            parallel_rate / serial_rate.max(1e-12),
        );
    }
    println!("per worker:");
    for w in &run.workers {
        println!(
            "  worker {:<2} epochs {:>6}  busy {:>8.3} s  utilization {:>5.1}%",
            w.worker,
            w.epochs,
            w.busy.as_secs_f64(),
            100.0 * w.utilization(run.elapsed)
        );
    }
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let which = args.positional.get(1).map(String::as_str).unwrap_or("all");
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let cfg = if args.has("paper-scale") {
        ExperimentConfig::paper_scale(seed)
    } else if args.has("quick") {
        ExperimentConfig::quick(seed)
    } else {
        ExperimentConfig::new(seed)
    };
    match which {
        "fault_campaign" => {
            let fault_seed: u64 = args.flag_parse("fault-seed", 42)?;
            let plan = match args.flag("faults") {
                Some(spec) => FaultPlan::from_spec(fault_seed, spec)?,
                None => FaultPlan::default_campaign(fault_seed),
            };
            if args.has("all-stations") {
                let jobs: usize =
                    args.flag_parse("jobs", gps_repro::pool::available_parallelism())?;
                for (label, report) in experiments::fault_campaign_fleet(&cfg, &plan, jobs) {
                    println!("== {label} ==");
                    println!("{report}");
                }
            } else {
                println!("{}", experiments::fault_campaign(&cfg, &plan));
            }
        }
        "table51" => println!("{}", experiments::table51(&cfg)),
        "fig51" => println!("{}", experiments::fig51(&cfg)),
        "fig52" => println!("{}", experiments::fig52(&cfg)),
        "extensions" => {
            println!("{}", experiments::ext_base_selection(&cfg));
            println!("{}", experiments::ext_gls_covariance(&cfg));
        }
        "all" => {
            println!("{}", experiments::table51(&cfg));
            println!("{}", experiments::fig51(&cfg));
            println!("{}", experiments::fig52(&cfg));
            println!("{}", experiments::ext_base_selection(&cfg));
            println!("{}", experiments::ext_gls_covariance(&cfg));
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    Ok(())
}

fn cmd_almanac(args: &Args) -> Result<(), String> {
    let text = yuma::write(&Constellation::gps_nominal());
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote YUMA almanac to {path} (31 satellites)");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1).collect());
    let Some(command) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    let telemetry = match init_telemetry(&args) {
        Ok(active) => active,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "generate" => cmd_generate(&args),
        "info" => cmd_info(&args),
        "solve" => cmd_solve(&args),
        "engine" => cmd_engine(&args),
        "throughput" => cmd_throughput(&args),
        "experiment" => cmd_experiment(&args),
        "almanac" => cmd_almanac(&args),
        _ => return usage(),
    };
    if telemetry {
        gps_telemetry::snapshot().write_to_sinks();
        gps_telemetry::flush();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
