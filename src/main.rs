//! `gps-repro` — command-line front end for the reproduction workspace.
//!
//! ```text
//! gps-repro generate --station SRZN --epochs 2880 --interval 30 --out srzn.obs
//! gps-repro info srzn.obs
//! gps-repro solve srzn.obs --algorithm dlg --satellites 8
//! gps-repro experiment fig51
//! gps-repro almanac --out gps.alm
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use gps_repro::core::{
    fleet_digest, replay_journal, Bancroft, Dlg, Dlo, Engine, Epoch, EpochJob, NewtonRaphson,
    ParallelEngine, SolveContext, Solver,
};
use gps_repro::faults::{FaultPlan, RuntimeFault, RuntimeFaultPlan};
use gps_repro::obs::{format, paper_stations, DataSet, DatasetGenerator};
use gps_repro::orbits::{yuma, Constellation};
use gps_repro::pool::ThreadPool;
use gps_repro::sim::{
    experiments, run_service_campaign, to_measurements, ExperimentConfig, ServiceCampaignConfig,
};
use gps_telemetry::{FileFormat, FileSink, Level, StderrSink};

fn usage() -> ExitCode {
    eprintln!(
        "gps-repro — ICDCS 2010 GPS direct-linearization reproduction

USAGE:
  gps-repro generate --station <SRZN|YYR1|FAI1|KYCP> [--epochs N] [--interval S]
                     [--seed N] [--mask DEG] --out <FILE>
  gps-repro info <FILE>
  gps-repro solve <FILE> [--algorithm nr|dlo|dlg|bancroft] [--satellites M]
  gps-repro engine <FILE> [--satellites M] [--epochs N]
  gps-repro throughput [--jobs N] [--epochs N] [--satellites M] [--seed N]
                       [--block-size N] [--station <SRZN|YYR1|FAI1|KYCP>] [--quick]
  gps-repro serve [--sessions N] [--rounds N] [--jobs N] [--deadline-us N]
                  [--queue-cap N] [--journal FILE] [--kill-after N]
                  [--truncate-tail BYTES] [--bench-out FILE] [--seed N] [--quick]
  gps-repro replay <JOURNAL> [--verify-digest HEX]
  gps-repro experiment <table51|fig51|fig52|theta_vs_m|extensions|fault_campaign|chaos|all>
                       [--paper-scale|--quick] [--seed N]
  gps-repro profile [<table51|fig51|fig52|extensions|all>] [--folded]
                    [--out <FILE>] [--seed N] [--paper-scale|--full]
  gps-repro inspect <DUMP> [--tail N] [--format text|json]
  gps-repro benchdiff [--baseline <FILE>] [--tolerance PCT] [--epochs N]
                      [--jobs N] [--quick]
  gps-repro almanac [--out <FILE>]

THROUGHPUT (parallel batch positioning):
  --jobs N              worker threads (default: available parallelism);
                        the epoch stream is sharded across them and merged
                        back in deterministic epoch order
  --epochs N            stream length (default 2000; --quick: 240)
  --satellites M        satellites per epoch (default 8)
  --block-size N        solve N same-shape epochs lock-step per lane via the
                        SoA EpochBlock path (default 1 = per-epoch feeding;
                        results are bit-identical at any block size)

SERVE (fleet-scale positioning service):
  runs a supervised multi-receiver service round by round: per-receiver
  sessions with warm clock state, deadline budgets, bounded shard queues
  with quality-ordered shedding, and an optional crash-safe journal
  --sessions N          receivers in the fleet (default 16; --quick 8)
  --rounds N            ingest rounds (default 48; --quick 16)
  --jobs N              pool workers (default 4)
  --deadline-us N       per-epoch deadline budget, µs (default 250000)
  --queue-cap N         per-shard queue capacity (default 64)
  --journal FILE        append every served epoch to a GPSJRNL1 journal
  --kill-after N        stop serving after round N (simulated crash; the
                        journal keeps whatever was durable at that point)
  --truncate-tail BYTES chop BYTES off the journal tail after the run
                        (simulated torn write from a SIGKILL mid-append)
  --bench-out FILE      write the campaign report as JSON

REPLAY (post-crash journal recovery):
  rebuilds every receiver session from a GPSJRNL1 journal, re-running each
  journaled epoch and checking outcome bits and digest chains record by
  record; exits nonzero on any mismatch or malformed frame
  --verify-digest HEX   also require the replayed fleet digest to equal HEX

CHAOS (experiment chaos):
  the serve fleet under a seeded chaos schedule — worker panic storms,
  worker kills, stall injection, ingest burst overload, journal tail
  truncation — layered over signal faults; exits nonzero below the SLOs
  --slo-availability PCT  fix-availability floor (default 95)
  --sessions/--rounds N   fleet shape (default 16 x 40; --quick 8 x 24)
  --runtime-faults <spec> comma-separated runtime faults (default all:
                          panic_storm,worker_kill,stall,burst,
                          journal_truncation)
  --journal FILE          keep the journal at FILE (default: temp file)
  --bench-out FILE        write the campaign report as JSON

FAULT CAMPAIGN (experiment fault_campaign):
  --faults <spec>       comma-separated scenarios to inject (default
                        dropout,ramp,blackout). Known scenarios: dropout,
                        blackout, step, ramp, clock-jump, multipath,
                        corrupt, stale-base
  --fault-seed N        fault-plan RNG seed (default 42), independent of
                        the dataset seed
  --all-stations        fan the campaign across all four paper stations in
                        parallel (--jobs N workers, default all cores)

PROFILE (sampling profiler over the span tree):
  runs the named experiment (default fig51, quick scale) and prints the
  span aggregate: per-stack count, total time and exact-tail latency
  --folded              flamegraph folded-stack lines (stack weight_µs)
  --out FILE            write the profile to FILE instead of stdout

INSPECT (decode a flight-recorder dump):
  --tail N              only the last N records per worker
  --format text|json    per-worker timeline (default text) or JSON lines

BENCHDIFF (throughput regression gate):
  re-measures the committed BENCH_throughput.json workload and exits
  nonzero when any lane regresses beyond tolerance
  --baseline FILE       baseline JSON (default BENCH_throughput.json)
  --tolerance PCT       allowed fixes/s drop vs baseline (default 25)
  --epochs N            epochs per measured stream (default 960; --quick 240)
  --jobs N              only measure baseline cells with jobs <= N

TELEMETRY (any command):
  --log-level <trace|debug|info|warn|error>   human-readable events on stderr
  --telemetry-out <FILE>                      structured events + final metrics
                                              snapshot (enables detailed metrics)
  --metrics-format <jsonl|csv>                --telemetry-out format (default jsonl)
  --flight-recorder <FILE>                    dump per-worker flight-recorder
                                              rings to FILE at exit (and on any
                                              worker panic)"
    );
    ExitCode::FAILURE
}

/// Minimal flag parser: returns (positional args, flag lookups).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = if iter.peek().is_some_and(|v| !v.starts_with("--")) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_owned(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }
}

/// Wires up the `--log-level` / `--telemetry-out` / `--metrics-format`
/// sinks. Returns whether any sink was registered (so `main` knows to
/// write the final metrics snapshot).
fn init_telemetry(args: &Args) -> Result<bool, String> {
    for name in [
        "log-level",
        "telemetry-out",
        "metrics-format",
        "flight-recorder",
    ] {
        if args.has(name) && args.flag(name).is_none() {
            return Err(format!("--{name} requires a value"));
        }
    }
    if let Some(path) = args.flag("flight-recorder") {
        gps_telemetry::recorder::recorder().set_dump_path(Some(Path::new(path).to_path_buf()));
    }
    let mut active = false;
    if let Some(level) = args.flag("log-level") {
        let level: Level = level.parse()?;
        gps_telemetry::add_sink(level, Box::new(StderrSink));
        active = true;
    }
    if let Some(path) = args.flag("telemetry-out") {
        let format: FileFormat = args.flag("metrics-format").unwrap_or("jsonl").parse()?;
        let sink = FileSink::create(Path::new(path), format)
            .map_err(|e| format!("--telemetry-out {path}: {e}"))?;
        gps_telemetry::add_sink(Level::Trace, Box::new(sink));
        // File capture wants the expensive observations too (condition
        // numbers, covariance-assembly timing).
        gps_telemetry::set_detail(true);
        active = true;
    } else if args.has("metrics-format") {
        return Err("--metrics-format requires --telemetry-out".to_owned());
    }
    Ok(active)
}

fn load_dataset(path: &str) -> Result<DataSet, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let site = args.flag("station").ok_or("--station is required")?;
    let out = args.flag("out").ok_or("--out is required")?;
    let stations = paper_stations();
    let station = stations
        .iter()
        .find(|s| s.id() == site)
        .ok_or_else(|| format!("unknown station `{site}` (SRZN|YYR1|FAI1|KYCP)"))?;
    let epochs: usize = args.flag_parse("epochs", 2_880)?;
    let interval: f64 = args.flag_parse("interval", 30.0)?;
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let mask: f64 = args.flag_parse("mask", 5.0)?;

    let data = DatasetGenerator::new(seed)
        .epoch_interval_s(interval)
        .epoch_count(epochs)
        .elevation_mask_deg(mask)
        .generate(station);
    fs::write(out, format::write(&data)).map_err(|e| format!("{out}: {e}"))?;
    let (smin, smax) = data.satellite_count_range();
    println!(
        "wrote {out}: {} epochs @ {interval}s, {smin}-{smax} satellites/epoch",
        data.epochs().len()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("info needs a file argument")?;
    let data = load_dataset(path)?;
    let (smin, smax) = data.satellite_count_range();
    println!("station : {}", data.station());
    println!("epochs  : {}", data.epochs().len());
    println!("satellites/epoch: {smin}-{smax}");
    if let (Some(first), Some(last)) = (data.epochs().first(), data.epochs().last()) {
        println!(
            "span    : {} → {} ({:.1} h)",
            first.time(),
            last.time(),
            (last.time() - first.time()).as_hours()
        );
    }
    let resets = data
        .epochs()
        .iter()
        .filter(|e| e.truth().clock_reset)
        .count();
    println!("clock resets recorded: {resets}");
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("solve needs a file argument")?;
    let data = load_dataset(path)?;
    let algorithm = args.flag("algorithm").unwrap_or("dlg");
    let m: usize = args.flag_parse("satellites", usize::MAX)?;

    let solver: Box<dyn Solver> = match algorithm {
        "nr" => Box::new(NewtonRaphson::default()),
        "dlo" => Box::new(Dlo::default()),
        "dlg" => Box::new(Dlg::default()),
        "bancroft" => Box::new(Bancroft),
        other => return Err(format!("unknown algorithm `{other}`")),
    };

    // Clock prediction for the direct methods: true per-epoch bias is in
    // the file's truth channel; a production caller would run the
    // gps-clock predictor instead (see examples/clock_calibration.rs).
    let truth = data.station().position();
    let mut errors = gps_repro::core::metrics::Summary::new();
    let mut failures = 0usize;
    let mut ctx = SolveContext::new();
    for epoch in data.epochs() {
        let meas = to_measurements(&epoch.take_satellites(m));
        if meas.len() < solver.min_satellites() {
            failures += 1;
            continue;
        }
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        match solver.solve(&Epoch::new(&meas, bias), &mut ctx) {
            Ok(fix) => errors.push(fix.position.distance_to(truth)),
            Err(_) => failures += 1,
        }
    }
    println!(
        "{}: {} epochs solved, {} failed",
        solver.name(),
        errors.count(),
        failures
    );
    if errors.count() > 0 {
        println!(
            "position error vs station truth: mean {:.2} m, rms {:.2} m, max {:.2} m",
            errors.mean(),
            errors.rms(),
            errors.max()
        );
    }
    Ok(())
}

fn cmd_engine(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("engine needs a file argument")?;
    let data = load_dataset(path)?;
    let m: usize = args.flag_parse("satellites", usize::MAX)?;
    let limit: usize = args.flag_parse("epochs", usize::MAX)?;

    let truth = data.station().position();
    let mut engine = Engine::all_solvers();
    let mut errors = vec![gps_repro::core::metrics::Summary::new(); engine.lanes().len()];
    for epoch in data.epochs().iter().take(limit) {
        let meas = to_measurements(&epoch.take_satellites(m));
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        engine.run_epoch(&meas, bias);
        for (lane, err) in engine.lanes().iter().zip(errors.iter_mut()) {
            if let Some(Ok(fix)) = lane.last() {
                err.push(fix.position.distance_to(truth));
            }
        }
    }
    println!(
        "engine: {} epochs through {} lanes",
        engine.epochs(),
        engine.lanes().len()
    );
    for (lane, err) in engine.lanes().iter().zip(&errors) {
        let stats = lane.stats();
        println!(
            "  {:<9} solved {:>5}  failed {:>5}  mean {:>8.1} µs  rms err {:.2} m",
            lane.name(),
            stats.solved,
            stats.failed,
            stats.mean_time().as_secs_f64() * 1e6,
            err.rms()
        );
    }
    Ok(())
}

/// Builds the throughput workload: a generated dataset reduced to
/// owned per-epoch measurement batches with truth-channel clock
/// predictions (the same inputs `cmd_engine` feeds serially).
fn throughput_stream(station_id: &str, epochs: usize, m: usize, seed: u64) -> Vec<EpochJob> {
    let stations = paper_stations();
    let station = stations
        .iter()
        .find(|s| s.id() == station_id)
        .expect("validated by caller");
    let data = DatasetGenerator::new(seed)
        .epoch_interval_s(30.0)
        .epoch_count(epochs)
        .elevation_mask_deg(5.0)
        .generate(station);
    data.epochs()
        .iter()
        .map(|epoch| {
            let meas = to_measurements(&epoch.take_satellites(m));
            let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
            EpochJob::new(meas, bias)
        })
        .collect()
}

fn cmd_throughput(args: &Args) -> Result<(), String> {
    let quick = args.has("quick");
    let epochs: usize = args.flag_parse("epochs", if quick { 240 } else { 2_000 })?;
    let m: usize = args.flag_parse("satellites", 8)?;
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let jobs: usize = args.flag_parse("jobs", gps_repro::pool::available_parallelism())?;
    let block_size: usize = args.flag_parse("block-size", 1)?;
    let station = args.flag("station").unwrap_or("SRZN");
    if !["SRZN", "YYR1", "FAI1", "KYCP"].contains(&station) {
        return Err(format!("unknown station `{station}` (SRZN|YYR1|FAI1|KYCP)"));
    }
    if epochs == 0 {
        return Err("--epochs must be at least 1".to_owned());
    }
    if block_size == 0 {
        return Err("--block-size must be at least 1".to_owned());
    }

    println!(
        "throughput: {epochs} epochs × {m} satellites from {station} \
         (seed {seed}, block size {block_size})"
    );
    let stream = throughput_stream(station, epochs, m, seed);

    // Serial baseline: the batched Engine, timing disabled so both
    // paths run the identical per-epoch work and the wall clock is the
    // only measurement. Block mode feeds the same engine through
    // lock-step EpochBlocks instead of epoch-by-epoch.
    let mut serial = Engine::all_solvers().with_timing(false);
    let serial_start = std::time::Instant::now();
    if block_size > 1 {
        serial.run_blocked(&stream, block_size);
    } else {
        for job in &stream {
            serial.run_epoch(&job.measurements, job.predicted_receiver_bias_m);
        }
    }
    let serial_elapsed = serial_start.elapsed();

    // Parallel run across the pool.
    let pool = ThreadPool::new(jobs);
    let engine = ParallelEngine::all_solvers();
    let run = if block_size > 1 {
        engine.run_blocked(&pool, std::sync::Arc::new(stream), block_size)
    } else {
        engine.run(&pool, stream)
    };

    // Determinism spot check: the parallel merge must agree with the
    // serial engine on every lane's outcome tallies.
    for (lane, stats) in serial.lanes().iter().zip(&run.lane_stats) {
        if lane.stats().solved != stats.solved || lane.stats().failed != stats.failed {
            return Err(format!(
                "parallel/serial divergence on {}: serial {}/{} vs parallel {}/{}",
                lane.name(),
                lane.stats().solved,
                lane.stats().failed,
                stats.solved,
                stats.failed
            ));
        }
    }

    let serial_s = serial_elapsed.as_secs_f64();
    let parallel_s = run.elapsed.as_secs_f64();
    let speedup = if parallel_s > 0.0 {
        serial_s / parallel_s
    } else {
        0.0
    };
    println!(
        "serial   : {serial_s:>8.3} s  ({:>10.0} fixes/s total)",
        run.lane_stats.iter().map(|s| s.solved).sum::<u64>() as f64 / serial_s.max(1e-12)
    );
    println!(
        "parallel : {parallel_s:>8.3} s  ({:>10.0} fixes/s total)  jobs {}  speedup {speedup:.2}x",
        run.total_fixes_per_sec(),
        run.workers.len()
    );
    println!("per lane (fixes/s = solved epochs / batch wall-clock):");
    for (lane, stats) in run.lane_names.iter().zip(&run.lane_stats) {
        let serial_rate = stats.solved as f64 / serial_s.max(1e-12);
        let parallel_rate = stats.solved as f64 / parallel_s.max(1e-12);
        println!(
            "  {lane:<9} solved {:>6}  failed {:>4}  serial {serial_rate:>9.0}/s  parallel {parallel_rate:>9.0}/s  speedup {:>5.2}x",
            stats.solved,
            stats.failed,
            parallel_rate / serial_rate.max(1e-12),
        );
    }
    println!("per worker:");
    for w in &run.workers {
        println!(
            "  worker {:<2} epochs {:>6}  busy {:>8.3} s  utilization {:>5.1}%",
            w.worker,
            w.epochs,
            w.busy.as_secs_f64(),
            100.0 * w.utilization(run.elapsed)
        );
    }
    // Exact-tail lane latency from the HDR histograms the parallel
    // lanes feed (core.lane_solve_us.<solver>, ≤ ~1 % relative error).
    let snap = gps_telemetry::snapshot();
    println!("lane latency, parallel solves (µs, exact-tail histogram):");
    for lane in &run.lane_names {
        let metric = format!("core.lane_solve_us.{lane}");
        let Some(h) = snap.histograms.iter().find(|h| h.name == metric) else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        println!(
            "  {lane:<9} p50 {:>8.1}  p90 {:>8.1}  p99 {:>8.1}  p999 {:>8.1}  max {:>8.1}",
            h.p50, h.p90, h.p99, h.p999, h.max
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let quick = args.has("quick");
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let mut cfg = ServiceCampaignConfig::quick(seed);
    cfg.sessions = args.flag_parse("sessions", if quick { 8 } else { 16 })?;
    cfg.rounds = args.flag_parse("rounds", if quick { 16 } else { 48 })?;
    cfg.service.workers = args.flag_parse("jobs", cfg.service.workers)?;
    cfg.service.queue_capacity = args.flag_parse("queue-cap", cfg.service.queue_capacity)?;
    let deadline_us: u64 = args.flag_parse("deadline-us", 250_000)?;
    if deadline_us == 0 {
        return Err("--deadline-us must be at least 1".to_owned());
    }
    cfg.service.deadline = Duration::from_micros(deadline_us);
    if cfg.sessions == 0 || cfg.rounds == 0 {
        return Err("--sessions and --rounds must be at least 1".to_owned());
    }
    if cfg.service.workers == 0 || cfg.service.queue_capacity == 0 {
        return Err("--jobs and --queue-cap must be at least 1".to_owned());
    }
    let kill_after: usize = args.flag_parse("kill-after", usize::MAX)?;
    if kill_after == 0 {
        return Err("--kill-after must be at least 1".to_owned());
    }
    if kill_after < cfg.rounds {
        println!(
            "serve: simulated crash — service killed after round {kill_after} of {}",
            cfg.rounds
        );
        cfg.rounds = kill_after;
    }
    cfg.journal = args.flag("journal").map(PathBuf::from);
    let truncate_tail: u64 = args.flag_parse("truncate-tail", 0)?;
    if truncate_tail > 0 {
        if cfg.journal.is_none() {
            return Err("--truncate-tail requires --journal".to_owned());
        }
        cfg.runtime_faults = Some(RuntimeFaultPlan::new(seed).with(
            RuntimeFault::JournalTruncation {
                cut_bytes: truncate_tail,
            },
        ));
    }
    let report = run_service_campaign(&cfg).map_err(|e| format!("serve: {e}"))?;
    println!("{report}");
    println!("fleet digest {:016x}", report.fleet_digest);
    if let Some(out) = args.flag("bench-out") {
        fs::write(out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("replay needs a journal file argument")?;
    let report = replay_journal(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "replay {path}: {} record(s), {} receiver(s), torn tail {}, malformed {}, mismatches {}",
        report.records,
        report.digests.len(),
        report.truncated,
        report.malformed,
        report.mismatches
    );
    let digest = fleet_digest(&report.digests);
    println!("fleet digest {digest:016x}");
    if let Some(expected) = args.flag("verify-digest") {
        let want = u64::from_str_radix(expected.trim_start_matches("0x"), 16)
            .map_err(|_| format!("--verify-digest: `{expected}` is not a hex digest"))?;
        if want != digest {
            return Err(format!(
                "fleet digest mismatch: journal replays to {digest:016x}, expected {want:016x}"
            ));
        }
        println!("fleet digest parity verified");
    }
    if !report.verified() {
        return Err(format!(
            "replay failed verification: {} mismatch(es), {} malformed record(s)",
            report.mismatches, report.malformed
        ));
    }
    Ok(())
}

fn cmd_chaos(args: &Args, seed: u64) -> Result<(), String> {
    let slo: f64 = args.flag_parse("slo-availability", 95.0)?;
    if !(0.0..=100.0).contains(&slo) {
        return Err("--slo-availability must be in [0, 100]".to_owned());
    }
    let mut cfg = ServiceCampaignConfig::chaos(seed);
    if args.has("quick") {
        cfg.sessions = 8;
        cfg.rounds = 24;
    }
    cfg.sessions = args.flag_parse("sessions", cfg.sessions)?;
    cfg.rounds = args.flag_parse("rounds", cfg.rounds)?;
    if cfg.sessions == 0 || cfg.rounds == 0 {
        return Err("--sessions and --rounds must be at least 1".to_owned());
    }
    if let Some(spec) = args.flag("runtime-faults") {
        cfg.runtime_faults = Some(RuntimeFaultPlan::from_spec(seed.wrapping_add(1), spec)?);
    }
    let keep_journal = args.flag("journal").is_some();
    let journal_path = args.flag("journal").map_or_else(
        || {
            std::env::temp_dir()
                .join(format!("gps-chaos-{}.jrnl", std::process::id()))
                .display()
                .to_string()
        },
        str::to_owned,
    );
    cfg.journal = Some(PathBuf::from(&journal_path));
    let report = run_service_campaign(&cfg).map_err(|e| format!("chaos: {e}"))?;
    println!("{report}");
    if let Some(out) = args.flag("bench-out") {
        fs::write(out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    if !keep_journal {
        let _ = fs::remove_file(&journal_path);
    }
    if !report.meets_slo(slo) {
        return Err(format!(
            "chaos SLO failed: availability {:.2}% (floor {slo}%), missed integrity {}, replay {}",
            report.availability_pct(),
            report.missed_integrity,
            report
                .journal
                .as_ref()
                .map_or("not run", |j| if j.replay_verified {
                    "verified"
                } else {
                    "FAILED"
                })
        ));
    }
    println!(
        "chaos SLOs met: availability {:.2}% >= {slo}%, zero missed integrity, replay verified",
        report.availability_pct()
    );
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let which = args.positional.get(1).map(String::as_str).unwrap_or("all");
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let cfg = if args.has("paper-scale") {
        ExperimentConfig::paper_scale(seed)
    } else if args.has("quick") {
        ExperimentConfig::quick(seed)
    } else {
        ExperimentConfig::new(seed)
    };
    match which {
        "chaos" => cmd_chaos(args, seed)?,
        "fault_campaign" => {
            let fault_seed: u64 = args.flag_parse("fault-seed", 42)?;
            let plan = match args.flag("faults") {
                Some(spec) => FaultPlan::from_spec(fault_seed, spec)?,
                None => FaultPlan::default_campaign(fault_seed),
            };
            if args.has("all-stations") {
                let jobs: usize =
                    args.flag_parse("jobs", gps_repro::pool::available_parallelism())?;
                for (label, report) in experiments::fault_campaign_fleet(&cfg, &plan, jobs) {
                    println!("== {label} ==");
                    println!("{report}");
                }
            } else {
                println!("{}", experiments::fault_campaign(&cfg, &plan));
            }
        }
        "table51" => println!("{}", experiments::table51(&cfg)),
        "fig51" => println!("{}", experiments::fig51(&cfg)),
        "fig52" => println!("{}", experiments::fig52(&cfg)),
        "theta_vs_m" => println!("{}", experiments::theta_vs_m(&cfg)),
        "extensions" => {
            println!("{}", experiments::ext_base_selection(&cfg));
            println!("{}", experiments::ext_gls_covariance(&cfg));
        }
        "all" => {
            println!("{}", experiments::table51(&cfg));
            println!("{}", experiments::fig51(&cfg));
            println!("{}", experiments::fig52(&cfg));
            println!("{}", experiments::theta_vs_m(&cfg));
            println!("{}", experiments::ext_base_selection(&cfg));
            println!("{}", experiments::ext_gls_covariance(&cfg));
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    Ok(())
}

/// Tabular span aggregate: one row per distinct span stack, with HDR
/// exact-tail quantiles in microseconds.
fn render_span_table(snap: &gps_telemetry::Snapshot) -> String {
    let mut out = String::from(
        "stack                                 count   total ms    mean µs     p50 µs     p99 µs\n",
    );
    let mut any = false;
    for h in &snap.histograms {
        let Some(stack) = h.name.strip_prefix("span.") else {
            continue;
        };
        any = true;
        let mean = if h.count > 0 {
            h.sum / h.count as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<36} {:>6} {:>10.2} {:>10.1} {:>10.1} {:>10.1}\n",
            stack,
            h.count,
            h.sum / 1e3,
            mean,
            h.p50,
            h.p99
        ));
    }
    if !any {
        out.push_str("(no spans recorded)\n");
    }
    out
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let which = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("fig51");
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    // Quick scale by default: the profile wants the span *shape*, not
    // paper-grade statistics.
    let cfg = if args.has("paper-scale") {
        ExperimentConfig::paper_scale(seed)
    } else if args.has("full") {
        ExperimentConfig::new(seed)
    } else {
        ExperimentConfig::quick(seed)
    };
    // Run the workload for its spans; the report itself is discarded
    // (use `experiment` for the numbers).
    let _report = match which {
        "table51" => experiments::table51(&cfg).to_string(),
        "fig51" => experiments::fig51(&cfg).to_string(),
        "fig52" => experiments::fig52(&cfg).to_string(),
        "extensions" => format!(
            "{}{}",
            experiments::ext_base_selection(&cfg),
            experiments::ext_gls_covariance(&cfg)
        ),
        "all" => format!(
            "{}{}{}{}{}",
            experiments::table51(&cfg),
            experiments::fig51(&cfg),
            experiments::fig52(&cfg),
            experiments::ext_base_selection(&cfg),
            experiments::ext_gls_covariance(&cfg)
        ),
        other => return Err(format!("unknown experiment `{other}`")),
    };
    let snap = gps_telemetry::snapshot();
    let rendered = if args.has("folded") {
        gps_telemetry::render_folded(&snap)
    } else {
        render_span_table(&snap)
    };
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {which} profile to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// One human-readable clause per flight record, decoding tags and the
/// error/quality code tables.
fn describe_record(r: &gps_telemetry::FlightRecord) -> String {
    use gps_repro::core::{FixQuality, SolveError};
    use gps_telemetry::recorder::tag_text;
    use gps_telemetry::RecordKind as K;
    match r.kind() {
        Some(K::SpanEnter) => format!("span_enter  {}", tag_text(r.a)),
        Some(K::SpanExit) => format!("span_exit   {} ({} µs)", tag_text(r.a), r.b),
        Some(K::JobStart) => format!("job_start   seq {}", r.a),
        Some(K::JobEnd) => format!("job_end     seq {} (busy {} µs)", r.a, r.b),
        Some(K::JobPanic) => format!("job_panic   seq {}", r.a),
        Some(K::EpochStart) => format!("epoch_start {} satellites", r.code),
        Some(K::LaneSolve) => format!("lane_solve  {} ({} ns)", tag_text(r.a), r.b),
        Some(K::LaneError) => format!(
            "lane_error  {} {} ({} ns)",
            tag_text(r.a),
            SolveError::code_name(r.code).unwrap_or("unknown_error"),
            r.b
        ),
        Some(K::FixQuality) => format!(
            "fix_quality {} via {} (rung {})",
            FixQuality::code_name(r.code).unwrap_or("unknown_quality"),
            tag_text(r.a),
            r.b
        ),
        Some(K::Marker) => format!("marker      {}", tag_text(r.a)),
        None => format!("kind {} code {} a {} b {}", r.kind, r.code, r.a, r.b),
    }
}

/// Minimal JSON string escaper for inspect's `--format json` output
/// (tags and kind names are ASCII, but stay safe on unknown input).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    use gps_telemetry::FlightDump;
    let path = args
        .positional
        .get(1)
        .ok_or("inspect needs a dump file argument")?;
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let dump = FlightDump::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let tail: usize = args.flag_parse("tail", usize::MAX)?;
    match args.flag("format").unwrap_or("text") {
        "json" => {
            for w in &dump.workers {
                let skip = w.records.len().saturating_sub(tail);
                for r in w.records.iter().skip(skip) {
                    let kind = r
                        .kind()
                        .map(|k| k.name().to_owned())
                        .unwrap_or_else(|| r.kind.to_string());
                    println!(
                        "{{\"worker\":{},\"t_us\":{},\"kind\":\"{}\",\"code\":{},\"epoch_id\":{},\"a\":{},\"b\":{},\"detail\":\"{}\"}}",
                        w.worker,
                        r.t_us,
                        json_escape(&kind),
                        r.code,
                        r.epoch_id,
                        r.a,
                        r.b,
                        json_escape(&describe_record(r))
                    );
                }
            }
        }
        "text" => {
            println!(
                "flight recorder dump {path}: {} worker(s), {} record(s), {} dropped",
                dump.workers.len(),
                dump.total_records(),
                dump.total_dropped()
            );
            for w in &dump.workers {
                println!(
                    "worker {}: {} record(s), {} dropped",
                    w.worker,
                    w.records.len(),
                    w.dropped
                );
                let skip = w.records.len().saturating_sub(tail);
                if skip > 0 {
                    println!("  … {skip} earlier record(s) hidden by --tail");
                }
                for r in w.records.iter().skip(skip) {
                    println!(
                        "  [{:>10} µs] epoch {:<5} {}",
                        r.t_us,
                        r.epoch_id,
                        describe_record(r)
                    );
                }
            }
        }
        other => return Err(format!("unknown --format `{other}` (text|json)")),
    }
    Ok(())
}

/// One (solver, jobs) cell parsed from the baseline JSON.
struct BaselineCell {
    solver: String,
    /// `"parallel"` = `ParallelEngine` across a pool, `"serial"` = the
    /// batched single-thread `Engine`. Baselines written before the SoA
    /// lane omit the key; they read back as parallel.
    mode: String,
    jobs: usize,
    /// Epochs per lock-step block (1 = per-epoch feeding). Missing key
    /// reads back as 1.
    block_size: usize,
    fixes_per_sec: f64,
}

/// The `hardware_threads` count from the baseline header, if present.
/// Only the text before the `results` array is scanned so a result-cell
/// key can never shadow the header; baselines written before the field
/// existed read back as `None`.
fn parse_baseline_threads(text: &str) -> Option<usize> {
    let header = text.split("\"results\"").next()?;
    let rest = header.split("\"hardware_threads\"").nth(1)?;
    let lit: String = rest
        .trim_start()
        .strip_prefix(':')?
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    lit.parse().ok()
}

/// Hand-rolled scanner for `BENCH_throughput.json` (no JSON dependency):
/// pulls `solver`, `jobs` and `fixes_per_sec` out of each object in the
/// `results` array. Tolerates reordered fields and extra keys; the
/// objects must not nest (the bench writer never nests them).
fn parse_baseline(text: &str) -> Result<Vec<BaselineCell>, String> {
    let results = text
        .split("\"results\"")
        .nth(1)
        .ok_or("baseline has no \"results\" array")?;
    let mut cells = Vec::new();
    for obj in results.split('{').skip(1) {
        let Some(body) = obj.split('}').next() else {
            continue;
        };
        let field = |key: &str| -> Option<&str> {
            let rest = body.split(&format!("\"{key}\"")).nth(1)?;
            rest.trim_start().strip_prefix(':').map(str::trim_start)
        };
        let solver = field("solver")
            .and_then(|v| v.strip_prefix('"'))
            .and_then(|v| v.split('"').next())
            .ok_or("result cell missing \"solver\"")?;
        let num = |key: &str| -> Result<f64, String> {
            let v = field(key).ok_or_else(|| format!("result cell missing \"{key}\""))?;
            let lit: String = v
                .chars()
                .take_while(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
                .collect();
            lit.parse()
                .map_err(|_| format!("cannot parse \"{key}\" value `{lit}`"))
        };
        let jobs = num("jobs")? as usize;
        let block_size = if field("block_size").is_some() {
            (num("block_size")? as usize).max(1)
        } else {
            1
        };
        let mode = field("mode")
            .and_then(|v| v.strip_prefix('"'))
            .and_then(|v| v.split('"').next())
            .unwrap_or("parallel");
        cells.push(BaselineCell {
            solver: solver.to_owned(),
            mode: mode.to_owned(),
            jobs,
            block_size,
            fixes_per_sec: num("fixes_per_sec")?,
        });
    }
    if cells.is_empty() {
        return Err("baseline contains no result cells".to_owned());
    }
    Ok(cells)
}

fn cmd_benchdiff(args: &Args) -> Result<(), String> {
    use gps_repro::sim::select_subset;
    use std::sync::Arc;

    let baseline_path = args.flag("baseline").unwrap_or("BENCH_throughput.json");
    let tolerance: f64 = args.flag_parse("tolerance", 25.0)?;
    let quick = args.has("quick");
    let epochs: usize = args.flag_parse("epochs", if quick { 240 } else { 960 })?;
    let jobs_cap: usize = args.flag_parse("jobs", usize::MAX)?;
    if epochs == 0 {
        return Err("--epochs must be at least 1".to_owned());
    }
    if !(0.0..100.0).contains(&tolerance) {
        return Err("--tolerance must be in [0, 100)".to_owned());
    }
    let text = fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let cells: Vec<BaselineCell> = parse_baseline(&text)?
        .into_iter()
        .filter(|c| c.jobs <= jobs_cap)
        .collect();
    if cells.is_empty() {
        return Err(format!("no baseline cells with jobs <= {jobs_cap}"));
    }

    // Rebuild the committed bench workload (crates/bench/benches/
    // throughput.rs): the SRZN fixture — 120 epochs at 30 s cadence,
    // 5° mask, 8 satellites, seed 2010 — cycled to the stream length
    // with zero predicted bias. fixes/s is a rate, so a shorter
    // `--epochs` stream stays comparable to the 960-epoch baseline.
    let stations = paper_stations();
    let data = DatasetGenerator::new(2_010)
        .epoch_interval_s(30.0)
        .epoch_count(120)
        .elevation_mask_deg(5.0)
        .generate(&stations[0]);
    let station = data.station().position();
    let base: Vec<Vec<gps_repro::core::Measurement>> = data
        .epochs()
        .iter()
        .filter(|e| e.observations().len() >= 8)
        .map(|e| to_measurements(&select_subset(station, e, 8)))
        .collect();
    if base.is_empty() {
        return Err("bench fixture yielded no epochs".to_owned());
    }
    let stream: Arc<Vec<EpochJob>> = Arc::new(
        (0..epochs)
            .map(|i| EpochJob::new(base[i % base.len()].clone(), 0.0))
            .collect(),
    );

    let roster = ParallelEngine::all_solvers();
    println!(
        "benchdiff vs {baseline_path}: {} cell(s), tolerance {tolerance}%, {epochs}-epoch streams",
        cells.len()
    );
    // Surface the baseline-vs-runner hardware mismatch in the header:
    // fixes/s cells recorded on a different core count are informational,
    // not regression-gate material, and the reader should see that before
    // the per-cell verdicts.
    let runner_threads = gps_repro::pool::available_parallelism();
    match parse_baseline_threads(&text) {
        Some(base_threads) if base_threads == runner_threads => {
            println!("  baseline and runner both have {runner_threads} hardware thread(s)");
        }
        Some(base_threads) => {
            println!(
                "  WARNING: baseline recorded on {base_threads} hardware thread(s), runner has \
                 {runner_threads} — parallel-cell deltas reflect the machine, not the code"
            );
        }
        None => {
            println!(
                "  baseline predates the hardware_threads field; runner has {runner_threads} \
                 hardware thread(s)"
            );
        }
    }
    let mut regressions = 0usize;
    let mut measured_cells = 0usize;
    for cell in &cells {
        let Some(solver) = roster.solvers().iter().find(|s| s.name() == cell.solver) else {
            println!(
                "  {:<9} jobs {:<2} unknown solver in baseline — skipped",
                cell.solver, cell.jobs
            );
            continue;
        };
        // One warm-up pass, then best-of-three: min is the least-noisy
        // estimator for a fixed workload on a shared machine. Serial
        // cells re-measure the single-thread Engine (block feeding);
        // parallel cells re-measure the pool path.
        let mut best = f64::INFINITY;
        if cell.mode == "serial" {
            let mut engine = Engine::new()
                .with_solver(solver.clone_box())
                .with_timing(false);
            for i in 0..4 {
                let start = std::time::Instant::now();
                let fed = engine.run_blocked(&stream, cell.block_size);
                let elapsed = start.elapsed().as_secs_f64();
                if fed != stream.len() {
                    return Err(format!(
                        "benchdiff: {} solved {fed} of {} epochs",
                        cell.solver,
                        stream.len()
                    ));
                }
                if i > 0 {
                    best = best.min(elapsed);
                }
            }
        } else {
            let engine = ParallelEngine::new().with_solver(solver.clone_box());
            let pool = ThreadPool::new(cell.jobs);
            for i in 0..4 {
                let start = std::time::Instant::now();
                let run = if cell.block_size > 1 {
                    engine.run_blocked(&pool, Arc::clone(&stream), cell.block_size)
                } else {
                    engine.run_shared(&pool, Arc::clone(&stream))
                };
                let elapsed = start.elapsed().as_secs_f64();
                if run.outcomes.len() != stream.len() {
                    return Err(format!(
                        "benchdiff: {} produced {} results for {} epochs",
                        cell.solver,
                        run.outcomes.len(),
                        stream.len()
                    ));
                }
                if i > 0 {
                    best = best.min(elapsed);
                }
            }
        }
        let measured = epochs as f64 / best.max(1e-12);
        measured_cells += 1;
        let floor = cell.fixes_per_sec * (1.0 - tolerance / 100.0);
        let verdict = if measured < floor {
            regressions += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {:<9} {:<8} jobs {:<2} bs {:<2} baseline {:>12.0}/s  measured {:>12.0}/s  ({:>+7.1}%)  {verdict}",
            cell.solver,
            cell.mode,
            cell.jobs,
            cell.block_size,
            cell.fixes_per_sec,
            measured,
            100.0 * (measured / cell.fixes_per_sec.max(1e-12) - 1.0)
        );
    }
    if regressions > 0 {
        return Err(format!(
            "benchdiff: {regressions} of {measured_cells} cell(s) regressed more than {tolerance}% below {baseline_path}"
        ));
    }
    println!("benchdiff: {measured_cells} cell(s) within {tolerance}% of baseline");
    Ok(())
}

fn cmd_almanac(args: &Args) -> Result<(), String> {
    let text = yuma::write(&Constellation::gps_nominal());
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote YUMA almanac to {path} (31 satellites)");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1).collect());
    let Some(command) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    let telemetry = match init_telemetry(&args) {
        Ok(active) => active,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "generate" => cmd_generate(&args),
        "info" => cmd_info(&args),
        "solve" => cmd_solve(&args),
        "engine" => cmd_engine(&args),
        "throughput" => cmd_throughput(&args),
        "serve" => cmd_serve(&args),
        "replay" => cmd_replay(&args),
        "experiment" => cmd_experiment(&args),
        "profile" => cmd_profile(&args),
        "inspect" => cmd_inspect(&args),
        "benchdiff" => cmd_benchdiff(&args),
        "almanac" => cmd_almanac(&args),
        _ => return usage(),
    };
    if telemetry {
        gps_telemetry::snapshot().write_to_sinks();
        gps_telemetry::flush();
    }
    // Final flight-recorder dump: a no-op unless --flight-recorder set
    // a dump path (a panic mid-run may already have written one; this
    // overwrites it with the complete picture).
    if let Some((path, io)) = gps_telemetry::recorder::recorder().dump_now() {
        match io {
            Ok(()) => eprintln!("flight recorder: wrote {}", path.display()),
            Err(e) => eprintln!("flight recorder: writing {} failed: {e}", path.display()),
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
