//! `gps-repro` — command-line front end for the reproduction workspace.
//!
//! ```text
//! gps-repro generate --station SRZN --epochs 2880 --interval 30 --out srzn.obs
//! gps-repro info srzn.obs
//! gps-repro solve srzn.obs --algorithm dlg --satellites 8
//! gps-repro experiment fig51
//! gps-repro almanac --out gps.alm
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use gps_repro::core::{Bancroft, Dlg, Dlo, Engine, Epoch, NewtonRaphson, SolveContext, Solver};
use gps_repro::faults::FaultPlan;
use gps_repro::obs::{format, paper_stations, DataSet, DatasetGenerator};
use gps_repro::orbits::{yuma, Constellation};
use gps_repro::sim::{experiments, to_measurements, ExperimentConfig};
use gps_telemetry::{FileFormat, FileSink, Level, StderrSink};

fn usage() -> ExitCode {
    eprintln!(
        "gps-repro — ICDCS 2010 GPS direct-linearization reproduction

USAGE:
  gps-repro generate --station <SRZN|YYR1|FAI1|KYCP> [--epochs N] [--interval S]
                     [--seed N] [--mask DEG] --out <FILE>
  gps-repro info <FILE>
  gps-repro solve <FILE> [--algorithm nr|dlo|dlg|bancroft] [--satellites M]
  gps-repro engine <FILE> [--satellites M] [--epochs N]
  gps-repro experiment <table51|fig51|fig52|extensions|fault_campaign|all>
                       [--paper-scale|--quick] [--seed N]
  gps-repro almanac [--out <FILE>]

FAULT CAMPAIGN (experiment fault_campaign):
  --faults <spec>       comma-separated scenarios to inject (default
                        dropout,ramp,blackout). Known scenarios: dropout,
                        blackout, step, ramp, clock-jump, multipath,
                        corrupt, stale-base
  --fault-seed N        fault-plan RNG seed (default 42), independent of
                        the dataset seed

TELEMETRY (any command):
  --log-level <trace|debug|info|warn|error>   human-readable events on stderr
  --telemetry-out <FILE>                      structured events + final metrics
                                              snapshot (enables detailed metrics)
  --metrics-format <jsonl|csv>                --telemetry-out format (default jsonl)"
    );
    ExitCode::FAILURE
}

/// Minimal flag parser: returns (positional args, flag lookups).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = if iter.peek().is_some_and(|v| !v.starts_with("--")) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_owned(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }
}

/// Wires up the `--log-level` / `--telemetry-out` / `--metrics-format`
/// sinks. Returns whether any sink was registered (so `main` knows to
/// write the final metrics snapshot).
fn init_telemetry(args: &Args) -> Result<bool, String> {
    for name in ["log-level", "telemetry-out", "metrics-format"] {
        if args.has(name) && args.flag(name).is_none() {
            return Err(format!("--{name} requires a value"));
        }
    }
    let mut active = false;
    if let Some(level) = args.flag("log-level") {
        let level: Level = level.parse()?;
        gps_telemetry::add_sink(level, Box::new(StderrSink));
        active = true;
    }
    if let Some(path) = args.flag("telemetry-out") {
        let format: FileFormat = args.flag("metrics-format").unwrap_or("jsonl").parse()?;
        let sink = FileSink::create(Path::new(path), format)
            .map_err(|e| format!("--telemetry-out {path}: {e}"))?;
        gps_telemetry::add_sink(Level::Trace, Box::new(sink));
        // File capture wants the expensive observations too (condition
        // numbers, covariance-assembly timing).
        gps_telemetry::set_detail(true);
        active = true;
    } else if args.has("metrics-format") {
        return Err("--metrics-format requires --telemetry-out".to_owned());
    }
    Ok(active)
}

fn load_dataset(path: &str) -> Result<DataSet, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let site = args.flag("station").ok_or("--station is required")?;
    let out = args.flag("out").ok_or("--out is required")?;
    let stations = paper_stations();
    let station = stations
        .iter()
        .find(|s| s.id() == site)
        .ok_or_else(|| format!("unknown station `{site}` (SRZN|YYR1|FAI1|KYCP)"))?;
    let epochs: usize = args.flag_parse("epochs", 2_880)?;
    let interval: f64 = args.flag_parse("interval", 30.0)?;
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let mask: f64 = args.flag_parse("mask", 5.0)?;

    let data = DatasetGenerator::new(seed)
        .epoch_interval_s(interval)
        .epoch_count(epochs)
        .elevation_mask_deg(mask)
        .generate(station);
    fs::write(out, format::write(&data)).map_err(|e| format!("{out}: {e}"))?;
    let (smin, smax) = data.satellite_count_range();
    println!(
        "wrote {out}: {} epochs @ {interval}s, {smin}-{smax} satellites/epoch",
        data.epochs().len()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("info needs a file argument")?;
    let data = load_dataset(path)?;
    let (smin, smax) = data.satellite_count_range();
    println!("station : {}", data.station());
    println!("epochs  : {}", data.epochs().len());
    println!("satellites/epoch: {smin}-{smax}");
    if let (Some(first), Some(last)) = (data.epochs().first(), data.epochs().last()) {
        println!(
            "span    : {} → {} ({:.1} h)",
            first.time(),
            last.time(),
            (last.time() - first.time()).as_hours()
        );
    }
    let resets = data
        .epochs()
        .iter()
        .filter(|e| e.truth().clock_reset)
        .count();
    println!("clock resets recorded: {resets}");
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("solve needs a file argument")?;
    let data = load_dataset(path)?;
    let algorithm = args.flag("algorithm").unwrap_or("dlg");
    let m: usize = args.flag_parse("satellites", usize::MAX)?;

    let solver: Box<dyn Solver> = match algorithm {
        "nr" => Box::new(NewtonRaphson::default()),
        "dlo" => Box::new(Dlo::default()),
        "dlg" => Box::new(Dlg::default()),
        "bancroft" => Box::new(Bancroft),
        other => return Err(format!("unknown algorithm `{other}`")),
    };

    // Clock prediction for the direct methods: true per-epoch bias is in
    // the file's truth channel; a production caller would run the
    // gps-clock predictor instead (see examples/clock_calibration.rs).
    let truth = data.station().position();
    let mut errors = gps_repro::core::metrics::Summary::new();
    let mut failures = 0usize;
    let mut ctx = SolveContext::new();
    for epoch in data.epochs() {
        let meas = to_measurements(&epoch.take_satellites(m));
        if meas.len() < solver.min_satellites() {
            failures += 1;
            continue;
        }
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        match solver.solve(&Epoch::new(&meas, bias), &mut ctx) {
            Ok(fix) => errors.push(fix.position.distance_to(truth)),
            Err(_) => failures += 1,
        }
    }
    println!(
        "{}: {} epochs solved, {} failed",
        solver.name(),
        errors.count(),
        failures
    );
    if errors.count() > 0 {
        println!(
            "position error vs station truth: mean {:.2} m, rms {:.2} m, max {:.2} m",
            errors.mean(),
            errors.rms(),
            errors.max()
        );
    }
    Ok(())
}

fn cmd_engine(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("engine needs a file argument")?;
    let data = load_dataset(path)?;
    let m: usize = args.flag_parse("satellites", usize::MAX)?;
    let limit: usize = args.flag_parse("epochs", usize::MAX)?;

    let truth = data.station().position();
    let mut engine = Engine::all_solvers();
    let mut errors = vec![gps_repro::core::metrics::Summary::new(); engine.lanes().len()];
    for epoch in data.epochs().iter().take(limit) {
        let meas = to_measurements(&epoch.take_satellites(m));
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        engine.run_epoch(&meas, bias);
        for (lane, err) in engine.lanes().iter().zip(errors.iter_mut()) {
            if let Some(Ok(fix)) = lane.last() {
                err.push(fix.position.distance_to(truth));
            }
        }
    }
    println!(
        "engine: {} epochs through {} lanes",
        engine.epochs(),
        engine.lanes().len()
    );
    for (lane, err) in engine.lanes().iter().zip(&errors) {
        let stats = lane.stats();
        println!(
            "  {:<9} solved {:>5}  failed {:>5}  mean {:>8.1} µs  rms err {:.2} m",
            lane.name(),
            stats.solved,
            stats.failed,
            stats.mean_time().as_secs_f64() * 1e6,
            err.rms()
        );
    }
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let which = args.positional.get(1).map(String::as_str).unwrap_or("all");
    let seed: u64 = args.flag_parse("seed", 2_010)?;
    let cfg = if args.has("paper-scale") {
        ExperimentConfig::paper_scale(seed)
    } else if args.has("quick") {
        ExperimentConfig::quick(seed)
    } else {
        ExperimentConfig::new(seed)
    };
    match which {
        "fault_campaign" => {
            let fault_seed: u64 = args.flag_parse("fault-seed", 42)?;
            let plan = match args.flag("faults") {
                Some(spec) => FaultPlan::from_spec(fault_seed, spec)?,
                None => FaultPlan::default_campaign(fault_seed),
            };
            println!("{}", experiments::fault_campaign(&cfg, &plan));
        }
        "table51" => println!("{}", experiments::table51(&cfg)),
        "fig51" => println!("{}", experiments::fig51(&cfg)),
        "fig52" => println!("{}", experiments::fig52(&cfg)),
        "extensions" => {
            println!("{}", experiments::ext_base_selection(&cfg));
            println!("{}", experiments::ext_gls_covariance(&cfg));
        }
        "all" => {
            println!("{}", experiments::table51(&cfg));
            println!("{}", experiments::fig51(&cfg));
            println!("{}", experiments::fig52(&cfg));
            println!("{}", experiments::ext_base_selection(&cfg));
            println!("{}", experiments::ext_gls_covariance(&cfg));
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    Ok(())
}

fn cmd_almanac(args: &Args) -> Result<(), String> {
    let text = yuma::write(&Constellation::gps_nominal());
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote YUMA almanac to {path} (31 satellites)");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1).collect());
    let Some(command) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    let telemetry = match init_telemetry(&args) {
        Ok(active) => active,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "generate" => cmd_generate(&args),
        "info" => cmd_info(&args),
        "solve" => cmd_solve(&args),
        "engine" => cmd_engine(&args),
        "experiment" => cmd_experiment(&args),
        "almanac" => cmd_almanac(&args),
        _ => return usage(),
    };
    if telemetry {
        gps_telemetry::snapshot().write_to_sinks();
        gps_telemetry::flush();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
