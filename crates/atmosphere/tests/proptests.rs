//! Randomized property tests for the signal error models.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops so the properties
//! still run in the fully offline build: each test draws its inputs
//! from a deterministic xoshiro256++ stream, so failures reproduce
//! exactly and need no external crates.

use gps_atmosphere::{
    ErrorBudget, Hopfield, Klobuchar, MultipathModel, ReceiverNoise, Saastamoinen,
};
use gps_geodesy::Geodetic;
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use gps_time::GpsTime;

const CASES: usize = 256;

fn random_station(rng: &mut StdRng) -> Geodetic {
    Geodetic::from_deg(
        rng.gen_range(-75.0..75.0),
        rng.gen_range(-179.0..179.0),
        rng.gen_range(0.0..4_000.0),
    )
}

#[test]
fn klobuchar_positive_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xA7_01);
    let k = Klobuchar::default();
    for _ in 0..CASES {
        let station = random_station(&mut rng);
        let el_deg = rng.gen_range(5.0..90.0);
        let az_deg = rng.gen_range(0.0..360.0);
        let tow = rng.gen_range(0.0..604_800.0);
        let d = k.slant_delay(
            station,
            el_deg.to_radians(),
            az_deg.to_radians(),
            GpsTime::new(1544, tow),
        );
        assert!(d > 0.0 && d < 150.0, "delay {d}");
    }
}

#[test]
fn troposphere_models_positive_and_ordered() {
    let mut rng = StdRng::seed_from_u64(0xA7_02);
    for _ in 0..CASES {
        let height = rng.gen_range(0.0..5_000.0);
        let el_deg = rng.gen_range(3.0..90.0);
        let saas = Saastamoinen::standard_at_height(height);
        let hop = Hopfield::standard_at_height(height);
        let el = el_deg.to_radians();
        let ds = saas.slant_delay(el);
        let dh = hop.slant_delay(el);
        assert!(ds > 0.0 && ds < 60.0, "saastamoinen {ds}");
        assert!(dh > 0.0 && dh < 60.0, "hopfield {dh}");
        // Models agree within 30% everywhere above 3°.
        assert!((ds - dh).abs() / ds < 0.3, "{ds} vs {dh} at {el_deg}°");
    }
}

#[test]
fn troposphere_monotone_in_elevation() {
    let mut rng = StdRng::seed_from_u64(0xA7_03);
    for _ in 0..CASES {
        let height = rng.gen_range(0.0..3_000.0);
        let lo: f64 = rng.gen_range(4.0..45.0);
        let delta = rng.gen_range(1.0..40.0);
        let saas = Saastamoinen::standard_at_height(height);
        let hi = (lo + delta).min(90.0);
        assert!(saas.slant_delay(lo.to_radians()) >= saas.slant_delay(hi.to_radians()));
    }
}

#[test]
fn multipath_and_noise_sigmas_decrease_with_elevation() {
    let mut rng = StdRng::seed_from_u64(0xA7_04);
    let mp = MultipathModel::default();
    let noise = ReceiverNoise::default();
    for _ in 0..CASES {
        let lo: f64 = rng.gen_range(0.0..0.5);
        let delta = rng.gen_range(0.05..1.0);
        let hi = (lo + delta).min(std::f64::consts::FRAC_PI_2);
        assert!(mp.sigma(lo) >= mp.sigma(hi));
        assert!(noise.sigma(lo) >= noise.sigma(hi) - 1e-12);
    }
}

#[test]
fn budget_samples_bounded() {
    let mut rng = StdRng::seed_from_u64(0xA7_05);
    let budget = ErrorBudget::default();
    for _ in 0..CASES {
        let station = random_station(&mut rng);
        let el_deg = rng.gen_range(5.0..90.0);
        let seed = rng.gen_range(0u64..1_000);
        let mut draw_rng = StdRng::seed_from_u64(seed);
        let s = budget.draw(
            station,
            el_deg.to_radians(),
            1.0,
            GpsTime::new(1544, 40_000.0),
            &mut draw_rng,
        );
        // 6-sigma-ish bound on a metre-level budget.
        assert!(s.total().abs() < 60.0, "total {}", s.total());
        assert!(s.iono.abs() < 50.0 && s.tropo.abs() < 20.0);
    }
}

#[test]
fn sigma_estimate_dominates_typical_components() {
    let mut rng = StdRng::seed_from_u64(0xA7_06);
    let budget = ErrorBudget::default();
    let dgps = ErrorBudget::dgps_corrected();
    let t = GpsTime::new(1544, 50_000.0);
    for _ in 0..CASES {
        let station = random_station(&mut rng);
        let el_deg = rng.gen_range(10.0..90.0);
        let sigma = budget.sigma_estimate(station, el_deg.to_radians(), 1.0, t);
        assert!(sigma > 0.3 && sigma < 30.0, "sigma {sigma}");
        // DGPS budget always tighter.
        assert!(dgps.sigma_estimate(station, el_deg.to_radians(), 1.0, t) < sigma);
    }
}
