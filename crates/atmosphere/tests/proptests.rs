//! Property-based tests for the signal error models.

use gps_atmosphere::{ErrorBudget, Hopfield, Klobuchar, MultipathModel, ReceiverNoise, Saastamoinen};
use gps_geodesy::Geodetic;
use gps_time::GpsTime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn station_strategy() -> impl Strategy<Value = Geodetic> {
    (-75.0f64..75.0, -179.0f64..179.0, 0.0f64..4_000.0)
        .prop_map(|(lat, lon, h)| Geodetic::from_deg(lat, lon, h))
}

proptest! {
    #[test]
    fn klobuchar_positive_and_bounded(
        station in station_strategy(),
        el_deg in 5.0f64..90.0,
        az_deg in 0.0f64..360.0,
        tow in 0.0f64..604_800.0,
    ) {
        let k = Klobuchar::default();
        let d = k.slant_delay(station, el_deg.to_radians(), az_deg.to_radians(),
            GpsTime::new(1544, tow));
        prop_assert!(d > 0.0 && d < 150.0, "delay {d}");
    }

    #[test]
    fn troposphere_models_positive_and_ordered(
        height in 0.0f64..5_000.0,
        el_deg in 3.0f64..90.0,
    ) {
        let saas = Saastamoinen::standard_at_height(height);
        let hop = Hopfield::standard_at_height(height);
        let el = el_deg.to_radians();
        let ds = saas.slant_delay(el);
        let dh = hop.slant_delay(el);
        prop_assert!(ds > 0.0 && ds < 60.0, "saastamoinen {ds}");
        prop_assert!(dh > 0.0 && dh < 60.0, "hopfield {dh}");
        // Models agree within 30% everywhere above 3°.
        prop_assert!((ds - dh).abs() / ds < 0.3, "{ds} vs {dh} at {el_deg}°");
    }

    #[test]
    fn troposphere_monotone_in_elevation(
        height in 0.0f64..3_000.0,
        lo in 4.0f64..45.0,
        delta in 1.0f64..40.0,
    ) {
        let saas = Saastamoinen::standard_at_height(height);
        let hi = (lo + delta).min(90.0);
        prop_assert!(saas.slant_delay(lo.to_radians()) >= saas.slant_delay(hi.to_radians()));
    }

    #[test]
    fn multipath_and_noise_sigmas_decrease_with_elevation(
        lo in 0.0f64..0.5,
        delta in 0.05f64..1.0,
    ) {
        let mp = MultipathModel::default();
        let noise = ReceiverNoise::default();
        let hi = (lo + delta).min(std::f64::consts::FRAC_PI_2);
        prop_assert!(mp.sigma(lo) >= mp.sigma(hi));
        prop_assert!(noise.sigma(lo) >= noise.sigma(hi) - 1e-12);
    }

    #[test]
    fn budget_samples_bounded(
        station in station_strategy(),
        el_deg in 5.0f64..90.0,
        seed in 0u64..1_000,
    ) {
        let budget = ErrorBudget::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = budget.draw(
            station,
            el_deg.to_radians(),
            1.0,
            GpsTime::new(1544, 40_000.0),
            &mut rng,
        );
        // 6-sigma-ish bound on a metre-level budget.
        prop_assert!(s.total().abs() < 60.0, "total {}", s.total());
        prop_assert!(s.iono.abs() < 50.0 && s.tropo.abs() < 20.0);
    }

    #[test]
    fn sigma_estimate_dominates_typical_components(
        station in station_strategy(),
        el_deg in 10.0f64..90.0,
    ) {
        let budget = ErrorBudget::default();
        let t = GpsTime::new(1544, 50_000.0);
        let sigma = budget.sigma_estimate(station, el_deg.to_radians(), 1.0, t);
        prop_assert!(sigma > 0.3 && sigma < 30.0, "sigma {sigma}");
        // DGPS budget always tighter.
        let dgps = ErrorBudget::dgps_corrected();
        prop_assert!(dgps.sigma_estimate(station, el_deg.to_radians(), 1.0, t) < sigma);
    }
}
