use gps_geodesy::Geodetic;
use gps_rng::Rng;
use gps_time::GpsTime;

use crate::multipath::gaussian;
use crate::{Klobuchar, MultipathModel, ReceiverNoise, Saastamoinen};

/// One drawn satellite-dependent error, broken into its physical
/// contributors (all metres, all applied to the pseudorange).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorSample {
    /// Residual ionospheric delay after the broadcast correction.
    pub iono: f64,
    /// Residual tropospheric delay after receiver modeling.
    pub tropo: f64,
    /// Multipath error.
    pub multipath: f64,
    /// Receiver tracking noise.
    pub noise: f64,
    /// Satellite clock/broadcast-ephemeris residual.
    pub sat_clock: f64,
}

impl ErrorSample {
    /// The total satellite-dependent error `εᵢˢ` (paper eq. 3-5), metres.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.iono + self.tropo + self.multipath + self.noise + self.sat_clock
    }
}

/// Composite error budget: draws the satellite-dependent error `εᵢˢ` of
/// the paper's pseudorange model (eq. 3-5) for one observation.
///
/// Every contributor is zero-mean and drawn independently per observation,
/// matching the optimality assumptions the paper places on the residuals
/// (eq. 4-14: zero-mean, common variance; eq. 4-15: independence across
/// satellites). The *scale* of each contributor follows the standard GPS
/// error budget for a 2009-era single-frequency geodetic receiver with
/// broadcast corrections applied.
///
/// # Example
///
/// ```
/// use gps_atmosphere::ErrorBudget;
/// use gps_geodesy::Geodetic;
/// use gps_time::GpsTime;
/// use gps_rng::SeedableRng;
///
/// let budget = ErrorBudget::default();
/// let mut rng = gps_rng::rngs::StdRng::seed_from_u64(1);
/// let sample = budget.draw(
///     Geodetic::from_deg(45.0, 7.0, 200.0),
///     40f64.to_radians(),
///     120f64.to_radians(),
///     GpsTime::new(1544, 120.0),
///     &mut rng,
/// );
/// assert!(sample.total().abs() < 30.0); // metre-level, not km-level
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    iono: Klobuchar,
    tropo: Saastamoinen,
    multipath: MultipathModel,
    noise: ReceiverNoise,
    /// RMS of the fractional ionospheric mismodeling (≈0.35: Klobuchar
    /// removes 50-60 % of the delay).
    iono_residual_fraction: f64,
    /// RMS of the fractional tropospheric mismodeling (≈0.05).
    tropo_residual_fraction: f64,
    /// RMS of the satellite clock + ephemeris residual, metres.
    sat_clock_sigma: f64,
}

impl ErrorBudget {
    /// Builds a budget from explicit component models.
    #[must_use]
    pub fn new(
        iono: Klobuchar,
        tropo: Saastamoinen,
        multipath: MultipathModel,
        noise: ReceiverNoise,
        iono_residual_fraction: f64,
        tropo_residual_fraction: f64,
        sat_clock_sigma: f64,
    ) -> Self {
        assert!(
            iono_residual_fraction >= 0.0,
            "fractions must be non-negative"
        );
        assert!(
            tropo_residual_fraction >= 0.0,
            "fractions must be non-negative"
        );
        assert!(sat_clock_sigma >= 0.0, "sigma must be non-negative");
        ErrorBudget {
            iono,
            tropo,
            multipath,
            noise,
            iono_residual_fraction,
            tropo_residual_fraction,
            sat_clock_sigma,
        }
    }

    /// A budget in which every error source is (numerically) switched off.
    /// Useful for exact-recovery tests: with no errors, every solver must
    /// reproduce the station coordinates to numerical precision.
    #[must_use]
    pub fn disabled() -> Self {
        ErrorBudget {
            iono: Klobuchar::default(),
            tropo: Saastamoinen::default(),
            multipath: MultipathModel::new(1e-30, 1.0),
            noise: ReceiverNoise::new(1e-30, 0.0),
            iono_residual_fraction: 0.0,
            tropo_residual_fraction: 0.0,
            sat_clock_sigma: 0.0,
        }
    }

    /// The default budget with every error source scaled by `factor` —
    /// the sensitivity-study knob ("would the paper's rates survive a
    /// noisier receiver / stormier ionosphere?").
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        ErrorBudget::new(
            Klobuchar::default(),
            Saastamoinen::default(),
            MultipathModel::new(0.5 * factor, 15.0f64.to_radians()),
            ReceiverNoise::new(0.25 * factor, 1.0),
            0.35 * factor,
            0.05 * factor,
            1.2 * factor,
        )
    }

    /// A reduced-noise budget approximating a DGPS-corrected receiver
    /// (paper §3.3 mentions DGPS compensation of satellite-dependent
    /// errors): atmospheric residuals shrink by ~5x, clock/ephemeris
    /// residual almost vanishes.
    #[must_use]
    pub fn dgps_corrected() -> Self {
        ErrorBudget {
            iono_residual_fraction: 0.07,
            tropo_residual_fraction: 0.01,
            sat_clock_sigma: 0.2,
            ..ErrorBudget::default()
        }
    }

    /// Draws the satellite-dependent error for one observation.
    pub fn draw<R: Rng + ?Sized>(
        &self,
        station: Geodetic,
        elevation_rad: f64,
        azimuth_rad: f64,
        t: GpsTime,
        rng: &mut R,
    ) -> ErrorSample {
        let iono_frac = gaussian(rng) * self.iono_residual_fraction;
        let tropo_frac = gaussian(rng) * self.tropo_residual_fraction;
        ErrorSample {
            iono: self
                .iono
                .residual_delay(station, elevation_rad, azimuth_rad, t, iono_frac),
            tropo: self.tropo.residual_delay(elevation_rad, tropo_frac),
            multipath: self.multipath.draw(elevation_rad, rng),
            noise: self.noise.draw(elevation_rad, rng),
            sat_clock: gaussian(rng) * self.sat_clock_sigma,
        }
    }

    /// Approximate 1-σ of the total error at the given elevation, by
    /// root-sum-square of the contributors (iono evaluated at the given
    /// geometry).
    #[must_use]
    pub fn sigma_estimate(
        &self,
        station: Geodetic,
        elevation_rad: f64,
        azimuth_rad: f64,
        t: GpsTime,
    ) -> f64 {
        let iono_sigma = self.iono_residual_fraction
            * self
                .iono
                .slant_delay(station, elevation_rad, azimuth_rad, t);
        let tropo_sigma = self.tropo_residual_fraction * self.tropo.slant_delay(elevation_rad);
        let mp = self.multipath.sigma(elevation_rad);
        let noise = self.noise.sigma(elevation_rad);
        (iono_sigma * iono_sigma
            + tropo_sigma * tropo_sigma
            + mp * mp
            + noise * noise
            + self.sat_clock_sigma * self.sat_clock_sigma)
            .sqrt()
    }
}

impl Default for ErrorBudget {
    /// Standard 2009-era single-frequency budget with broadcast
    /// corrections applied.
    fn default() -> Self {
        ErrorBudget::new(
            Klobuchar::default(),
            Saastamoinen::default(),
            MultipathModel::default(),
            ReceiverNoise::default(),
            0.35,
            0.05,
            1.2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_rng::rngs::StdRng;
    use gps_rng::SeedableRng;

    fn setup() -> (Geodetic, GpsTime) {
        (
            Geodetic::from_deg(45.0, 7.0, 200.0),
            GpsTime::new(1544, 30_000.0),
        )
    }

    #[test]
    fn disabled_budget_draws_zero() {
        let (station, t) = setup();
        let b = ErrorBudget::disabled();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let s = b.draw(station, 0.7, 1.0, t, &mut rng);
            assert!(s.total().abs() < 1e-20, "total {}", s.total());
        }
    }

    #[test]
    fn default_draws_zero_mean_metre_level() {
        let (station, t) = setup();
        let b = ErrorBudget::default();
        let mut rng = StdRng::seed_from_u64(2);
        let el = 40f64.to_radians();
        let n = 5_000;
        let totals: Vec<f64> = (0..n)
            .map(|_| b.draw(station, el, 1.0, t, &mut rng).total())
            .collect();
        let mean = totals.iter().sum::<f64>() / n as f64;
        let std = (totals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!(std > 0.5 && std < 6.0, "std {std}");
        // Sigma estimate should be in the same ballpark as the sample std.
        let est = b.sigma_estimate(station, el, 1.0, t);
        assert!((est - std).abs() / std < 0.35, "est {est} vs std {std}");
    }

    #[test]
    fn low_elevation_errors_larger() {
        let (station, t) = setup();
        let b = ErrorBudget::default();
        let low = b.sigma_estimate(station, 8f64.to_radians(), 1.0, t);
        let high = b.sigma_estimate(station, 80f64.to_radians(), 1.0, t);
        assert!(low > high, "low {low} high {high}");
    }

    #[test]
    fn dgps_budget_is_tighter() {
        let (station, t) = setup();
        let full = ErrorBudget::default();
        let dgps = ErrorBudget::dgps_corrected();
        let el = 30f64.to_radians();
        assert!(
            dgps.sigma_estimate(station, el, 1.0, t) < full.sigma_estimate(station, el, 1.0, t)
        );
    }

    #[test]
    fn sample_components_sum_to_total() {
        let (station, t) = setup();
        let b = ErrorBudget::default();
        let mut rng = StdRng::seed_from_u64(9);
        let s = b.draw(station, 0.9, 2.0, t, &mut rng);
        let sum = s.iono + s.tropo + s.multipath + s.noise + s.sat_clock;
        assert!((s.total() - sum).abs() < 1e-15);
    }

    #[test]
    fn scaled_budget_scales_sigma() {
        let (station, t) = setup();
        let el = 30f64.to_radians();
        let base = ErrorBudget::scaled(1.0).sigma_estimate(station, el, 1.0, t);
        let double = ErrorBudget::scaled(2.0).sigma_estimate(station, el, 1.0, t);
        let half = ErrorBudget::scaled(0.5).sigma_estimate(station, el, 1.0, t);
        assert!((double / base - 2.0).abs() < 1e-9);
        assert!((half / base - 0.5).abs() < 1e-9);
        // scaled(1.0) is the default budget.
        assert!((base - ErrorBudget::default().sigma_estimate(station, el, 1.0, t)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_zero() {
        let _ = ErrorBudget::scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_fraction() {
        let _ = ErrorBudget::new(
            Klobuchar::default(),
            Saastamoinen::default(),
            MultipathModel::default(),
            ReceiverNoise::default(),
            -0.1,
            0.05,
            1.0,
        );
    }
}
