use gps_rng::Rng;

/// Elevation-dependent multipath error model.
///
/// Reflected signal paths bias the code measurement; the effect shrinks
/// rapidly with elevation because reflections arrive from near the ground.
/// The standard budget model is a zero-mean error whose standard deviation
/// decays exponentially with elevation:
///
/// `σ(el) = σ₀ · exp(−el / el₀)`
///
/// with `σ₀ ≈ 0.5 m` of code multipath at the horizon and a decay constant
/// `el₀ ≈ 15°` for an open-sky geodetic station (CORS stations, as in the
/// paper's Table 5.1, use choke-ring antennas — low multipath).
///
/// # Example
///
/// ```
/// use gps_atmosphere::MultipathModel;
///
/// let mp = MultipathModel::default();
/// assert!(mp.sigma(10f64.to_radians()) > mp.sigma(60f64.to_radians()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultipathModel {
    /// Standard deviation at zero elevation, metres.
    sigma_horizon: f64,
    /// Elevation decay constant, radians.
    decay: f64,
}

impl MultipathModel {
    /// Creates a model with the given horizon sigma (m) and decay constant
    /// (radians).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    #[must_use]
    pub fn new(sigma_horizon_m: f64, decay_rad: f64) -> Self {
        assert!(sigma_horizon_m > 0.0, "sigma must be positive");
        assert!(decay_rad > 0.0, "decay constant must be positive");
        MultipathModel {
            sigma_horizon: sigma_horizon_m,
            decay: decay_rad,
        }
    }

    /// Standard deviation (metres) of the multipath error at the given
    /// elevation (radians).
    #[must_use]
    pub fn sigma(&self, elevation_rad: f64) -> f64 {
        self.sigma_horizon * (-elevation_rad.max(0.0) / self.decay).exp()
    }

    /// Draws one multipath error sample (metres) at the given elevation.
    pub fn draw<R: Rng + ?Sized>(&self, elevation_rad: f64, rng: &mut R) -> f64 {
        let sigma = self.sigma(elevation_rad);
        gaussian(rng) * sigma
    }
}

impl Default for MultipathModel {
    /// Geodetic-station defaults: 0.5 m at the horizon, 15° decay.
    fn default() -> Self {
        MultipathModel::new(0.5, 15.0f64.to_radians())
    }
}

/// Standard normal sample via Box–Muller (avoids pulling in
/// an external distributions crate — `gps-rng` is the only RNG dependency).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.standard_normal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_rng::rngs::StdRng;
    use gps_rng::SeedableRng;

    #[test]
    fn sigma_decays_with_elevation() {
        let mp = MultipathModel::default();
        assert!((mp.sigma(0.0) - 0.5).abs() < 1e-12);
        let at_15 = mp.sigma(15f64.to_radians());
        assert!((at_15 - 0.5 / std::f64::consts::E).abs() < 1e-12);
        assert!(mp.sigma(80f64.to_radians()) < 0.01);
    }

    #[test]
    fn negative_elevation_clamped() {
        let mp = MultipathModel::default();
        assert_eq!(mp.sigma(-0.5), mp.sigma(0.0));
    }

    #[test]
    fn draws_are_zero_mean_with_right_spread() {
        let mp = MultipathModel::default();
        let mut rng = StdRng::seed_from_u64(42);
        let el = 20f64.to_radians();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| mp.draw(el, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sigma = mp.sigma(el);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() - sigma).abs() / sigma < 0.05,
            "std {}",
            var.sqrt()
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_nonpositive_sigma() {
        let _ = MultipathModel::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn rejects_nonpositive_decay() {
        let _ = MultipathModel::new(0.5, 0.0);
    }
}
