/// The Hopfield tropospheric delay model — the classic alternative to
/// [`crate::Saastamoinen`], included for the model-choice ablation.
///
/// Hopfield models the dry and wet refractivity as quartic profiles up to
/// effective layer heights (`hd ≈ 40 km`, `hw ≈ 11 km`) and maps each to
/// the slant with its own elevation function. Sea-level zenith delays
/// agree with Saastamoinen to a few centimetres; the models diverge at
/// low elevation, which is exactly where the dataset error budget is
/// sensitive — hence the ablation.
///
/// # Example
///
/// ```
/// use gps_atmosphere::{Hopfield, Saastamoinen};
///
/// let hop = Hopfield::standard_at_height(0.0);
/// let saas = Saastamoinen::standard_at_height(0.0);
/// let el = 45f64.to_radians();
/// let diff = (hop.slant_delay(el) - saas.slant_delay(el)).abs();
/// assert!(diff < 0.3, "models agree to decimetres at mid elevation");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hopfield {
    /// Total pressure at the site, millibars.
    pressure: f64,
    /// Temperature at the site, kelvin.
    temperature: f64,
    /// Partial pressure of water vapour, millibars.
    vapour_pressure: f64,
}

impl Hopfield {
    /// Creates the model from explicit surface meteorology.
    ///
    /// # Panics
    ///
    /// Panics if pressure or temperature is non-positive.
    #[must_use]
    pub fn new(pressure_mbar: f64, temperature_k: f64, vapour_pressure_mbar: f64) -> Self {
        assert!(pressure_mbar > 0.0, "pressure must be positive");
        assert!(temperature_k > 0.0, "temperature must be positive");
        Hopfield {
            pressure: pressure_mbar,
            temperature: temperature_k,
            vapour_pressure: vapour_pressure_mbar.max(0.0),
        }
    }

    /// Standard-atmosphere meteorology at the given height (same profile
    /// as [`crate::Saastamoinen::standard_at_height`]).
    #[must_use]
    pub fn standard_at_height(height_m: f64) -> Self {
        let h = height_m.max(0.0);
        let p = 1013.25 * (1.0 - 2.2557e-5 * h).powf(5.2568);
        let t = 291.15 - 6.5e-3 * h;
        let rh = 0.5 * (-6.396e-4 * h).exp();
        let e = rh * 6.108 * ((17.15 * t - 4_684.0) / (t - 38.45)).exp();
        Hopfield::new(p, t, e)
    }

    /// Zenith dry delay, metres (Hopfield's quartic-profile integral).
    #[must_use]
    pub fn zenith_dry_delay(&self) -> f64 {
        // Kd = 1.552e-5 · P/T · hd, hd = 40136 + 148.72 (T − 273.16).
        let hd = 40_136.0 + 148.72 * (self.temperature - 273.16);
        1.552e-5 * self.pressure / self.temperature * hd
    }

    /// Zenith wet delay, metres.
    #[must_use]
    pub fn zenith_wet_delay(&self) -> f64 {
        // Kw = 7.46512e-2 · e/T² · hw, hw ≈ 11 000 m.
        let hw = 11_000.0;
        7.465_12e-2 * self.vapour_pressure / (self.temperature * self.temperature) * hw
    }

    /// Total slant delay (metres) at elevation `elevation_rad`, with
    /// Hopfield's separate dry/wet mapping functions
    /// `1/sin(sqrt(el² + cᵢ))`.
    #[must_use]
    pub fn slant_delay(&self, elevation_rad: f64) -> f64 {
        let el = elevation_rad.max(3.0f64.to_radians());
        let dry = self.zenith_dry_delay() / (el.powi(2) + 2.5f64.to_radians().powi(2)).sqrt().sin();
        let wet = self.zenith_wet_delay() / (el.powi(2) + 1.5f64.to_radians().powi(2)).sqrt().sin();
        dry + wet
    }

    /// Residual slant delay after receiver modeling with fractional
    /// mismodeling `imperfection` (cf.
    /// [`crate::Saastamoinen::residual_delay`]).
    #[must_use]
    pub fn residual_delay(&self, elevation_rad: f64, imperfection: f64) -> f64 {
        imperfection * self.slant_delay(elevation_rad)
    }
}

impl Default for Hopfield {
    /// Standard atmosphere at sea level.
    fn default() -> Self {
        Hopfield::standard_at_height(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Saastamoinen;

    #[test]
    fn sea_level_zenith_delays_sane() {
        let h = Hopfield::default();
        assert!(
            (h.zenith_dry_delay() - 2.3).abs() < 0.1,
            "dry {}",
            h.zenith_dry_delay()
        );
        assert!(h.zenith_wet_delay() > 0.05 && h.zenith_wet_delay() < 0.45);
    }

    #[test]
    fn agrees_with_saastamoinen_at_zenith() {
        for height in [0.0, 500.0, 2_000.0] {
            let hop = Hopfield::standard_at_height(height);
            let saas = Saastamoinen::standard_at_height(height);
            let zh = hop.zenith_dry_delay() + hop.zenith_wet_delay();
            let zs = saas.zenith_dry_delay() + saas.zenith_wet_delay();
            assert!((zh - zs).abs() < 0.15, "height {height}: {zh} vs {zs}");
        }
    }

    #[test]
    fn diverges_from_saastamoinen_at_low_elevation() {
        let hop = Hopfield::default();
        let saas = Saastamoinen::default();
        let low = 5f64.to_radians();
        let mid = 45f64.to_radians();
        let low_gap = (hop.slant_delay(low) - saas.slant_delay(low)).abs();
        let mid_gap = (hop.slant_delay(mid) - saas.slant_delay(mid)).abs();
        assert!(low_gap > mid_gap, "low {low_gap} vs mid {mid_gap}");
    }

    #[test]
    fn slant_monotone_and_finite() {
        let h = Hopfield::default();
        let mut prev = f64::INFINITY;
        for deg in [3.0, 5.0, 10.0, 20.0, 45.0, 90.0] {
            let d = h.slant_delay(f64::to_radians(deg));
            assert!(d.is_finite() && d > 0.0);
            assert!(d <= prev, "not monotone at {deg}");
            prev = d;
        }
        // Below the clamp everything equals the 3° value.
        assert_eq!(h.slant_delay(0.0), h.slant_delay(3.0f64.to_radians()));
    }

    #[test]
    fn height_reduces_delay() {
        let sea = Hopfield::standard_at_height(0.0);
        let alt = Hopfield::standard_at_height(3_000.0);
        assert!(alt.slant_delay(0.8) < sea.slant_delay(0.8));
    }

    #[test]
    fn residual_scaling() {
        let h = Hopfield::default();
        let el = 30f64.to_radians();
        assert!((h.residual_delay(el, 0.1) - 0.1 * h.slant_delay(el)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn rejects_bad_pressure() {
        let _ = Hopfield::new(-1.0, 290.0, 10.0);
    }
}
