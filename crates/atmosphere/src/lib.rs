//! GPS signal propagation error models.
//!
//! The paper's error model (§3.2, eq. 3-5) splits the measured pseudorange
//! into the true range plus a **receiver-dependent error** `εᴿ` (clock
//! bias, handled by the `gps-clock` crate) and a **satellite-dependent
//! error** `εᵢˢ`. The physical contributors to `εᵢˢ` that a real L1
//! observation carries are simulated here:
//!
//! * [`Klobuchar`] — ionospheric group delay (the full IS-GPS-200 broadcast
//!   model, including the receiver-side correction so *residual* iono error
//!   can be formed exactly the way a real receiver leaves it);
//! * [`Saastamoinen`] — tropospheric delay with a standard-atmosphere
//!   height profile and elevation mapping;
//! * [`MultipathModel`] — elevation-dependent multipath;
//! * [`ReceiverNoise`] — thermal noise as a function of C/N₀-like quality;
//! * [`SatelliteClockModel`] — per-SV clock polynomial plus broadcast
//!   residual;
//! * [`ErrorBudget`] — wires them together and draws one total
//!   satellite-dependent error per observation.
//!
//! The defining property the paper's proofs rely on (eq. 4-14/4-15) is that
//! residual satellite-dependent errors are zero-mean, equal-variance and
//! independent across satellites; [`ErrorBudget::draw`] produces exactly
//! that structure while keeping each contributor physically scaled.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod budget;
pub mod dualfreq;
mod hopfield;
mod klobuchar;
mod multipath;
mod noise;
mod satclock;
mod troposphere;

pub use budget::{ErrorBudget, ErrorSample};
pub use hopfield::Hopfield;
pub use klobuchar::{Klobuchar, KlobucharCoefficients};
pub use multipath::MultipathModel;
pub use noise::ReceiverNoise;
pub use satclock::SatelliteClockModel;
pub use troposphere::Saastamoinen;
