use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_rng::Rng;
use gps_time::GpsTime;

use crate::multipath::gaussian;

/// Per-satellite clock error model: the broadcast polynomial plus the
/// residual the broadcast correction cannot remove.
///
/// Each GPS satellite carries an atomic clock whose offset from GPS time is
/// broadcast as a quadratic polynomial `af0 + af1·Δt + af2·Δt²`. Receivers
/// *apply* that correction, so what survives into the paper's
/// satellite-dependent error `εᵢˢ` is only the broadcast-ephemeris residual
/// — zero-mean, metre-level (≈1–2 m RMS for the 2009-era legacy
/// accuracy), and independent across satellites, which is exactly the
/// structure assumed by the paper's eq. 4-14/4-15.
///
/// # Example
///
/// ```
/// use gps_atmosphere::SatelliteClockModel;
/// use gps_time::GpsTime;
///
/// let clock = SatelliteClockModel::new(1e-5, 1e-11, 0.0, GpsTime::EPOCH, 1.2);
/// // Raw offset near the reference epoch is close to af0 (in seconds).
/// let raw = clock.raw_offset_seconds(GpsTime::EPOCH);
/// assert!((raw - 1e-5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteClockModel {
    /// Clock bias at the reference epoch, seconds.
    af0: f64,
    /// Clock drift, s/s.
    af1: f64,
    /// Clock drift rate, s/s².
    af2: f64,
    /// Reference epoch of the polynomial.
    reference: GpsTime,
    /// RMS of the residual left after applying the broadcast correction,
    /// metres.
    residual_sigma: f64,
}

impl SatelliteClockModel {
    /// Creates a satellite clock model.
    ///
    /// # Panics
    ///
    /// Panics if `residual_sigma_m` is negative.
    #[must_use]
    pub fn new(af0: f64, af1: f64, af2: f64, reference: GpsTime, residual_sigma_m: f64) -> Self {
        assert!(
            residual_sigma_m >= 0.0,
            "residual sigma must be non-negative"
        );
        SatelliteClockModel {
            af0,
            af1,
            af2,
            reference,
            residual_sigma: residual_sigma_m,
        }
    }

    /// A typical 2009-era satellite clock: random af0 within ±1 ms, drift
    /// within ±1e-11 s/s, and a 1.2 m broadcast residual RMS.
    pub fn typical<R: Rng + ?Sized>(reference: GpsTime, rng: &mut R) -> Self {
        SatelliteClockModel {
            af0: (rng.gen::<f64>() - 0.5) * 2e-3,
            af1: (rng.gen::<f64>() - 0.5) * 2e-11,
            af2: 0.0,
            reference,
            residual_sigma: 1.2,
        }
    }

    /// The raw clock offset (seconds) at time `t` — what the broadcast
    /// polynomial models.
    #[must_use]
    pub fn raw_offset_seconds(&self, t: GpsTime) -> f64 {
        let dt = (t - self.reference).as_seconds();
        self.af0 + self.af1 * dt + self.af2 * dt * dt
    }

    /// The raw clock offset expressed as a range error, metres.
    #[must_use]
    pub fn raw_offset_meters(&self, t: GpsTime) -> f64 {
        self.raw_offset_seconds(t) * SPEED_OF_LIGHT
    }

    /// RMS (metres) of the post-correction residual.
    #[must_use]
    pub fn residual_sigma(&self) -> f64 {
        self.residual_sigma
    }

    /// Draws the residual range error (metres) that remains *after* the
    /// receiver applies the broadcast correction.
    pub fn draw_residual<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng) * self.residual_sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_rng::rngs::StdRng;
    use gps_rng::SeedableRng;
    use gps_time::Duration;

    #[test]
    fn polynomial_evaluation() {
        let c = SatelliteClockModel::new(1e-4, 1e-9, 1e-15, GpsTime::EPOCH, 1.0);
        let t = GpsTime::EPOCH + Duration::from_seconds(1_000.0);
        let expected = 1e-4 + 1e-9 * 1_000.0 + 1e-15 * 1.0e6;
        assert!((c.raw_offset_seconds(t) - expected).abs() < 1e-18);
        assert!((c.raw_offset_meters(t) - expected * SPEED_OF_LIGHT).abs() < 1e-6);
    }

    #[test]
    fn typical_clocks_in_spec() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let c = SatelliteClockModel::typical(GpsTime::EPOCH, &mut rng);
            assert!(c.raw_offset_seconds(GpsTime::EPOCH).abs() <= 1e-3);
            assert_eq!(c.residual_sigma(), 1.2);
        }
    }

    #[test]
    fn residual_statistics() {
        let c = SatelliteClockModel::new(0.0, 0.0, 0.0, GpsTime::EPOCH, 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| c.draw_residual(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((std - 1.5).abs() < 0.1, "std {std}");
    }

    #[test]
    fn zero_sigma_residual_is_zero() {
        let c = SatelliteClockModel::new(0.0, 0.0, 0.0, GpsTime::EPOCH, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(c.draw_residual(&mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = SatelliteClockModel::new(0.0, 0.0, 0.0, GpsTime::EPOCH, -1.0);
    }
}
