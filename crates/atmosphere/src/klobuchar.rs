use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_geodesy::Geodetic;
use gps_time::GpsTime;

/// The eight broadcast coefficients (α₀..α₃, β₀..β₃) of the Klobuchar
/// ionospheric model, as carried in the GPS navigation message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlobucharCoefficients {
    /// Amplitude coefficients α₀..α₃ (seconds, s/semicircle, ...).
    pub alpha: [f64; 4],
    /// Period coefficients β₀..β₃ (seconds, s/semicircle, ...).
    pub beta: [f64; 4],
}

impl Default for KlobucharCoefficients {
    /// Representative mid-solar-cycle broadcast values.
    fn default() -> Self {
        KlobucharCoefficients {
            alpha: [1.118e-8, 2.235e-8, -1.192e-7, -1.192e-7],
            beta: [1.167e5, 1.802e5, -1.311e5, -4.588e5],
        }
    }
}

/// The Klobuchar single-layer ionospheric delay model (IS-GPS-200,
/// 20.3.3.5.2.5).
///
/// Models the L1 group delay as a half-cosine diurnal bump over a constant
/// 5 ns night floor, evaluated at the ionospheric pierce point. Real
/// receivers *apply* this broadcast model as a correction; the residual
/// (typically 40–50 % of the raw delay) is what survives into `εᵢˢ`.
/// [`Klobuchar::residual_delay`] models that remainder.
///
/// # Example
///
/// ```
/// use gps_atmosphere::Klobuchar;
/// use gps_geodesy::Geodetic;
/// use gps_time::GpsTime;
///
/// let iono = Klobuchar::default();
/// let station = Geodetic::from_deg(45.0, 7.0, 0.0);
/// let delay = iono.slant_delay(
///     station,
///     50f64.to_radians(), // elevation
///     180f64.to_radians(), // azimuth
///     GpsTime::new(1544, 43_200.0), // local noon-ish
/// );
/// // L1 iono delay is between ~1.5 m (night floor) and ~30 m.
/// assert!(delay > 1.0 && delay < 40.0, "{delay}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Klobuchar {
    coefficients: KlobucharCoefficients,
}

impl Klobuchar {
    /// Creates the model from explicit broadcast coefficients.
    #[must_use]
    pub fn new(coefficients: KlobucharCoefficients) -> Self {
        Klobuchar { coefficients }
    }

    /// The broadcast coefficients in use.
    #[must_use]
    pub fn coefficients(&self) -> KlobucharCoefficients {
        self.coefficients
    }

    /// Slant ionospheric delay (metres on L1) for a signal received at
    /// `station` from a satellite at the given `elevation` and `azimuth`
    /// (radians), at GPS time `t`.
    ///
    /// Follows the IS-GPS-200 algorithm; angles inside the algorithm are in
    /// semicircles, as specified.
    #[must_use]
    pub fn slant_delay(&self, station: Geodetic, elevation: f64, azimuth: f64, t: GpsTime) -> f64 {
        let el_sc = elevation / std::f64::consts::PI; // semicircles
        let lat_sc = station.latitude() / std::f64::consts::PI;
        let lon_sc = station.longitude() / std::f64::consts::PI;

        // Earth-centred angle between station and ionospheric pierce point.
        let psi = 0.0137 / (el_sc + 0.11) - 0.022;

        // Pierce-point geodetic latitude, clamped to ±0.416 semicircles.
        let mut lat_i = lat_sc + psi * azimuth.cos();
        lat_i = lat_i.clamp(-0.416, 0.416);

        // Pierce-point longitude.
        let lon_i = lon_sc + psi * azimuth.sin() / (lat_i * std::f64::consts::PI).cos();

        // Geomagnetic latitude of the pierce point.
        let lat_m = lat_i + 0.064 * ((lon_i - 1.617) * std::f64::consts::PI).cos();

        // Local time at the pierce point (seconds).
        let mut t_local = 4.32e4 * lon_i + t.seconds_of_day();
        t_local = t_local.rem_euclid(86_400.0);

        // Amplitude and period from the broadcast polynomials in
        // geomagnetic latitude.
        let mut amp = 0.0;
        let mut per = 0.0;
        let mut lat_pow = 1.0;
        for n in 0..4 {
            amp += self.coefficients.alpha[n] * lat_pow;
            per += self.coefficients.beta[n] * lat_pow;
            lat_pow *= lat_m;
        }
        amp = amp.max(0.0);
        per = per.max(72_000.0);

        // Phase of the half-cosine.
        let x = std::f64::consts::TAU * (t_local - 50_400.0) / per;

        // Obliquity (slant) factor.
        let f = 1.0 + 16.0 * (0.53 - el_sc).powi(3);

        let t_iono = if x.abs() < 1.57 {
            let x2 = x * x;
            f * (5.0e-9 + amp * (1.0 - x2 / 2.0 + x2 * x2 / 24.0))
        } else {
            f * 5.0e-9
        };
        t_iono * SPEED_OF_LIGHT
    }

    /// Residual slant delay left over after a receiver applies this same
    /// broadcast model as a correction.
    ///
    /// The Klobuchar model removes roughly half the true delay; we model
    /// the truth as `(1 + imperfection) × broadcast` so the residual is
    /// `imperfection × broadcast`. `imperfection` is a per-satellite,
    /// slowly varying factor the dataset generator draws once per pass
    /// (typical magnitude 0.3–0.5).
    #[must_use]
    pub fn residual_delay(
        &self,
        station: Geodetic,
        elevation: f64,
        azimuth: f64,
        t: GpsTime,
        imperfection: f64,
    ) -> f64 {
        imperfection * self.slant_delay(station, elevation, azimuth, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_lat_station() -> Geodetic {
        Geodetic::from_deg(40.0, -105.0, 1600.0)
    }

    /// Noon at the station's local time: station longitude -105° means
    /// local noon ≈ 19:00 UTC; seconds-of-day 68 400.
    fn local_noon() -> GpsTime {
        GpsTime::new(1544, 68_400.0)
    }

    fn local_night() -> GpsTime {
        GpsTime::new(1544, 68_400.0 - 43_200.0)
    }

    #[test]
    fn day_exceeds_night() {
        let k = Klobuchar::default();
        let s = mid_lat_station();
        let el = 60f64.to_radians();
        let az = 90f64.to_radians();
        let day = k.slant_delay(s, el, az, local_noon());
        let night = k.slant_delay(s, el, az, local_night());
        assert!(day > night, "day {day} night {night}");
        // Night floor is 5 ns × obliquity ≈ 1.6-2 m at 60° elevation.
        assert!(night > 1.0 && night < 3.0, "night {night}");
        assert!(day > 3.0 && day < 40.0, "day {day}");
    }

    #[test]
    fn low_elevation_increases_delay() {
        let k = Klobuchar::default();
        let s = mid_lat_station();
        let az = 180f64.to_radians();
        let t = local_noon();
        let high = k.slant_delay(s, 80f64.to_radians(), az, t);
        let low = k.slant_delay(s, 10f64.to_radians(), az, t);
        assert!(low > high, "low {low} high {high}");
        // Obliquity at 5-10° elevation is ≈ 3x zenith.
        assert!(low / high > 1.5 && low / high < 5.0);
    }

    #[test]
    fn delay_always_positive_and_bounded() {
        let k = Klobuchar::default();
        let s = mid_lat_station();
        for hour in 0..24 {
            for el_deg in [5.0, 15.0, 45.0, 85.0] {
                for az_deg in [0.0, 90.0, 180.0, 270.0] {
                    let t = GpsTime::new(1544, f64::from(hour) * 3_600.0);
                    let d = k.slant_delay(s, f64::to_radians(el_deg), f64::to_radians(az_deg), t);
                    assert!(d > 0.0 && d < 120.0, "delay {d} at h{hour} el{el_deg}");
                }
            }
        }
    }

    #[test]
    fn equatorial_delay_exceeds_polar() {
        // The geomagnetic-latitude polynomials give larger amplitude near
        // the magnetic equator.
        let k = Klobuchar::default();
        let el = 60f64.to_radians();
        let az = 0.0;
        // Compare at the same *local* solar time (noon): t_utc = noon − lon/15°·3600.
        let eq_station = Geodetic::from_deg(0.0, 0.0, 0.0);
        let polar_station = Geodetic::from_deg(70.0, 0.0, 0.0);
        let noon_utc = GpsTime::new(1544, 43_200.0);
        let eq = k.slant_delay(eq_station, el, az, noon_utc);
        let pol = k.slant_delay(polar_station, el, az, noon_utc);
        assert!(eq > pol, "equator {eq} polar {pol}");
    }

    #[test]
    fn residual_scales_with_imperfection() {
        let k = Klobuchar::default();
        let s = mid_lat_station();
        let el = 45f64.to_radians();
        let full = k.slant_delay(s, el, 0.0, local_noon());
        let resid = k.residual_delay(s, el, 0.0, local_noon(), 0.4);
        assert!((resid - 0.4 * full).abs() < 1e-12);
        let neg = k.residual_delay(s, el, 0.0, local_noon(), -0.4);
        assert!((neg + 0.4 * full).abs() < 1e-12);
    }

    #[test]
    fn custom_coefficients_round_trip() {
        let coeffs = KlobucharCoefficients {
            alpha: [1e-8, 0.0, 0.0, 0.0],
            beta: [9e4, 0.0, 0.0, 0.0],
        };
        let k = Klobuchar::new(coeffs);
        assert_eq!(k.coefficients(), coeffs);
    }
}
