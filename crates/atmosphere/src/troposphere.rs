/// The Saastamoinen tropospheric delay model with a standard-atmosphere
/// height profile.
///
/// The troposphere is non-dispersive: its delay cannot be removed with a
/// second frequency and is instead modeled. The zenith delay splits into a
/// **hydrostatic** part (~2.3 m at sea level, very predictable) and a
/// **wet** part (~0.1–0.4 m, humid-weather dependent); both are mapped to
/// the line of sight with a `1/sin(el)`-type mapping. Receivers model most
/// of it; [`Saastamoinen::residual_delay`] returns the unmodeled remainder
/// that feeds the paper's satellite-dependent error `εᵢˢ`.
///
/// # Example
///
/// ```
/// use gps_atmosphere::Saastamoinen;
///
/// let tropo = Saastamoinen::standard_at_height(200.0);
/// let zenith = tropo.slant_delay(90f64.to_radians());
/// assert!(zenith > 2.0 && zenith < 3.0); // ≈ 2.3 m near sea level
/// let slant = tropo.slant_delay(10f64.to_radians());
/// assert!(slant > 5.0 * zenith); // strongly amplified near the horizon
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saastamoinen {
    /// Total pressure at the site, millibars.
    pressure: f64,
    /// Temperature at the site, kelvin.
    temperature: f64,
    /// Partial pressure of water vapour, millibars.
    vapour_pressure: f64,
}

impl Saastamoinen {
    /// Creates the model from explicit surface meteorology.
    ///
    /// # Panics
    ///
    /// Panics if pressure or temperature is non-positive.
    #[must_use]
    pub fn new(pressure_mbar: f64, temperature_k: f64, vapour_pressure_mbar: f64) -> Self {
        assert!(pressure_mbar > 0.0, "pressure must be positive");
        assert!(temperature_k > 0.0, "temperature must be positive");
        Saastamoinen {
            pressure: pressure_mbar,
            temperature: temperature_k,
            vapour_pressure: vapour_pressure_mbar.max(0.0),
        }
    }

    /// Standard-atmosphere meteorology at the given orthometric height
    /// (m): 1013.25 mbar / 291.15 K / 50 % relative humidity at sea level,
    /// lapsed with the usual exponential/linear profiles.
    #[must_use]
    pub fn standard_at_height(height_m: f64) -> Self {
        let h = height_m.max(0.0);
        let p = 1013.25 * (1.0 - 2.2557e-5 * h).powf(5.2568);
        let t = 291.15 - 6.5e-3 * h;
        // 50% relative humidity mapped through the saturation pressure.
        let rh = 0.5 * (-6.396e-4 * h).exp();
        let e = rh * 6.108 * ((17.15 * t - 4_684.0) / (t - 38.45)).exp();
        Saastamoinen::new(p, t, e)
    }

    /// Zenith hydrostatic (dry) delay, metres.
    #[must_use]
    pub fn zenith_dry_delay(&self) -> f64 {
        0.002_277 * self.pressure
    }

    /// Zenith wet delay, metres.
    #[must_use]
    pub fn zenith_wet_delay(&self) -> f64 {
        0.002_277 * (1_255.0 / self.temperature + 0.05) * self.vapour_pressure
    }

    /// Total slant delay (metres) at the given elevation angle (radians).
    ///
    /// Uses Saastamoinen's simple mapping `1 / sin(el + small)` with a
    /// floor keeping the model finite through the horizon.
    #[must_use]
    pub fn slant_delay(&self, elevation_rad: f64) -> f64 {
        let zenith = self.zenith_dry_delay() + self.zenith_wet_delay();
        zenith * Self::mapping(elevation_rad)
    }

    /// The elevation mapping factor shared by the total and residual
    /// delays.
    fn mapping(elevation_rad: f64) -> f64 {
        // Clamp below 3°: the simple mapping diverges at the horizon and
        // datasets mask such satellites out anyway.
        let el = elevation_rad.max(3.0f64.to_radians());
        1.0 / (el.sin() + 0.003)
    }

    /// Residual slant delay after a receiver models the troposphere with
    /// the same functional form but imperfect meteorology.
    ///
    /// `imperfection` is the fractional mismodeling (typically 0.02–0.10,
    /// dominated by the wet component); the residual keeps the full
    /// elevation dependence, which is what makes low-elevation satellites
    /// noisier — visible in the paper's accuracy figures as the penalty for
    /// adding satellite number 9 and 10 of an epoch.
    #[must_use]
    pub fn residual_delay(&self, elevation_rad: f64, imperfection: f64) -> f64 {
        imperfection * self.slant_delay(elevation_rad)
    }
}

impl Default for Saastamoinen {
    /// Standard atmosphere at sea level.
    fn default() -> Self {
        Saastamoinen::standard_at_height(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sea_level_zenith_delay() {
        let t = Saastamoinen::default();
        let dry = t.zenith_dry_delay();
        let wet = t.zenith_wet_delay();
        assert!((dry - 2.31).abs() < 0.05, "dry {dry}");
        assert!(wet > 0.05 && wet < 0.45, "wet {wet}");
    }

    #[test]
    fn delay_decreases_with_height() {
        let sea = Saastamoinen::standard_at_height(0.0);
        let mountain = Saastamoinen::standard_at_height(3_000.0);
        let el = 45f64.to_radians();
        assert!(mountain.slant_delay(el) < sea.slant_delay(el));
        // Pressure at 3000 m ≈ 700 mbar → dry delay ≈ 1.6 m.
        assert!((mountain.zenith_dry_delay() - 1.6).abs() < 0.1);
    }

    #[test]
    fn mapping_monotone_in_elevation() {
        let t = Saastamoinen::default();
        let mut prev = f64::INFINITY;
        for el_deg in [5.0, 10.0, 20.0, 40.0, 60.0, 90.0] {
            let d = t.slant_delay(f64::to_radians(el_deg));
            assert!(d < prev, "not monotone at {el_deg}");
            assert!(d > 0.0);
            prev = d;
        }
    }

    #[test]
    fn horizon_is_clamped_finite() {
        let t = Saastamoinen::default();
        let horizon = t.slant_delay(0.0);
        let below = t.slant_delay(-0.2);
        assert!(horizon.is_finite() && horizon < 60.0);
        assert_eq!(horizon, below);
    }

    #[test]
    fn residual_proportional_to_imperfection() {
        let t = Saastamoinen::default();
        let el = 30f64.to_radians();
        let full = t.slant_delay(el);
        assert!((t.residual_delay(el, 0.05) - 0.05 * full).abs() < 1e-12);
        assert_eq!(t.residual_delay(el, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn rejects_nonpositive_pressure() {
        let _ = Saastamoinen::new(0.0, 290.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn rejects_nonpositive_temperature() {
        let _ = Saastamoinen::new(1000.0, -1.0, 10.0);
    }

    #[test]
    fn negative_vapour_clamped() {
        let t = Saastamoinen::new(1013.0, 291.0, -5.0);
        assert_eq!(t.zenith_wet_delay(), 0.0);
    }
}
