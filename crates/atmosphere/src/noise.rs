use gps_rng::Rng;

use crate::multipath::gaussian;

/// Receiver thermal (tracking-loop) noise on the code pseudorange.
///
/// DLL tracking noise depends on the received carrier-to-noise density:
/// strong, high-elevation signals track more tightly than weak,
/// low-elevation ones. The budget model used here is
///
/// `σ(el) = σ_zenith · sqrt(1 + k·(1/sin(el) − 1))`
///
/// with `σ_zenith ≈ 0.25 m` for an L1 C/A geodetic receiver.
///
/// # Example
///
/// ```
/// use gps_atmosphere::ReceiverNoise;
///
/// let noise = ReceiverNoise::default();
/// let zenith = noise.sigma(90f64.to_radians());
/// assert!((zenith - 0.25).abs() < 1e-12);
/// assert!(noise.sigma(10f64.to_radians()) > zenith);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverNoise {
    /// Standard deviation at zenith, metres.
    sigma_zenith: f64,
    /// Elevation-amplification weight.
    elevation_weight: f64,
}

impl ReceiverNoise {
    /// Creates a model from the zenith sigma (m) and elevation weight.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_zenith_m` is non-positive or the weight is
    /// negative.
    #[must_use]
    pub fn new(sigma_zenith_m: f64, elevation_weight: f64) -> Self {
        assert!(sigma_zenith_m > 0.0, "sigma must be positive");
        assert!(elevation_weight >= 0.0, "weight must be non-negative");
        ReceiverNoise {
            sigma_zenith: sigma_zenith_m,
            elevation_weight,
        }
    }

    /// Noise standard deviation (m) at the given elevation (radians).
    #[must_use]
    pub fn sigma(&self, elevation_rad: f64) -> f64 {
        let el = elevation_rad.clamp(3.0f64.to_radians(), std::f64::consts::FRAC_PI_2);
        let amplification = 1.0 + self.elevation_weight * (1.0 / el.sin() - 1.0);
        self.sigma_zenith * amplification.sqrt()
    }

    /// Draws one noise sample (m) at the given elevation.
    pub fn draw<R: Rng + ?Sized>(&self, elevation_rad: f64, rng: &mut R) -> f64 {
        gaussian(rng) * self.sigma(elevation_rad)
    }
}

impl Default for ReceiverNoise {
    /// Geodetic L1 receiver: 0.25 m at zenith, weight 1.
    fn default() -> Self {
        ReceiverNoise::new(0.25, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_rng::rngs::StdRng;
    use gps_rng::SeedableRng;

    #[test]
    fn sigma_monotone_decreasing_in_elevation() {
        let n = ReceiverNoise::default();
        let mut prev = f64::INFINITY;
        for el_deg in [5.0, 15.0, 30.0, 60.0, 90.0] {
            let s = n.sigma(f64::to_radians(el_deg));
            assert!(s <= prev);
            prev = s;
        }
    }

    #[test]
    fn zenith_sigma_is_baseline() {
        let n = ReceiverNoise::new(0.3, 2.0);
        assert!((n.sigma(std::f64::consts::FRAC_PI_2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_is_elevation_independent() {
        let n = ReceiverNoise::new(0.25, 0.0);
        assert_eq!(n.sigma(0.1), n.sigma(1.0));
    }

    #[test]
    fn clamped_below_three_degrees() {
        let n = ReceiverNoise::default();
        assert_eq!(n.sigma(0.0), n.sigma(3.0f64.to_radians()));
        assert!(n.sigma(0.0).is_finite());
    }

    #[test]
    fn sample_statistics() {
        let n = ReceiverNoise::default();
        let mut rng = StdRng::seed_from_u64(3);
        let el = 45f64.to_radians();
        let count = 20_000;
        let samples: Vec<f64> = (0..count).map(|_| n.draw(el, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let std =
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64).sqrt();
        assert!(mean.abs() < 0.01);
        assert!((std - n.sigma(el)).abs() / n.sigma(el) < 0.05);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_bad_sigma() {
        let _ = ReceiverNoise::new(-0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_negative_weight() {
        let _ = ReceiverNoise::new(0.25, -1.0);
    }
}
