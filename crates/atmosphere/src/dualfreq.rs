//! Dual-frequency observables: the ionosphere-free and geometry-free
//! combinations.
//!
//! The paper's datasets are single-frequency L1, so the Klobuchar model
//! must remove the ionosphere approximately. A dual-frequency receiver
//! does better: the ionospheric group delay scales as `1/f²`, so a fixed
//! linear combination of L1 and L2 pseudoranges cancels it *exactly* (to
//! first order). These functions provide that path, letting the dataset
//! generator's iono errors be eliminated instead of merely modeled — the
//! natural "what if the stations were dual-frequency" extension study.

/// GPS L1 carrier frequency, Hz.
pub const L1_FREQUENCY: f64 = 1_575.42e6;

/// GPS L2 carrier frequency, Hz.
pub const L2_FREQUENCY: f64 = 1_227.60e6;

/// `γ = (f₁/f₂)²`, the iono scale factor between L2 and L1.
#[must_use]
pub fn gamma() -> f64 {
    let r = L1_FREQUENCY / L2_FREQUENCY;
    r * r
}

/// The ionosphere-free pseudorange combination
/// `ρ_IF = (f₁²·ρ₁ − f₂²·ρ₂) / (f₁² − f₂²)`.
///
/// First-order ionospheric delay cancels exactly; every
/// frequency-independent term (geometry, clocks, troposphere) passes
/// through unchanged. The price is noise amplification: the combination's
/// noise is ≈ 3× the single-frequency noise.
///
/// # Example
///
/// ```
/// use gps_atmosphere::dualfreq::{ionosphere_free, iono_delay_on_l2};
///
/// let geometry = 2.2e7;
/// let iono_l1 = 5.0;
/// let p1 = geometry + iono_l1;
/// let p2 = geometry + iono_delay_on_l2(iono_l1);
/// let p_if = ionosphere_free(p1, p2);
/// assert!((p_if - geometry).abs() < 1e-6);
/// ```
#[must_use]
pub fn ionosphere_free(p1: f64, p2: f64) -> f64 {
    let f1sq = L1_FREQUENCY * L1_FREQUENCY;
    let f2sq = L2_FREQUENCY * L2_FREQUENCY;
    (f1sq * p1 - f2sq * p2) / (f1sq - f2sq)
}

/// The geometry-free combination `ρ_GF = ρ₂ − ρ₁`: all geometry cancels,
/// leaving `(γ − 1)` times the L1 ionospheric delay (plus differential
/// noise) — the standard way to *measure* the ionosphere.
#[must_use]
pub fn geometry_free(p1: f64, p2: f64) -> f64 {
    p2 - p1
}

/// Estimates the L1 ionospheric delay from the geometry-free combination.
#[must_use]
pub fn iono_from_geometry_free(gf: f64) -> f64 {
    gf / (gamma() - 1.0)
}

/// Scales an L1 ionospheric delay to the delay the same electron content
/// produces on L2 (`γ` times larger).
#[must_use]
pub fn iono_delay_on_l2(iono_l1: f64) -> f64 {
    iono_l1 * gamma()
}

/// Noise amplification factor of the ionosphere-free combination relative
/// to equal, independent L1/L2 noise: `sqrt(a² + b²)` with
/// `a = f₁²/(f₁²−f₂²)`, `b = f₂²/(f₁²−f₂²)`.
#[must_use]
pub fn iono_free_noise_factor() -> f64 {
    let f1sq = L1_FREQUENCY * L1_FREQUENCY;
    let f2sq = L2_FREQUENCY * L2_FREQUENCY;
    let a = f1sq / (f1sq - f2sq);
    let b = f2sq / (f1sq - f2sq);
    (a * a + b * b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_value() {
        // (1575.42 / 1227.60)² ≈ 1.6469
        assert!((gamma() - 1.6469).abs() < 1e-3);
    }

    #[test]
    fn iono_cancels_exactly() {
        for iono in [0.5, 5.0, 30.0, 100.0] {
            let geometry = 2.3e7;
            let p1 = geometry + iono;
            let p2 = geometry + iono_delay_on_l2(iono);
            assert!(
                (ionosphere_free(p1, p2) - geometry).abs() < 1e-6,
                "iono {iono}"
            );
        }
    }

    #[test]
    fn frequency_independent_terms_pass_through() {
        // Troposphere + clocks are identical on both frequencies.
        let geometry = 2.1e7;
        let tropo = 8.0;
        let clock = 300.0;
        let p1 = geometry + tropo + clock;
        let p2 = geometry + tropo + clock;
        assert!((ionosphere_free(p1, p2) - p1).abs() < 1e-9);
    }

    #[test]
    fn geometry_free_measures_iono() {
        let geometry = 2.4e7;
        let iono = 12.0;
        let p1 = geometry + iono;
        let p2 = geometry + iono_delay_on_l2(iono);
        let gf = geometry_free(p1, p2);
        assert!((iono_from_geometry_free(gf) - iono).abs() < 1e-6);
    }

    #[test]
    fn noise_factor_is_about_three() {
        let k = iono_free_noise_factor();
        assert!(k > 2.5 && k < 3.5, "factor {k}");
    }

    #[test]
    fn combination_is_linear() {
        let (p1a, p2a) = (2.0e7, 2.0e7 + 3.0);
        let (p1b, p2b) = (2.1e7, 2.1e7 - 1.0);
        let combined = ionosphere_free(p1a + p1b, p2a + p2b);
        let separate = ionosphere_free(p1a, p2a) + ionosphere_free(p1b, p2b);
        assert!((combined - separate).abs() < 1e-6);
    }
}
