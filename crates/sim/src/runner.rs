use std::time::{Duration as StdDuration, Instant};

use gps_clock::ClockBiasPredictor;
use gps_core::metrics::Summary;
use gps_core::{Dlg, Dlo, Measurement, NewtonRaphson, PositionSolver};
use gps_obs::{DataSet, Epoch, SatObservation};
use gps_telemetry::{Event, Level};

use crate::ExperimentConfig;

/// Accumulated per-algorithm statistics over one run.
#[derive(Debug, Clone, Default)]
pub struct AlgoStats {
    /// Total wall-clock time spent inside the solver.
    pub total_time: StdDuration,
    /// Absolute position errors (paper eq. 5-1), metres. Only epochs where
    /// **all** compared algorithms produced an accepted fix contribute, so
    /// the accuracy rates compare like with like.
    pub error: Summary,
    /// Horizontal position errors over the same paired epochs, metres.
    pub horizontal_error: Summary,
    /// |vertical| position errors over the same paired epochs, metres.
    pub vertical_error: Summary,
    /// Solve attempts (the timing denominator).
    pub attempts: usize,
    /// Successful solves.
    pub solves: usize,
    /// Failed solves (degenerate geometry, non-convergence, or an NR fix
    /// rejected by the receiver's plausibility screen).
    pub failures: usize,
}

impl AlgoStats {
    /// Mean solve time in nanoseconds (0 if nothing ran).
    #[must_use]
    pub fn mean_time_ns(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.total_time.as_nanos() as f64 / self.attempts as f64
        }
    }
}

/// Result of running the three algorithms over one dataset at a fixed
/// satellite count.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Satellite count `m` used per epoch.
    pub m: usize,
    /// Newton–Raphson (baseline) statistics.
    pub nr: AlgoStats,
    /// DLO statistics.
    pub dlo: AlgoStats,
    /// DLG statistics.
    pub dlg: AlgoStats,
    /// Epochs that actually had ≥ m satellites and were solved.
    pub epochs_used: usize,
    /// Epochs skipped for having fewer than `m` satellites.
    pub epochs_skipped: usize,
    /// NR iteration counts over the paired epochs (the cost driver the
    /// paper's θ rates trace back to).
    pub nr_iterations: Summary,
}

impl RunResult {
    /// Execution-time rate `θ` (eq. 5-3) for DLO, percent.
    #[must_use]
    pub fn theta_dlo(&self) -> f64 {
        gps_core::metrics::execution_time_rate(self.dlo.mean_time_ns(), self.nr.mean_time_ns())
    }

    /// Execution-time rate `θ` (eq. 5-3) for DLG, percent.
    #[must_use]
    pub fn theta_dlg(&self) -> f64 {
        gps_core::metrics::execution_time_rate(self.dlg.mean_time_ns(), self.nr.mean_time_ns())
    }

    /// Accuracy rate `η` (eq. 5-2) for DLO, percent (mean errors).
    #[must_use]
    pub fn eta_dlo(&self) -> f64 {
        gps_core::metrics::accuracy_rate(self.dlo.error.mean(), self.nr.error.mean())
    }

    /// Accuracy rate `η` (eq. 5-2) for DLG, percent (mean errors).
    #[must_use]
    pub fn eta_dlg(&self) -> f64 {
        gps_core::metrics::accuracy_rate(self.dlg.error.mean(), self.nr.error.mean())
    }
}

/// The clock-calibration state machine of the paper's §5.2.2, built on the
/// eq. 4-3 linear predictor.
///
/// * At startup, the first [`ExperimentConfig::calibration_epochs`] epochs
///   are solved with NR; the offset `D` is taken from the first solve
///   (eq. 5-4) and the drift `r` is line-fitted over the window.
/// * For the threshold station, `D` is re-anchored from the NR bias at
///   every epoch whose clock was reset.
/// * Optionally, `D` is also re-anchored every
///   `recalibration_interval_s` seconds (§4.2 approach 1/2).
#[derive(Debug, Clone)]
pub struct ClockCalibration {
    predictor: ClockBiasPredictor,
    recalibration_interval_s: Option<f64>,
    last_recalibration: gps_time::GpsTime,
}

impl ClockCalibration {
    /// Bootstraps the predictor from the dataset's startup window, running
    /// NR with all visible satellites (this happens once, outside the
    /// timed region).
    #[must_use]
    pub fn bootstrap(data: &DataSet, cfg: &ExperimentConfig) -> Self {
        let nr = NewtonRaphson::default();
        let window = cfg.calibration_epochs.min(data.epochs().len());
        let mut samples = Vec::with_capacity(window);
        for epoch in &data.epochs()[..window] {
            let meas = to_measurements(epoch.observations());
            if let Ok(fix) = nr.solve(&meas, 0.0) {
                if let Some(bias_m) = fix.receiver_bias_m {
                    samples.push((epoch.time(), bias_m / gps_geodesy::wgs84::SPEED_OF_LIGHT));
                }
            }
        }
        let t0 = data
            .epochs()
            .first()
            .map_or(gps_time::GpsTime::EPOCH, Epoch::time);
        let mut predictor = ClockBiasPredictor::new(t0);
        predictor.fit_drift(&samples);
        if let Some(&(t, bias)) = samples.first() {
            predictor.calibrate(t, bias);
        }
        ClockCalibration {
            predictor,
            recalibration_interval_s: cfg.recalibration_interval_s,
            last_recalibration: t0,
        }
    }

    /// Predicted receiver range bias `ε̂ᴿ` (metres) for an epoch.
    #[must_use]
    pub fn predict_range_bias(&self, t: gps_time::GpsTime) -> f64 {
        self.predictor.predict_range_bias(t)
    }

    /// Whether the predictor wants a fresh bias anchor at this epoch:
    /// always at a threshold reset (the station knows it just stepped its
    /// own clock), and at the periodic §4.2 re-anchoring cadence.
    #[must_use]
    pub fn needs_recalibration(&self, epoch: &Epoch) -> bool {
        epoch.truth().clock_reset
            || self.recalibration_interval_s.is_some_and(|interval| {
                (epoch.time() - self.last_recalibration).as_seconds() >= interval
            })
    }

    /// Re-anchors `D` from an NR-derived range bias (metres) at this
    /// epoch.
    pub fn observe(&mut self, epoch: &Epoch, nr_bias_m: f64) {
        let t = epoch.time();
        self.predictor.calibrate_from_range_bias(t, nr_bias_m);
        self.last_recalibration = t;
    }
}

/// Converts dataset observations into solver measurements.
#[must_use]
pub fn to_measurements(observations: &[SatObservation]) -> Vec<Measurement> {
    observations
        .iter()
        .map(|o| Measurement::new(o.position, o.pseudorange).with_elevation(o.elevation))
        .collect()
}

/// Converts observations carrying extended observables into the inputs of
/// [`gps_core::solve_velocity`]. Returns `None` if any observation lacks
/// them (datasets generated without
/// [`gps_obs::DatasetGenerator::extended_observables`]).
#[must_use]
pub fn to_rate_measurements(
    observations: &[SatObservation],
) -> Option<Vec<gps_core::RateMeasurement>> {
    observations
        .iter()
        .map(|o| {
            o.extended
                .map(|ext| gps_core::RateMeasurement::new(o.position, ext.velocity, ext.doppler))
        })
        .collect()
}

/// Picks `m` of the visible satellites with receiver-realistic geometry:
/// seed with the highest-elevation satellite, then greedily add the
/// satellite maximizing the minimum angular separation from those already
/// chosen.
///
/// Taking the top-`m` by elevation alone would cluster the subset near
/// zenith and blow up the DOP at small `m`; deployed receivers select an
/// all-in-view subset for geometry, which this approximates.
#[must_use]
pub fn select_subset(station: gps_geodesy::Ecef, epoch: &Epoch, m: usize) -> Vec<SatObservation> {
    let obs = epoch.observations();
    if obs.len() <= m {
        return obs.to_vec();
    }
    // Unit line-of-sight vectors from the station.
    let los: Vec<gps_geodesy::Ecef> = obs
        .iter()
        .map(|o| (o.position - station).normalized())
        .collect();
    let mut chosen: Vec<usize> = vec![0]; // obs are elevation-sorted
    while chosen.len() < m {
        let candidate = (0..obs.len())
            .filter(|i| !chosen.contains(i))
            .max_by(|&a, &b| {
                let spread = |i: usize| {
                    chosen
                        .iter()
                        .map(|&c| 1.0 - los[i].dot(los[c])) // monotone in angle
                        .fold(f64::INFINITY, f64::min)
                };
                spread(a).total_cmp(&spread(b))
            });
        // Candidates remain while chosen < m <= obs.len(); if the
        // invariant is ever broken, stop with what we have.
        let Some(next) = candidate else { break };
        chosen.push(next);
    }
    chosen.into_iter().map(|i| obs[i]).collect()
}

/// The solver variants a run compares: the NR baseline plus one DLO and
/// one DLG configuration. The defaults are the paper's algorithms;
/// replacing a member turns the run into one of the DESIGN.md ablations
/// (base selection, covariance model, ...).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverSet {
    /// The iterative baseline.
    pub nr: NewtonRaphson,
    /// The direct-linearization + OLS solver.
    pub dlo: Dlo,
    /// The direct-linearization + GLS solver.
    pub dlg: Dlg,
}

/// Runs NR, DLO and DLG over every epoch of `data` using exactly `m`
/// satellites per epoch (the `m` best-placed; epochs with fewer are
/// skipped), with per-algorithm wall-clock timing.
///
/// This is the inner loop of both Figure 5.1 and Figure 5.2.
#[must_use]
pub fn run_dataset(data: &DataSet, m: usize, cfg: &ExperimentConfig) -> RunResult {
    run_dataset_with(data, m, cfg, &SolverSet::default())
}

/// Like [`run_dataset`], with explicit solver variants (the ablation
/// entry point).
#[must_use]
pub fn run_dataset_with(
    data: &DataSet,
    m: usize,
    cfg: &ExperimentConfig,
    solvers: &SolverSet,
) -> RunResult {
    let nr = solvers.nr;
    let dlo = solvers.dlo;
    let dlg = solvers.dlg;
    let truth = data.station().position();

    let mut calibration = ClockCalibration::bootstrap(data, cfg);

    // One warm context per solver: after the first epoch the timed
    // regions below run without heap allocation, so the θ (eq. 5-3)
    // comparisons measure the algorithms, not the allocator.
    let mut nr_ctx = gps_core::SolveContext::new();
    let mut dlo_ctx = gps_core::SolveContext::new();
    let mut dlg_ctx = gps_core::SolveContext::new();

    let mut result = RunResult {
        m,
        nr: AlgoStats::default(),
        dlo: AlgoStats::default(),
        dlg: AlgoStats::default(),
        epochs_used: 0,
        epochs_skipped: 0,
        nr_iterations: Summary::new(),
    };

    for epoch in data.epochs() {
        if epoch.observations().len() < m {
            result.epochs_skipped += 1;
            continue;
        }
        // Spans the whole epoch (subset selection, the three solves, the
        // clock bookkeeping). The θ timings below use their own `Instant`
        // windows, so the span never sits inside a timed region.
        let _epoch_span = gps_telemetry::span("epoch");
        let meas = to_measurements(&select_subset(truth, epoch, m));
        let t = epoch.time();

        // --- NR (timed) ---
        result.nr.attempts += 1;
        let start = Instant::now();
        let nr_fix = gps_core::Solver::solve(&nr, &gps_core::Epoch::new(&meas, 0.0), &mut nr_ctx);
        result.nr.total_time += start.elapsed();
        // Receiver plausibility screen: from a cold start the 4-unknown
        // system occasionally converges to the spurious mirror root far
        // from the Earth. Deployed receivers reject such fixes (altitude
        // sanity check); so do we.
        let nr_accepted = nr_fix.as_ref().ok().and_then(|fix| {
            let height = gps_geodesy::Geodetic::from_ecef(fix.position).height();
            (height.abs() < 1.0e5).then_some((fix.position, fix.receiver_bias_m, fix.iterations))
        });

        // Clock bookkeeping happens *before* the direct solvers run, as in
        // a real receiver: at a threshold reset the station knows it just
        // stepped its own clock and re-anchors D first (§5.2.2); the
        // periodic §4.2 re-anchor likewise applies to the current epoch.
        // The station's timekeeping solve uses ALL satellites in view —
        // the m-satellite subset is only the experiment control — and is
        // untimed (it is amortized receiver bookkeeping, not part of any
        // compared algorithm).
        if calibration.needs_recalibration(epoch) {
            let full_meas = to_measurements(epoch.observations());
            if let Ok(fix) = nr.solve(&full_meas, 0.0) {
                if let Some(bias_m) = fix.receiver_bias_m {
                    let height = gps_geodesy::Geodetic::from_ecef(fix.position).height();
                    if height.abs() < 1.0e5 {
                        calibration.observe(epoch, bias_m);
                    }
                }
            }
        }
        let predicted_bias = calibration.predict_range_bias(t);

        // --- DLO (timed; includes the eq. 4-1 correction) ---
        result.dlo.attempts += 1;
        let start = Instant::now();
        let dlo_fix = gps_core::Solver::solve(
            &dlo,
            &gps_core::Epoch::new(&meas, predicted_bias),
            &mut dlo_ctx,
        );
        result.dlo.total_time += start.elapsed();

        // --- DLG (timed; includes the eq. 4-26 covariance build) ---
        result.dlg.attempts += 1;
        let start = Instant::now();
        let dlg_fix = gps_core::Solver::solve(
            &dlg,
            &gps_core::Epoch::new(&meas, predicted_bias),
            &mut dlg_ctx,
        );
        result.dlg.total_time += start.elapsed();

        // Accuracy bookkeeping: only epochs where all three produced an
        // accepted fix contribute, so η compares identical epoch sets.
        match (nr_accepted, dlo_fix, dlg_fix) {
            (Some((nr_pos, _, nr_iters)), Ok(dlo_sol), Ok(dlg_sol)) => {
                result.nr_iterations.push(nr_iters as f64);
                for (stats, position) in [
                    (&mut result.nr, nr_pos),
                    (&mut result.dlo, dlo_sol.position),
                    (&mut result.dlg, dlg_sol.position),
                ] {
                    stats.solves += 1;
                    stats
                        .error
                        .push(gps_core::metrics::absolute_error(position, truth));
                    let hv = gps_core::metrics::horizontal_vertical_error(position, truth);
                    stats.horizontal_error.push(hv.horizontal);
                    stats.vertical_error.push(hv.vertical.abs());
                }
            }
            (nr_ok, dlo_res, dlg_res) => {
                if nr_ok.is_none() {
                    result.nr.failures += 1;
                }
                if dlo_res.is_err() {
                    result.dlo.failures += 1;
                }
                if dlg_res.is_err() {
                    result.dlg.failures += 1;
                }
            }
        }
        result.epochs_used += 1;
    }
    if gps_telemetry::enabled(Level::Info) {
        Event::new(Level::Info, "sim.runner", "run complete")
            .with("station", data.station().id().to_owned())
            .with("m", m)
            .with("epochs_used", result.epochs_used)
            .with("epochs_skipped", result.epochs_skipped)
            .with("nr_mean_iterations", result.nr_iterations.mean())
            .with("theta_dlo_pct", result.theta_dlo())
            .with("theta_dlg_pct", result.theta_dlg())
            .with("eta_dlo_pct", result.eta_dlo())
            .with("eta_dlg_pct", result.eta_dlg())
            .emit();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_obs::{paper_stations, DatasetGenerator};

    fn small_dataset(station_idx: usize) -> DataSet {
        DatasetGenerator::new(99)
            .epoch_interval_s(60.0)
            .epoch_count(60)
            .elevation_mask_deg(5.0)
            .generate(&paper_stations()[station_idx])
    }

    fn quick_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(99);
        cfg.calibration_epochs = 10;
        cfg
    }

    #[test]
    fn run_produces_sane_statistics() {
        let data = small_dataset(0);
        let cfg = quick_cfg();
        let result = run_dataset(&data, 6, &cfg);
        assert!(result.epochs_used > 40, "used {}", result.epochs_used);
        assert_eq!(result.nr.failures, 0);
        assert_eq!(result.dlo.failures, 0);
        assert_eq!(result.dlg.failures, 0);
        // NR with metre-level errors lands within tens of metres.
        assert!(
            result.nr.error.mean() < 50.0,
            "nr {}",
            result.nr.error.mean()
        );
        assert!(result.dlo.error.mean() < 200.0);
        assert!(result.dlg.error.mean() < 200.0);
        assert!(result.nr.total_time.as_nanos() > 0);
    }

    #[test]
    fn direct_methods_faster_than_nr() {
        let data = small_dataset(0);
        let cfg = quick_cfg();
        // DLG does strictly more work than DLO at this satellite count,
        // but the absolute solve times are small enough that scheduler
        // noise can flip one run's ordering; retry before judging.
        let mut result = run_dataset(&data, 8, &cfg);
        for _ in 0..2 {
            if result.theta_dlg() > result.theta_dlo() {
                break;
            }
            result = run_dataset(&data, 8, &cfg);
        }
        assert!(result.theta_dlg() > result.theta_dlo());
        // Strict "< 100% of NR" timing shape only holds in optimized
        // builds; debug-mode allocator overhead distorts the ratio.
        if !cfg!(debug_assertions) {
            assert!(
                result.theta_dlo() < 100.0,
                "θ_DLO {} should be < 100%",
                result.theta_dlo()
            );
            assert!(
                result.theta_dlg() < 100.0,
                "θ_DLG {} should be < 100%",
                result.theta_dlg()
            );
        }
    }

    #[test]
    fn epochs_with_too_few_satellites_are_skipped() {
        let data = small_dataset(0);
        let cfg = quick_cfg();
        let result = run_dataset(&data, 13, &cfg);
        assert_eq!(result.epochs_used + result.epochs_skipped, 60);
        assert!(result.epochs_skipped > 0);
    }

    #[test]
    fn threshold_station_recalibrates_and_stays_accurate() {
        // KYCP drifts up to 1 ms (300 km of range bias); without the
        // predictor chain DLO would be hopeless.
        let data = small_dataset(3);
        let cfg = quick_cfg();
        let result = run_dataset(&data, 7, &cfg);
        assert!(
            result.dlo.error.mean() < 500.0,
            "dlo {}",
            result.dlo.error.mean()
        );
        assert!(result.nr.error.mean() < 50.0);
    }

    #[test]
    fn calibration_predicts_clock_over_window() {
        let data = small_dataset(0);
        let cfg = quick_cfg();
        let cal = ClockCalibration::bootstrap(&data, &cfg);
        // Predicted bias should land near the truth for the early epochs.
        for epoch in &data.epochs()[..20] {
            let predicted = cal.predict_range_bias(epoch.time());
            let true_bias = epoch.truth().clock_bias * gps_geodesy::wgs84::SPEED_OF_LIGHT;
            assert!(
                (predicted - true_bias).abs() < 30.0,
                "prediction error {}",
                (predicted - true_bias).abs()
            );
        }
    }

    #[test]
    fn vertical_error_exceeds_horizontal_and_nr_iterations_are_few() {
        // All satellites are above the receiver, so vertical errors are
        // systematically larger; and NR from the cold start converges in
        // a handful of iterations (the paper's cost model).
        let data = small_dataset(0);
        let cfg = quick_cfg();
        let result = run_dataset(&data, 8, &cfg);
        assert!(result.nr.solves > 40);
        assert!(
            result.nr.vertical_error.mean() > result.nr.horizontal_error.mean(),
            "vertical {} vs horizontal {}",
            result.nr.vertical_error.mean(),
            result.nr.horizontal_error.mean()
        );
        let iters = result.nr_iterations.mean();
        assert!((3.0..=9.0).contains(&iters), "mean NR iterations {iters}");
        // Components are consistent with the 3-D error.
        let rss = (result.nr.horizontal_error.rms().powi(2)
            + result.nr.vertical_error.rms().powi(2))
        .sqrt();
        assert!((rss - result.nr.error.rms()).abs() / result.nr.error.rms() < 1e-9);
    }

    #[test]
    fn select_subset_no_duplicates_and_spread() {
        let data = small_dataset(2);
        let station = data.station().position();
        for epoch in data.epochs().iter().take(10) {
            let available = epoch.observations().len();
            let m = 4.min(available);
            let subset = select_subset(station, epoch, m);
            assert_eq!(subset.len(), m);
            let mut ids: Vec<u8> = subset.iter().map(|o| o.sat.prn()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), m);
            // Spread subset must have no worse GDOP than the naive top-m
            // by elevation (usually much better).
            let naive = epoch.take_satellites(m);
            let dop = |obs: &[gps_obs::SatObservation]| {
                let meas = to_measurements(obs);
                gps_core::Dop::compute(&meas, station).map(|d| d.gdop)
            };
            if let (Ok(spread), Ok(topm)) = (dop(&subset), dop(&naive)) {
                assert!(spread <= topm * 1.001, "spread {spread} vs top-m {topm}");
            }
        }
    }

    #[test]
    fn select_subset_returns_all_when_m_exceeds_count() {
        let data = small_dataset(0);
        let station = data.station().position();
        let epoch = &data.epochs()[0];
        let all = select_subset(station, epoch, 99);
        assert_eq!(all.len(), epoch.observations().len());
    }

    #[test]
    fn needs_recalibration_fires_on_reset_and_interval() {
        let data = small_dataset(3); // KYCP threshold
        let mut cfg = quick_cfg();
        cfg.recalibration_interval_s = Some(300.0);
        let cal = ClockCalibration::bootstrap(&data, &cfg);
        // Immediately after bootstrap nothing is due at the first epoch...
        assert!(!cal.needs_recalibration(&data.epochs()[1]));
        // ...but after the interval it is (epochs are 60 s apart).
        assert!(cal.needs_recalibration(&data.epochs()[6]));
        // A reset epoch always triggers, regardless of interval.
        let reset_epoch = gps_obs::Epoch::new(
            data.epochs()[1].time(),
            vec![],
            gps_obs::EpochTruth {
                clock_bias: 0.0,
                clock_reset: true,
            },
        );
        assert!(cal.needs_recalibration(&reset_epoch));
    }

    #[test]
    fn measurements_conversion_keeps_elevation() {
        let data = small_dataset(1);
        let obs = data.epochs()[0].observations();
        let meas = to_measurements(obs);
        assert_eq!(meas.len(), obs.len());
        assert_eq!(meas[0].elevation, Some(obs[0].elevation));
        assert_eq!(meas[0].pseudorange, obs[0].pseudorange);
    }
}
