//! The `fault_campaign` experiment: availability and integrity of the
//! solver stack under injected faults.
//!
//! The paper's evaluation (§5) assumes every epoch is healthy; this
//! experiment measures what happens when it is not. A seeded
//! [`FaultPlan`] perturbs a generated dataset, then two pipelines run
//! over the perturbed stream:
//!
//! 1. the [`ResilientSolver`] degradation pipeline, scored for
//!    **availability** (nominal / degraded / holdover / no-fix epochs)
//!    and for **integrity** against the plan's injection log (missed
//!    detections, true and false exclusions);
//! 2. plain RAIM wrappers around NR, DLO and DLG, scored for the same
//!    integrity counts per algorithm — quantifying how much fault
//!    detection each algorithm's residual affords on its own.
//!
//! The report closes with the paper's θ/η reference rates computed *on
//! the faulted data*, so the robustness numbers sit next to the
//! cost/accuracy numbers the rest of the harness produces.

use std::fmt;

use gps_core::metrics::Summary;
use gps_core::{
    Dlg, Dlo, Epoch, FixQuality, NewtonRaphson, Raim, ResilientSolver, SolveContext, Solver,
};
use gps_faults::{EpochFaults, FaultPlan, FaultedDataSet};
use gps_obs::{DataSet, SatObservation};
use gps_telemetry::{Event, Level};

use crate::{run_dataset, to_measurements, ClockCalibration, ExperimentConfig};

/// Injected magnitude below which a fault is not expected to be caught:
/// the slow-drift ramp starts at zero, and no residual test can (or
/// should) flag a perturbation inside the noise budget. Epochs whose
/// largest fault is below this floor are exempt from missed-detection
/// accounting.
pub const DETECTION_FLOOR_M: f64 = 50.0;

/// Satellite count for the θ/η reference sweep on the faulted data.
const REFERENCE_M: usize = 7;

/// Detection/exclusion bookkeeping for one pipeline, scored against the
/// fault plan's injection log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounts {
    /// Epochs carrying a significant (≥ [`DETECTION_FLOOR_M`]) injected
    /// measurement fault that the pipeline attempted.
    pub faulted_epochs: usize,
    /// Significant-fault epochs the pipeline accepted without excluding
    /// the faulted satellite (integrity's cardinal sin).
    pub missed_detections: usize,
    /// Exclusions that hit an actually-faulted satellite.
    pub true_exclusions: usize,
    /// Exclusions that hit a healthy satellite.
    pub false_exclusions: usize,
}

/// One bare-RAIM pipeline's campaign outcome.
#[derive(Debug, Clone)]
pub struct AlgoIntegrity {
    /// Algorithm name ("NR", "DLO", "DLG").
    pub name: &'static str,
    /// Epochs where the RAIM-wrapped solve returned a solution.
    pub solved: usize,
    /// Epochs where it returned an error (outage or integrity fault).
    pub failed: usize,
    /// Detection/exclusion scoring.
    pub counts: IntegrityCounts,
}

/// The availability/integrity report of one fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Station whose dataset was perturbed.
    pub station: String,
    /// Scenario names in application order.
    pub scenarios: Vec<String>,
    /// Fault-plan seed (dataset seed is the experiment config's).
    pub seed: u64,
    /// Epochs run.
    pub epochs: usize,
    /// Total injections recorded by the plan.
    pub injections: usize,
    /// Epochs the resilient pipeline accepted at full quality.
    pub nominal: usize,
    /// Epochs accepted with degraded quality.
    pub degraded: usize,
    /// Epochs bridged by kinematic holdover.
    pub holdover: usize,
    /// Epochs with no usable output at all.
    pub no_fix: usize,
    /// Resilient-pipeline integrity scoring.
    pub resilient: IntegrityCounts,
    /// Position error of nominal-quality fixes, metres.
    pub error_nominal: Summary,
    /// Position error of degraded-quality fixes, metres.
    pub error_degraded: Summary,
    /// Position error of holdover outputs, metres.
    pub error_holdover: Summary,
    /// Per-algorithm bare-RAIM scoring.
    pub per_algorithm: Vec<AlgoIntegrity>,
    /// θ for DLO on the faulted data at [`REFERENCE_M`] satellites.
    pub theta_dlo: f64,
    /// θ for DLG, same sweep.
    pub theta_dlg: f64,
    /// η for DLO, same sweep.
    pub eta_dlo: f64,
    /// η for DLG, same sweep.
    pub eta_dlg: f64,
}

impl CampaignReport {
    /// Epochs with a *measurement* fix (nominal + degraded) as a
    /// percentage of all epochs. Holdover epochs coast on the kinematic
    /// predictor — no position solution was formed — so they count
    /// against availability, as standard GNSS availability accounting
    /// does.
    #[must_use]
    pub fn availability_pct(&self) -> f64 {
        self.pct(self.nominal + self.degraded)
    }

    /// Degraded epochs as a percentage of all epochs.
    #[must_use]
    pub fn degraded_pct(&self) -> f64 {
        self.pct(self.degraded)
    }

    /// Holdover epochs as a percentage of all epochs.
    #[must_use]
    pub fn holdover_pct(&self) -> f64 {
        self.pct(self.holdover)
    }

    fn pct(&self, n: usize) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.epochs as f64
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault campaign — {} (plan seed {}, scenarios: {})",
            self.station,
            self.seed,
            self.scenarios.join(", ")
        )?;
        writeln!(
            f,
            "  epochs {}, injections {}",
            self.epochs, self.injections
        )?;
        writeln!(
            f,
            "  availability {:.1}% — nominal {} ({:.1}%), degraded {} ({:.1}%); coasting: holdover {} ({:.1}%), no fix {}",
            self.availability_pct(),
            self.nominal,
            self.pct(self.nominal),
            self.degraded,
            self.degraded_pct(),
            self.holdover,
            self.holdover_pct(),
            self.no_fix
        )?;
        writeln!(
            f,
            "  position error (mean m): nominal {:.1}, degraded {:.1}, holdover {:.1}",
            self.error_nominal.mean(),
            self.error_degraded.mean(),
            self.error_holdover.mean()
        )?;
        writeln!(
            f,
            "  resilient integrity: {} significant-fault epochs, {} missed, {} true excl, {} false excl",
            self.resilient.faulted_epochs,
            self.resilient.missed_detections,
            self.resilient.true_exclusions,
            self.resilient.false_exclusions
        )?;
        writeln!(f, "  bare RAIM per algorithm:")?;
        for algo in &self.per_algorithm {
            writeln!(
                f,
                "    {:<8} solved {:>4}, failed {:>4}, missed {:>3}, true excl {:>3}, false excl {:>3}",
                algo.name,
                algo.solved,
                algo.failed,
                algo.counts.missed_detections,
                algo.counts.true_exclusions,
                algo.counts.false_exclusions
            )?;
        }
        write!(
            f,
            "  reference rates on faulted data @ m={REFERENCE_M}: θ_DLO {:.1}% θ_DLG {:.1}% η_DLO {:.1}% η_DLG {:.1}%",
            self.theta_dlo, self.theta_dlg, self.eta_dlo, self.eta_dlg
        )
    }
}

/// Satellites in `record` that a residual test is expected to catch:
/// finite injected magnitude at or above [`DETECTION_FLOOR_M`].
/// (Non-finite corruption is caught by input sanitization, not residual
/// testing, so it is scored separately via the sanitizer's drop count.)
fn significant_faults(record: &EpochFaults) -> Vec<gps_orbits::SatId> {
    record
        .faulted
        .iter()
        .filter(|(_, _, m)| m.is_finite() && m.abs() >= DETECTION_FLOOR_M)
        .map(|(sat, _, _)| *sat)
        .collect()
}

/// Scores one accepted epoch's exclusions against the injection log.
/// `excluded` holds indices into `obs`.
fn score_exclusions(
    counts: &mut IntegrityCounts,
    obs: &[SatObservation],
    excluded: &[usize],
    record: &EpochFaults,
    significant: &[gps_orbits::SatId],
) {
    for &index in excluded {
        if let Some(o) = obs.get(index) {
            if record.is_faulted(o.sat) {
                counts.true_exclusions += 1;
            } else {
                counts.false_exclusions += 1;
            }
        }
    }
    if !significant.is_empty() {
        counts.faulted_epochs += 1;
        let all_caught = significant.iter().all(|sat| {
            excluded
                .iter()
                .any(|&i| obs.get(i).is_some_and(|o| o.sat == *sat))
        });
        if !all_caught {
            counts.missed_detections += 1;
        }
    }
}

/// Runs the full campaign over one dataset: applies `plan`, drives the
/// resilient pipeline and the three bare-RAIM pipelines epoch by epoch,
/// and closes with the θ/η reference run on the faulted data.
#[must_use]
pub fn run_campaign(data: &DataSet, plan: &FaultPlan, cfg: &ExperimentConfig) -> CampaignReport {
    let _span = gps_telemetry::span("fault_campaign");
    let FaultedDataSet { data: faulted, log } = plan.apply(data);
    let truth = faulted.station().position();
    let calibration = ClockCalibration::bootstrap(&faulted, cfg);

    let mut resilient = ResilientSolver::new();
    // One FDE wrapper per solver, walked generically: the trait erases
    // the concrete solver type, and the per-wrapper context keeps the
    // RAIM happy path allocation-free across epochs.
    let mut algos: Vec<(Raim<Box<dyn Solver>>, SolveContext)> = [
        Box::new(NewtonRaphson::default()) as Box<dyn Solver>,
        Box::new(Dlo::default()),
        Box::new(Dlg::default()),
    ]
    .into_iter()
    .map(|solver| {
        (
            Raim::new(solver, 10.0).with_max_exclusions(2),
            SolveContext::new(),
        )
    })
    .collect();

    let mut report = CampaignReport {
        station: faulted.station().id().to_owned(),
        scenarios: plan
            .scenarios()
            .iter()
            .map(|s| s.kind().name().to_owned())
            .collect(),
        seed: plan.seed(),
        epochs: faulted.epochs().len(),
        injections: log.total_injections(),
        nominal: 0,
        degraded: 0,
        holdover: 0,
        no_fix: 0,
        resilient: IntegrityCounts::default(),
        error_nominal: Summary::new(),
        error_degraded: Summary::new(),
        error_holdover: Summary::new(),
        per_algorithm: algos
            .iter()
            .map(|(raim, _)| AlgoIntegrity {
                name: raim.inner().name(),
                solved: 0,
                failed: 0,
                counts: IntegrityCounts::default(),
            })
            .collect(),
        theta_dlo: 0.0,
        theta_dlg: 0.0,
        eta_dlo: 0.0,
        eta_dlg: 0.0,
    };

    let mut previous_time: Option<gps_time::GpsTime> = None;
    for (index, epoch) in faulted.epochs().iter().enumerate() {
        let record = &log.epochs()[index];
        let significant = significant_faults(record);
        let obs = epoch.observations();
        let meas = to_measurements(obs);
        let t = epoch.time();
        let dt = previous_time
            .map(|prev| (t - prev).as_seconds())
            .filter(|dt| *dt > 0.0)
            .unwrap_or_else(|| cfg.epoch_interval_s.max(1.0));
        previous_time = Some(t);
        let predicted_bias = calibration.predict_range_bias(t);

        // --- Resilient pipeline ---
        match resilient.solve_epoch(&meas, predicted_bias, dt) {
            Ok(fix) => {
                let error = fix.position.distance_to(truth);
                match fix.quality {
                    FixQuality::Nominal => {
                        report.nominal += 1;
                        report.error_nominal.push(error);
                    }
                    FixQuality::Degraded => {
                        report.degraded += 1;
                        report.error_degraded.push(error);
                    }
                    FixQuality::Holdover => {
                        report.holdover += 1;
                        report.error_holdover.push(error);
                    }
                }
                // Holdover produces no measurement fix, so it neither
                // misses nor excludes anything; score the rest.
                if fix.quality != FixQuality::Holdover {
                    score_exclusions(
                        &mut report.resilient,
                        obs,
                        &fix.excluded,
                        record,
                        &significant,
                    );
                }
            }
            Err(_) => report.no_fix += 1,
        }

        // --- Bare RAIM per algorithm ---
        for ((raim, ctx), algo) in algos.iter_mut().zip(report.per_algorithm.iter_mut()) {
            match raim.solve_with(&Epoch::new(&meas, predicted_bias), ctx) {
                Ok(result) => {
                    algo.solved += 1;
                    score_exclusions(
                        &mut algo.counts,
                        obs,
                        &result.excluded,
                        record,
                        &significant,
                    );
                }
                Err(_) => algo.failed += 1,
            }
        }
    }

    // θ/η reference on the same faulted data (paired-epoch accounting
    // inside run_dataset keeps the rates meaningful under dropouts).
    let reference = run_dataset(&faulted, REFERENCE_M, cfg);
    if reference.nr.solves > 0 {
        report.theta_dlo = reference.theta_dlo();
        report.theta_dlg = reference.theta_dlg();
        report.eta_dlo = reference.eta_dlo();
        report.eta_dlg = reference.eta_dlg();
    }

    if gps_telemetry::enabled(Level::Info) {
        Event::new(Level::Info, "sim.campaign", "campaign complete")
            .with("station", report.station.clone())
            .with("epochs", report.epochs)
            .with("availability_pct", report.availability_pct())
            .with("degraded_pct", report.degraded_pct())
            .with("holdover", report.holdover)
            .with("no_fix", report.no_fix)
            .with("missed_detections", report.resilient.missed_detections)
            .with("false_exclusions", report.resilient.false_exclusions)
            .emit();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_faults::FaultScenario;
    use gps_obs::{paper_stations, DatasetGenerator};

    fn dataset(epochs: usize) -> DataSet {
        DatasetGenerator::new(77)
            .epoch_interval_s(60.0)
            .epoch_count(epochs)
            .elevation_mask_deg(5.0)
            .generate(&paper_stations()[0])
    }

    fn cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(77);
        cfg.calibration_epochs = 10;
        cfg
    }

    #[test]
    fn default_campaign_degrades_but_stays_mostly_available() {
        let data = dataset(80);
        let plan = FaultPlan::default_campaign(42);
        let report = run_campaign(&data, &plan, &cfg());
        // Every epoch is accounted for exactly once.
        assert_eq!(
            report.nominal + report.degraded + report.holdover + report.no_fix,
            report.epochs
        );
        assert_eq!(report.epochs, 80);
        // The blackout and the deep dropout fade starve the solver:
        // availability dips below 100%, with holdover bridging part of
        // the outage before the budget runs out.
        assert!(report.availability_pct() < 100.0, "{report}");
        assert!(report.availability_pct() > 60.0, "{report}");
        assert!(report.degraded > 0, "{report}");
        assert!(report.holdover > 0, "{report}");
        assert!(report.no_fix > 0, "{report}");
        // The ramp is a detectable fault: the resilient pipeline sees
        // significant-fault epochs and excludes satellites.
        assert!(report.resilient.faulted_epochs > 0, "{report}");
        assert!(report.injections > 0);
    }

    #[test]
    fn clean_plan_is_fully_available_and_clean() {
        let data = dataset(40);
        let plan = FaultPlan::new(1); // no scenarios
        let report = run_campaign(&data, &plan, &cfg());
        assert_eq!(report.no_fix, 0, "{report}");
        assert_eq!(report.holdover, 0, "{report}");
        assert!((report.availability_pct() - 100.0).abs() < 1e-9);
        assert_eq!(report.resilient.faulted_epochs, 0);
        assert_eq!(report.resilient.missed_detections, 0);
        assert_eq!(report.injections, 0);
        // Healthy data solves at nominal quality most of the time (an
        // occasional noise spike may trip a gate into degraded).
        assert!(report.nominal > report.degraded, "{report}");
        assert!(report.error_nominal.mean() < 50.0, "{report}");
    }

    #[test]
    fn step_fault_is_detected_not_missed() {
        let data = dataset(60);
        let plan = FaultPlan::new(3).with(FaultScenario::Step {
            magnitude_m: 400.0,
            start_frac: 0.4,
            epochs: 8,
        });
        let report = run_campaign(&data, &plan, &cfg());
        assert_eq!(report.resilient.faulted_epochs, 8, "{report}");
        // A 400 m step is far outside the noise budget: the pipeline must
        // catch essentially all of it.
        assert!(
            report.resilient.missed_detections <= 1,
            "missed {} of 8: {report}",
            report.resilient.missed_detections
        );
        assert!(report.resilient.true_exclusions >= 7, "{report}");
        // The bare-RAIM pipelines see the same epochs.
        for algo in &report.per_algorithm {
            assert_eq!(algo.solved + algo.failed, report.epochs, "{}", algo.name);
            assert_eq!(algo.counts.faulted_epochs, 8, "{}", algo.name);
        }
    }

    #[test]
    fn report_renders_every_section() {
        let data = dataset(40);
        let plan = FaultPlan::default_campaign(7);
        let text = run_campaign(&data, &plan, &cfg()).to_string();
        for needle in [
            "Fault campaign",
            "availability",
            "holdover",
            "resilient integrity",
            "bare RAIM per algorithm",
            "DLG",
            "θ_DLO",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn percentages_are_consistent() {
        let report = CampaignReport {
            station: "X".into(),
            scenarios: vec![],
            seed: 0,
            epochs: 10,
            injections: 0,
            nominal: 5,
            degraded: 2,
            holdover: 2,
            no_fix: 1,
            resilient: IntegrityCounts::default(),
            error_nominal: Summary::new(),
            error_degraded: Summary::new(),
            error_holdover: Summary::new(),
            per_algorithm: vec![],
            theta_dlo: 0.0,
            theta_dlg: 0.0,
            eta_dlo: 0.0,
            eta_dlg: 0.0,
        };
        assert!((report.availability_pct() - 70.0).abs() < 1e-9);
        assert!((report.degraded_pct() - 20.0).abs() < 1e-9);
        assert!((report.holdover_pct() - 20.0).abs() < 1e-9);
    }
}
