//! Parallel fan-out of receiver scenarios across a
//! [`gps_pool::ThreadPool`].
//!
//! A fault campaign is one receiver's story: one dataset, one fault
//! plan, one pass of the resilient pipeline. A production evaluation
//! runs *fleets* of such scenarios — every station, several fault
//! mixes, several seeds — and each is independent, so they shard
//! perfectly across the pool. Results come back **in scenario order**
//! ([`gps_pool::ThreadPool::map`] reassembles by sequence stamp), so a
//! parallel fleet report is byte-identical to running the scenarios in
//! a serial loop.

use gps_faults::FaultPlan;
use gps_obs::DataSet;
use gps_pool::ThreadPool;

use crate::{run_campaign, CampaignReport, ExperimentConfig};

/// One independent campaign unit: a labelled dataset plus the fault
/// plan to apply to it.
#[derive(Debug, Clone)]
pub struct CampaignScenario {
    /// Report label (station id, fault mix, seed — caller's choice).
    pub label: String,
    /// The receiver's clean dataset.
    pub data: DataSet,
    /// The fault plan perturbing it.
    pub plan: FaultPlan,
}

impl CampaignScenario {
    /// Bundles a labelled dataset with its fault plan.
    #[must_use]
    pub fn new(label: impl Into<String>, data: DataSet, plan: FaultPlan) -> Self {
        CampaignScenario {
            label: label.into(),
            data,
            plan,
        }
    }
}

/// Runs every scenario across the pool and returns `(label, report)`
/// pairs in the input order.
///
/// Each worker runs [`run_campaign`] on its claimed scenario with its
/// own solver state (the campaign constructs its pipelines per call),
/// so no state is shared between concurrent scenarios. Campaign
/// results are deterministic per scenario, making the fleet output
/// independent of the worker count.
#[must_use]
pub fn run_campaigns(
    pool: &ThreadPool,
    scenarios: Vec<CampaignScenario>,
    cfg: &ExperimentConfig,
) -> Vec<(String, CampaignReport)> {
    let cfg = *cfg;
    // Scenarios are kept for the degraded path: if a worker is lost
    // mid-fan-out the fleet falls back to a serial loop instead of
    // dropping reports — slower, never lossy.
    let fallback = scenarios.clone();
    match pool.map(scenarios, move |_, scenario| {
        (
            scenario.label.clone(),
            run_campaign(&scenario.data, &scenario.plan, &cfg),
        )
    }) {
        Ok(reports) => reports,
        Err(err) => {
            gps_telemetry::Event::new(
                gps_telemetry::Level::Warn,
                "sim.fleet",
                "parallel fleet lost a worker; rerunning serially",
            )
            .with("error", err.to_string())
            .emit();
            fallback
                .iter()
                .map(|s| (s.label.clone(), run_campaign(&s.data, &s.plan, &cfg)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_obs::{paper_stations, DatasetGenerator};

    fn scenarios(epochs: usize) -> Vec<CampaignScenario> {
        paper_stations()
            .iter()
            .enumerate()
            .map(|(i, station)| {
                let data = DatasetGenerator::new(50 + i as u64)
                    .epoch_interval_s(60.0)
                    .epoch_count(epochs)
                    .elevation_mask_deg(5.0)
                    .generate(station);
                CampaignScenario::new(station.id(), data, FaultPlan::default_campaign(42))
            })
            .collect()
    }

    fn cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(50);
        cfg.calibration_epochs = 8;
        cfg
    }

    /// Renders a report with its wall-clock-derived θ rates masked:
    /// execution-time ratios legitimately differ between a loaded
    /// parallel run and a quiet serial one, while every count and
    /// accuracy figure must not.
    fn rendered_without_timing(report: &CampaignReport) -> String {
        report
            .to_string()
            .lines()
            .map(|line| {
                if line.trim_start().starts_with("reference rates") {
                    let eta = line.find("η_DLO").expect("rates line carries η");
                    format!("  reference rates (θ masked) {}", &line[eta..])
                } else {
                    line.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn parallel_fleet_matches_serial_loop() {
        let cfg = cfg();
        let input = scenarios(30);
        let serial: Vec<(String, CampaignReport)> = input
            .iter()
            .map(|s| (s.label.clone(), run_campaign(&s.data, &s.plan, &cfg)))
            .collect();

        let pool = ThreadPool::new(4);
        let parallel = run_campaigns(&pool, input, &cfg);

        assert_eq!(parallel.len(), serial.len());
        for ((pl, pr), (sl, sr)) in parallel.iter().zip(&serial) {
            assert_eq!(pl, sl);
            // CampaignReport has no PartialEq (Summary holds floats);
            // compare the rendered report minus the timing-derived θ
            // rates, which covers every deterministic field that
            // reaches users.
            assert_eq!(
                rendered_without_timing(pr),
                rendered_without_timing(sr),
                "{pl}"
            );
        }
        // Scenario order is the station order, not completion order.
        let labels: Vec<&str> = parallel.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["SRZN", "YYR1", "FAI1", "KYCP"]);
    }

    #[test]
    fn single_worker_pool_still_covers_all_scenarios() {
        let cfg = cfg();
        let pool = ThreadPool::new(1);
        let reports = run_campaigns(&pool, scenarios(20), &cfg);
        assert_eq!(reports.len(), 4);
        for (label, report) in &reports {
            assert_eq!(report.epochs, 20, "{label}");
        }
    }
}
