use std::fmt;

/// One point of a figure series: satellite count → rates for DLO and DLG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Number of satellites `m`.
    pub m: usize,
    /// Rate (θ or η) for DLO, percent.
    pub dlo: f64,
    /// Rate (θ or η) for DLG, percent.
    pub dlg: f64,
    /// Epochs contributing to this point.
    pub epochs: usize,
}

/// A reproduced figure: one sub-plot per dataset, each a series over the
/// satellite count, rendered as aligned ASCII tables.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure title (e.g. "Figure 5.1 Execution Time Comparisons").
    pub title: String,
    /// What the rate column means (e.g. "θ = τ_O/τ_NR × 100%").
    pub rate_legend: String,
    /// `(dataset label, series)` pairs, one per sub-plot (a)–(d).
    pub datasets: Vec<(String, Vec<SeriesPoint>)>,
}

impl FigureReport {
    /// Looks up one dataset's series by label.
    #[must_use]
    pub fn series(&self, label: &str) -> Option<&[SeriesPoint]> {
        self.datasets
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| s.as_slice())
    }

    /// Renders the figure as CSV (`dataset,m,dlo,dlg,epochs`) for
    /// external plotting tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("dataset,m,dlo_rate_pct,dlg_rate_pct,epochs\n");
        for (label, series) in &self.datasets {
            for p in series {
                out.push_str(&format!(
                    "{},{},{:.3},{:.3},{}\n",
                    label, p.m, p.dlo, p.dlg, p.epochs
                ));
            }
        }
        out
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "  rate: {}", self.rate_legend)?;
        for (idx, (label, series)) in self.datasets.iter().enumerate() {
            let sub = (b'a' + idx as u8) as char;
            writeln!(f, "\n  ({sub}) Data Set {} — {label}", idx + 1)?;
            writeln!(
                f,
                "    {:>4} {:>10} {:>10} {:>8}",
                "m", "DLO %", "DLG %", "epochs"
            )?;
            for p in series {
                writeln!(
                    f,
                    "    {:>4} {:>10.1} {:>10.1} {:>8}",
                    p.m, p.dlo, p.dlg, p.epochs
                )?;
            }
        }
        Ok(())
    }
}

/// The reproduced Table 5.1: dataset specifications.
#[derive(Debug, Clone)]
pub struct Table51Report {
    /// One row per dataset.
    pub rows: Vec<Table51Row>,
}

/// One row of Table 5.1 plus the generated dataset's satellite statistics
/// (the paper quotes "8 to 12 satellites" per data item).
#[derive(Debug, Clone)]
pub struct Table51Row {
    /// Row number (1-4).
    pub no: usize,
    /// Site id.
    pub site: String,
    /// ECEF coordinates as published.
    pub ecef: (f64, f64, f64),
    /// Date of collection.
    pub date: String,
    /// Clock correction type.
    pub clock: String,
    /// Epochs generated.
    pub epochs: usize,
    /// Min/max satellites per epoch in the generated data.
    pub sat_range: (usize, usize),
}

impl fmt::Display for Table51Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 5.1. Data Set Specifications")?;
        writeln!(
            f,
            "{:>3} {:<6} {:<42} {:<11} {:<10} {:>7} {:>7}",
            "No.", "Site", "ECEF Coordinates (X, Y, Z) (m)", "Date", "Clock", "epochs", "sats"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>3} {:<6} ({:.3}, {:.3}, {:.3}) {:<11} {:<10} {:>7} {:>4}-{}",
                r.no,
                r.site,
                r.ecef.0,
                r.ecef.1,
                r.ecef.2,
                r.date,
                r.clock,
                r.epochs,
                r.sat_range.0,
                r.sat_range.1
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureReport {
        FigureReport {
            title: "Figure X".to_owned(),
            rate_legend: "θ".to_owned(),
            datasets: vec![
                (
                    "SRZN".to_owned(),
                    vec![SeriesPoint {
                        m: 4,
                        dlo: 18.0,
                        dlg: 31.5,
                        epochs: 100,
                    }],
                ),
                ("YYR1".to_owned(), vec![]),
            ],
        }
    }

    #[test]
    fn figure_display_contains_series() {
        let text = sample_figure().to_string();
        assert!(text.contains("Figure X"));
        assert!(text.contains("(a) Data Set 1 — SRZN"));
        assert!(text.contains("(b) Data Set 2 — YYR1"));
        assert!(text.contains("18.0"));
        assert!(text.contains("31.5"));
    }

    #[test]
    fn series_lookup() {
        let fig = sample_figure();
        assert_eq!(fig.series("SRZN").unwrap().len(), 1);
        assert!(fig.series("NOPE").is_none());
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "dataset,m,dlo_rate_pct,dlg_rate_pct,epochs");
        assert_eq!(lines.len(), 2); // header + one point (YYR1 is empty)
        assert_eq!(lines[1], "SRZN,4,18.000,31.500,100");
    }

    #[test]
    fn table_display_lists_rows() {
        let report = Table51Report {
            rows: vec![Table51Row {
                no: 1,
                site: "SRZN".to_owned(),
                ecef: (3_623_420.032, -5_214_015.434, 602_359.096),
                date: "2009/08/12".to_owned(),
                clock: "Steering".to_owned(),
                epochs: 2_880,
                sat_range: (8, 12),
            }],
        };
        let text = report.to_string();
        assert!(text.contains("Table 5.1"));
        assert!(text.contains("SRZN"));
        assert!(text.contains("3623420.032"));
        assert!(text.contains("8-12"));
    }
}
