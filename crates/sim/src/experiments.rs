//! The three reproduced experiments, one per table/figure of §5.

use gps_obs::{paper_stations, DataSet, DatasetGenerator};
use gps_telemetry::{Event, Level};

use crate::report::{FigureReport, SeriesPoint, Table51Report, Table51Row};
use crate::{run_dataset, ExperimentConfig};

/// Generates the four paper datasets under the given configuration.
///
/// Dataset generation is independent per station, so the four are built
/// in parallel (one scoped thread each).
#[must_use]
pub fn generate_datasets(cfg: &ExperimentConfig) -> Vec<DataSet> {
    generate_datasets_with_budget(cfg, gps_atmosphere::ErrorBudget::default())
}

/// Like [`generate_datasets`] with an explicit error budget (the
/// sensitivity-study entry point).
#[must_use]
pub fn generate_datasets_with_budget(
    cfg: &ExperimentConfig,
    budget: gps_atmosphere::ErrorBudget,
) -> Vec<DataSet> {
    let _span = gps_telemetry::span("generate_datasets");
    let stations = paper_stations();
    let generator = DatasetGenerator::new(cfg.seed)
        .epoch_interval_s(cfg.epoch_interval_s)
        .epoch_count(cfg.epoch_count)
        .elevation_mask_deg(cfg.elevation_mask_deg)
        .error_budget(budget);
    let mut slots: Vec<Option<DataSet>> = (0..stations.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, station) in slots.iter_mut().zip(&stations) {
            let generator = &generator;
            scope.spawn(move || {
                *slot = Some(generator.generate(station));
            });
        }
    });
    let datasets: Vec<DataSet> = slots
        .into_iter()
        .map(|s| s.expect("filled by thread"))
        .collect();
    if gps_telemetry::enabled(Level::Info) {
        Event::new(Level::Info, "sim.experiments", "datasets generated")
            .with("stations", datasets.len())
            .with("epochs_per_station", cfg.epoch_count)
            .with("seed", cfg.seed)
            .emit();
    }
    datasets
}

/// Reproduces **Table 5.1** (dataset specifications): the four stations
/// with their published coordinates, dates and clock types, plus the
/// generated data's epoch and satellite-count statistics.
#[must_use]
pub fn table51(cfg: &ExperimentConfig) -> Table51Report {
    let _span = gps_telemetry::span("table51");
    let datasets = generate_datasets(cfg);
    let rows = datasets
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let st = data.station();
            let p = st.position();
            Table51Row {
                no: i + 1,
                site: st.id().to_owned(),
                ecef: (p.x, p.y, p.z),
                date: st.date().to_string(),
                clock: st.correction_type().to_string(),
                epochs: data.epochs().len(),
                sat_range: data.satellite_count_range(),
            }
        })
        .collect();
    Table51Report { rows }
}

/// Runs the full satellite-count sweep over one dataset, returning one
/// figure series per rate extractor.
fn sweep<F>(data: &DataSet, cfg: &ExperimentConfig, extract: F) -> Vec<SeriesPoint>
where
    F: Fn(&crate::RunResult) -> (f64, f64),
{
    cfg.satellite_counts()
        .filter_map(|m| {
            let result = run_dataset(data, m, cfg);
            if result.epochs_used == 0 || result.nr.solves == 0 {
                return None; // nothing to rate at this count
            }
            let (dlo, dlg) = extract(&result);
            Some(SeriesPoint {
                m,
                dlo,
                dlg,
                epochs: result.epochs_used,
            })
        })
        .collect()
}

/// Reproduces **Figure 5.1** (Execution Time Comparisons): the
/// execution-time rate `θ = τ_O/τ_NR × 100 %` versus the satellite count,
/// for each of the four datasets.
///
/// The paper's observed shape: θ_DLO stays below ≈20 % roughly flat;
/// θ_DLG grows with the satellite count toward ≈50 % at `m = 10`.
#[must_use]
pub fn fig51(cfg: &ExperimentConfig) -> FigureReport {
    let _span = gps_telemetry::span("fig51");
    let datasets = generate_datasets(cfg);
    FigureReport {
        title: "Figure 5.1 Execution Time Comparisons (reproduction)".to_owned(),
        rate_legend: "θ = τ_O / τ_NR × 100% (eq. 5-3); < 100% means faster than NR".to_owned(),
        datasets: datasets
            .iter()
            .map(|data| {
                let series = sweep(data, cfg, |r| (r.theta_dlo(), r.theta_dlg()));
                (data.station().id().to_owned(), series)
            })
            .collect(),
    }
}

/// Reproduces **Figure 5.2** (Accuracy Comparisons): the accuracy rate
/// `η = d_O/d_NR × 100 %` versus the satellite count, for each of the four
/// datasets.
///
/// The paper's observed shape: η_DLG ≈ 110 % nearly constant in `m`;
/// η_DLO degrades as satellites are added, reaching ≈120 % at `m = 10`.
#[must_use]
pub fn fig52(cfg: &ExperimentConfig) -> FigureReport {
    let _span = gps_telemetry::span("fig52");
    let datasets = generate_datasets(cfg);
    FigureReport {
        title: "Figure 5.2 Accuracy Comparisons (reproduction)".to_owned(),
        rate_legend: "η = d_O / d_NR × 100% (eq. 5-2); > 100% means less accurate than NR"
            .to_owned(),
        datasets: datasets
            .iter()
            .map(|data| {
                let series = sweep(data, cfg, |r| (r.eta_dlo(), r.eta_dlg()));
                (data.station().id().to_owned(), series)
            })
            .collect(),
    }
}

/// Extension experiment (paper §6, extension 1): accuracy rate of DLO
/// under different base-satellite selections, swept over the satellite
/// count.
///
/// The harness feeds elevation-sorted measurements, so the paper's
/// "randomly chosen" base and the *best* base (highest elevation — the
/// cleanest equation) coincide on the `First` strategy; the informative
/// bracket is therefore best vs **worst**: the `dlo` column uses the
/// lowest-elevation base (noisiest equation subtracted from all others),
/// the `dlg` column the highest-elevation base. The gap bounds what the
/// extension can possibly buy.
#[must_use]
pub fn ext_base_selection(cfg: &ExperimentConfig) -> FigureReport {
    use gps_core::{BaseSelection, Dlo};
    let _span = gps_telemetry::span("ext_base_selection");
    let datasets = generate_datasets(cfg);
    let worst_base = crate::SolverSet {
        dlo: Dlo::new().with_base_selection(BaseSelection::LowestElevation),
        ..crate::SolverSet::default()
    };
    let best_base = crate::SolverSet {
        dlo: Dlo::new().with_base_selection(BaseSelection::HighestElevation),
        ..crate::SolverSet::default()
    };
    FigureReport {
        title: "Extension 1: base-satellite selection (accuracy rate of DLO)".to_owned(),
        rate_legend:
            "η = d/d_NR × 100%; DLO column = lowest-elevation base (worst), DLG column = highest-elevation base (best)"
                .to_owned(),
        datasets: datasets
            .iter()
            .map(|data| {
                let series: Vec<SeriesPoint> = cfg
                    .satellite_counts()
                    .filter_map(|m| {
                        let r_worst = crate::run_dataset_with(data, m, cfg, &worst_base);
                        let r_best = crate::run_dataset_with(data, m, cfg, &best_base);
                        if r_worst.nr.solves == 0 || r_best.nr.solves == 0 {
                            return None;
                        }
                        Some(SeriesPoint {
                            m,
                            dlo: r_worst.eta_dlo(),
                            dlg: r_best.eta_dlo(),
                            epochs: r_best.epochs_used,
                        })
                    })
                    .collect();
                (data.station().id().to_owned(), series)
            })
            .collect(),
    }
}

/// Extension experiment (DESIGN.md GLS-covariance ablation): accuracy
/// rate of DLG with the paper's full Ψ (the `dlg` column) versus the
/// diagonal-only covariance (the `dlo` column), isolating the value of
/// modeling the Theorem 4.1 correlation.
#[must_use]
pub fn ext_gls_covariance(cfg: &ExperimentConfig) -> FigureReport {
    use gps_core::{CovarianceModel, Dlg};
    let _span = gps_telemetry::span("ext_gls_covariance");
    let datasets = generate_datasets(cfg);
    let diagonal = crate::SolverSet {
        dlg: Dlg::new().with_covariance_model(CovarianceModel::DiagonalOnly),
        ..crate::SolverSet::default()
    };
    let full = crate::SolverSet::default();
    FigureReport {
        title: "Ablation: GLS covariance structure (accuracy rate of DLG)".to_owned(),
        rate_legend:
            "η = d/d_NR × 100%; DLO column = diagonal-only Ψ, DLG column = full Ψ (paper eq. 4-26)"
                .to_owned(),
        datasets: datasets
            .iter()
            .map(|data| {
                let series: Vec<SeriesPoint> = cfg
                    .satellite_counts()
                    .filter_map(|m| {
                        let r_diag = crate::run_dataset_with(data, m, cfg, &diagonal);
                        let r_full = crate::run_dataset_with(data, m, cfg, &full);
                        if r_diag.nr.solves == 0 || r_full.nr.solves == 0 {
                            return None;
                        }
                        Some(SeriesPoint {
                            m,
                            dlo: r_diag.eta_dlg(),
                            dlg: r_full.eta_dlg(),
                            epochs: r_full.epochs_used,
                        })
                    })
                    .collect();
                (data.station().id().to_owned(), series)
            })
            .collect(),
    }
}

/// Satellite counts swept by [`theta_vs_m`]: the paper's 4–10 band plus
/// the multi-constellation extension out to m = 40 (ROADMAP item 4).
pub const THETA_VS_M_COUNTS: [usize; 9] = [4, 6, 8, 10, 14, 20, 28, 34, 40];

/// ROADMAP items 2+4 experiment: the paper's Figure 5.1 execution-time
/// rate `θ = τ/τ_NR × 100 %` re-plotted to large satellite counts with
/// **both DLG GLS paths** — the structured Sherman–Morrison lane (`dlo`
/// column) versus the dense-Ψ Cholesky lane (`dlg` column).
///
/// The SRZN dataset is regenerated over the
/// [`gps_orbits::Constellation::multi_gnss_nominal`] space segment so
/// epochs reach m ≈ 40 visible, and the sweep uses the fixed
/// [`THETA_VS_M_COUNTS`] grid instead of `cfg`'s 4–10 band (counts no
/// epoch reaches are skipped). The paper's dense DLG grows like O(m³)
/// and falls off a cliff here; the structured path stays O(m·n) and
/// bends the curve back down.
#[must_use]
pub fn theta_vs_m(cfg: &ExperimentConfig) -> FigureReport {
    use gps_core::{Dlg, GlsPath};
    let _span = gps_telemetry::span("theta_vs_m");
    let station = paper_stations().remove(0); // SRZN, the steering station
    let data = DatasetGenerator::new(cfg.seed)
        .epoch_interval_s(cfg.epoch_interval_s)
        .epoch_count(cfg.epoch_count)
        .elevation_mask_deg(cfg.elevation_mask_deg)
        .constellation(gps_orbits::Constellation::multi_gnss_nominal())
        .generate(&station);
    let structured = crate::SolverSet::default(); // Dlg defaults to Structured
    let dense = crate::SolverSet {
        dlg: Dlg::new().with_gls_path(GlsPath::DenseWhitened),
        ..crate::SolverSet::default()
    };
    let series: Vec<SeriesPoint> = THETA_VS_M_COUNTS
        .iter()
        .filter_map(|&m| {
            let r_structured = crate::run_dataset_with(&data, m, cfg, &structured);
            let r_dense = crate::run_dataset_with(&data, m, cfg, &dense);
            if r_structured.nr.solves == 0 || r_dense.nr.solves == 0 {
                return None; // no epoch reached this satellite count
            }
            Some(SeriesPoint {
                m,
                dlo: r_structured.theta_dlg(),
                dlg: r_dense.theta_dlg(),
                epochs: r_structured.epochs_used,
            })
        })
        .collect();
    FigureReport {
        title: "θ vs m to 40 satellites: structured vs dense-Ψ DLG (SRZN, multi-GNSS)".to_owned(),
        rate_legend:
            "θ = τ/τ_NR × 100% (eq. 5-3); DLO column = DLG w/ Sherman–Morrison GLS, DLG column = DLG w/ dense Ψ Cholesky"
                .to_owned(),
        datasets: vec![("SRZN @ multi-GNSS".to_owned(), series)],
    }
}

/// Robustness experiment: applies a [`gps_faults::FaultPlan`] to the
/// SRZN dataset and reports availability, degradation and integrity of
/// the [`gps_core::ResilientSolver`] pipeline (plus per-algorithm bare
/// RAIM scoring and the θ/η reference rates on the faulted data). See
/// [`crate::run_campaign`] for the mechanics and docs/ROBUSTNESS.md for
/// the fault taxonomy.
#[must_use]
pub fn fault_campaign(
    cfg: &ExperimentConfig,
    plan: &gps_faults::FaultPlan,
) -> crate::CampaignReport {
    let _span = gps_telemetry::span("fault_campaign_experiment");
    let station = paper_stations().remove(0); // SRZN, the steering station
    let data = DatasetGenerator::new(cfg.seed)
        .epoch_interval_s(cfg.epoch_interval_s)
        .epoch_count(cfg.epoch_count)
        .elevation_mask_deg(cfg.elevation_mask_deg)
        .generate(&station);
    crate::run_campaign(&data, plan, cfg)
}

/// Like [`fault_campaign`], but fanned across **all four** paper
/// stations in parallel: each station's dataset is generated, paired
/// with the same fault plan, and the four campaigns are sharded over a
/// [`gps_pool::ThreadPool`] with `jobs` workers. Reports come back in
/// station order regardless of the worker count.
#[must_use]
pub fn fault_campaign_fleet(
    cfg: &ExperimentConfig,
    plan: &gps_faults::FaultPlan,
    jobs: usize,
) -> Vec<(String, crate::CampaignReport)> {
    let _span = gps_telemetry::span("fault_campaign_fleet");
    let scenarios: Vec<crate::CampaignScenario> = generate_datasets(cfg)
        .into_iter()
        .map(|data| {
            let label = data.station().id().to_owned();
            crate::CampaignScenario::new(label, data, plan.clone())
        })
        .collect();
    let pool = gps_pool::ThreadPool::new(jobs);
    crate::run_campaigns(&pool, scenarios, cfg)
}

/// Sensitivity study: do the paper's accuracy rates survive a noisier (or
/// cleaner) receiver? Re-runs the Fig 5.2 sweep on the YYR1 dataset with
/// the whole error budget scaled by 0.5×, 1× and 2×. One "dataset" per
/// scale in the returned figure.
#[must_use]
pub fn ext_noise_sensitivity(cfg: &ExperimentConfig) -> FigureReport {
    let _span = gps_telemetry::span("ext_noise_sensitivity");
    let station = paper_stations().remove(1); // YYR1
    let datasets: Vec<(String, DataSet)> = [0.5, 1.0, 2.0]
        .iter()
        .map(|&scale| {
            let data = DatasetGenerator::new(cfg.seed)
                .epoch_interval_s(cfg.epoch_interval_s)
                .epoch_count(cfg.epoch_count)
                .elevation_mask_deg(cfg.elevation_mask_deg)
                .error_budget(gps_atmosphere::ErrorBudget::scaled(scale))
                .generate(&station);
            (format!("YYR1 @ {scale}x error budget"), data)
        })
        .collect();
    FigureReport {
        title: "Sensitivity: accuracy rates vs error-budget scale (YYR1)".to_owned(),
        rate_legend: "η = d_O / d_NR × 100% (eq. 5-2)".to_owned(),
        datasets: datasets
            .into_iter()
            .map(|(label, data)| {
                let series = sweep(&data, cfg, |r| (r.eta_dlo(), r.eta_dlg()));
                (label, series)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table51_matches_paper_metadata() {
        let cfg = ExperimentConfig {
            epoch_count: 20,
            ..ExperimentConfig::quick(5)
        };
        let report = table51(&cfg);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[0].site, "SRZN");
        assert_eq!(report.rows[0].clock, "Steering");
        assert_eq!(report.rows[3].site, "KYCP");
        assert_eq!(report.rows[3].clock, "Threshold");
        assert_eq!(report.rows[1].date, "2009/10/23");
        assert!((report.rows[0].ecef.0 - 3_623_420.032).abs() < 1e-9);
        for r in &report.rows {
            assert_eq!(r.epochs, 20);
            assert!(r.sat_range.0 >= 5, "{}: {:?}", r.site, r.sat_range);
            assert!(r.sat_range.1 <= 15);
        }
    }

    #[test]
    fn generate_datasets_is_deterministic() {
        let cfg = ExperimentConfig {
            epoch_count: 5,
            ..ExperimentConfig::quick(9)
        };
        let a = generate_datasets(&cfg);
        let b = generate_datasets(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn fig51_series_have_expected_shape() {
        // Small but long enough for timing ratios to make sense.
        let mut cfg = ExperimentConfig::quick(13);
        cfg.epoch_count = 60;
        cfg.calibration_epochs = 10;
        cfg.min_satellites = 4;
        cfg.max_satellites = 8;
        let report = fig51(&cfg);
        assert_eq!(report.datasets.len(), 4);
        for (label, series) in &report.datasets {
            assert!(!series.is_empty(), "{label}: empty series");
            for p in series {
                assert!(p.dlo > 0.0 && p.dlg > 0.0);
                assert!(p.dlo.is_finite() && p.dlg.is_finite());
                // Strict timing shape only holds in optimized builds; in
                // debug the allocator and bounds checks distort ratios.
                if !cfg!(debug_assertions) {
                    assert!(p.dlo < 100.0, "{label} m={}: θ_DLO {}", p.m, p.dlo);
                    assert!(p.dlg < 100.0, "{label} m={}: θ_DLG {}", p.m, p.dlg);
                }
            }
        }
    }

    #[test]
    fn extension_experiments_produce_series() {
        let mut cfg = ExperimentConfig::quick(23);
        cfg.epoch_count = 30;
        cfg.calibration_epochs = 8;
        cfg.min_satellites = 6;
        cfg.max_satellites = 7;
        for report in [ext_base_selection(&cfg), ext_gls_covariance(&cfg)] {
            assert_eq!(report.datasets.len(), 4);
            for (label, series) in &report.datasets {
                for p in series {
                    assert!(p.dlo.is_finite() && p.dlo > 0.0, "{label}: {p:?}");
                    assert!(p.dlg.is_finite() && p.dlg > 0.0, "{label}: {p:?}");
                }
            }
        }
    }

    #[test]
    fn theta_vs_m_reaches_large_counts() {
        let mut cfg = ExperimentConfig::quick(37);
        cfg.epoch_count = 40;
        cfg.calibration_epochs = 8;
        let report = theta_vs_m(&cfg);
        assert_eq!(report.datasets.len(), 1);
        let series = &report.datasets[0].1;
        assert!(!series.is_empty());
        // The multi-GNSS segment must carry the sweep well past the
        // GPS-only m ≤ 14 ceiling.
        let max_m = series.iter().map(|p| p.m).max().unwrap();
        assert!(max_m >= 28, "sweep topped out at m = {max_m}");
        for p in series {
            assert!(p.dlo.is_finite() && p.dlo > 0.0, "{p:?}");
            assert!(p.dlg.is_finite() && p.dlg > 0.0, "{p:?}");
        }
        // In optimized builds the structured path must not be slower
        // than dense at the largest swept count (the whole point of the
        // Sherman–Morrison lane); debug builds distort timing too much
        // to pin.
        if !cfg!(debug_assertions) {
            let top = series.last().unwrap();
            assert!(
                top.dlo <= top.dlg,
                "structured θ {} > dense θ {} at m = {}",
                top.dlo,
                top.dlg,
                top.m
            );
        }
    }

    #[test]
    fn sensitivity_report_has_three_scales() {
        let mut cfg = ExperimentConfig::quick(29);
        cfg.epoch_count = 30;
        cfg.calibration_epochs = 8;
        cfg.min_satellites = 7;
        cfg.max_satellites = 7;
        let report = ext_noise_sensitivity(&cfg);
        assert_eq!(report.datasets.len(), 3);
        assert!(report.datasets[0].0.contains("0.5x"));
        for (label, series) in &report.datasets {
            assert!(!series.is_empty(), "{label}");
            for p in series {
                assert!(p.dlo.is_finite() && p.dlg.is_finite(), "{label}: {p:?}");
            }
        }
    }

    #[test]
    fn scaled_budget_changes_absolute_errors() {
        let mut cfg = ExperimentConfig::quick(31);
        cfg.epoch_count = 40;
        cfg.calibration_epochs = 10;
        let quiet = generate_datasets_with_budget(&cfg, gps_atmosphere::ErrorBudget::scaled(0.5));
        let loud = generate_datasets_with_budget(&cfg, gps_atmosphere::ErrorBudget::scaled(2.0));
        let r_quiet = crate::run_dataset(&quiet[0], 8, &cfg);
        let r_loud = crate::run_dataset(&loud[0], 8, &cfg);
        assert!(r_loud.nr.error.mean() > r_quiet.nr.error.mean() * 1.5);
    }

    #[test]
    fn fig52_rates_are_finite_and_positive() {
        let mut cfg = ExperimentConfig::quick(17);
        cfg.epoch_count = 40;
        cfg.calibration_epochs = 10;
        cfg.min_satellites = 5;
        cfg.max_satellites = 7;
        let report = fig52(&cfg);
        for (label, series) in &report.datasets {
            for p in series {
                assert!(p.dlo.is_finite() && p.dlo > 0.0, "{label}: {p:?}");
                assert!(p.dlg.is_finite() && p.dlg > 0.0, "{label}: {p:?}");
            }
        }
    }
}
