//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! Three experiments, one per table/figure:
//!
//! * [`experiments::table51`] — regenerates **Table 5.1** (dataset
//!   specifications) from the built-in station list and a generated
//!   dataset's satellite statistics;
//! * [`experiments::fig51`] — **Figure 5.1**, Execution Time Comparisons:
//!   sweeps the satellite count `m = 4..=10` over each dataset and reports
//!   the execution-time rate `θ = τ_O/τ_NR × 100 %` for DLO and DLG;
//! * [`experiments::fig52`] — **Figure 5.2**, Accuracy Comparisons: the
//!   same sweep reporting the accuracy rate `η = d_O/d_NR × 100 %`.
//!
//! Beyond the paper's tables, [`experiments::fault_campaign`] measures
//! availability and integrity under injected faults (a
//! [`gps_faults::FaultPlan`] applied to a generated dataset, solved by
//! the [`gps_core::ResilientSolver`] degradation pipeline).
//!
//! The pipeline matches §5.2: datasets are generated per station
//! (substituting the paper's CORS downloads — see DESIGN.md), the clock
//! predictor is bootstrapped exactly as §5.2.2 describes (`D` from an
//! NR-derived bias via eq. 5-4, once at initialization for steering
//! stations and at every reset for the threshold station; `r` fitted over
//! a startup window), and every epoch is then solved by NR, DLO and DLG
//! with per-algorithm wall-clock timing.
//!
//! # Example
//!
//! ```no_run
//! use gps_sim::{experiments, ExperimentConfig};
//!
//! let cfg = ExperimentConfig::quick(42);
//! let fig51 = experiments::fig51(&cfg);
//! println!("{fig51}");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod campaign;
mod config;
pub mod experiments;
mod parallel;
mod report;
mod runner;
mod service;

pub use campaign::{
    run_campaign, AlgoIntegrity, CampaignReport, IntegrityCounts, DETECTION_FLOOR_M,
};
pub use config::ExperimentConfig;
pub use parallel::{run_campaigns, CampaignScenario};
pub use report::{FigureReport, SeriesPoint, Table51Report};
pub use runner::{
    run_dataset, run_dataset_with, select_subset, to_measurements, to_rate_measurements, AlgoStats,
    ClockCalibration, RunResult, SolverSet,
};
pub use service::{
    run_service_campaign, JournalVerdict, ServiceCampaignConfig, ServiceCampaignReport,
    MISSED_INTEGRITY_FLOOR_M,
};
