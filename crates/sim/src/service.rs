//! Fleet-scale service campaign: drives a [`PositioningService`] with a
//! multi-receiver observation fleet, optionally under signal faults
//! ([`FaultPlan`]) and runtime chaos ([`RuntimeFaultPlan`]), and scores
//! the service-level objectives ISSUE 7 cares about: fix availability,
//! tail latency, shed volume, recovery, integrity, and crash-safe
//! journal replay.
//!
//! The campaign is the service-level analogue of
//! [`run_campaign`](crate::run_campaign): where that experiment measures
//! one solver pipeline's behavior under *signal* faults, this one
//! measures a whole positioning fleet's behavior when the *runtime*
//! itself misbehaves — workers panic and die, shard jobs stall past
//! their deadline budget, ingest bursts overflow the bounded queues,
//! and the journal loses its tail to a SIGKILL.

use std::collections::HashMap;
use std::fmt;
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::time::Duration;

use gps_core::{
    fleet_digest, replay_journal, ChaosOp, FixQuality, IngestResult, PositioningService,
    RoundResult, ServiceConfig, SessionEpoch, SolveError,
};
use gps_faults::{
    emit_runtime_injection, FaultPlan, FaultScenario, RoundFaults, RuntimeFaultKind,
    RuntimeFaultPlan,
};
use gps_geodesy::Ecef;
use gps_obs::{paper_stations, DatasetGenerator};
use gps_telemetry::{Event, Level};

use crate::to_measurements;

/// A nominal-quality fix farther than this from the receiver's true
/// position is a **missed integrity** event: the service vouched for a
/// wrong answer. The chaos SLO requires zero of these — degrading or
/// erroring under chaos is acceptable, lying is not.
pub const MISSED_INTEGRITY_FLOOR_M: f64 = 100.0;

/// Extra no-ingest rounds run after the scripted rounds so epochs left
/// queued behind a panicked or stalled shard get their chance to drain.
const DRAIN_ROUNDS: usize = 4;

/// Configuration of one service campaign.
#[derive(Debug, Clone)]
pub struct ServiceCampaignConfig {
    /// Seed for fleet generation (receiver `r` streams from
    /// `seed + r`).
    pub seed: u64,
    /// Receivers in the fleet (stations assigned round-robin from
    /// [`paper_stations`]).
    pub sessions: usize,
    /// Scripted ingest rounds (drain rounds run extra).
    pub rounds: usize,
    /// Seconds between a receiver's consecutive epochs.
    pub epoch_interval_s: f64,
    /// Service tuning (workers, shards, queues, deadline, journal
    /// batching).
    pub service: ServiceConfig,
    /// Signal-level fault plan applied to every receiver's stream.
    pub signal_faults: Option<FaultPlan>,
    /// Runtime chaos plan resolved against `rounds` × shards.
    pub runtime_faults: Option<RuntimeFaultPlan>,
    /// Journal path; `None` runs without crash-safety.
    pub journal: Option<PathBuf>,
}

impl ServiceCampaignConfig {
    /// A fast, fault-free baseline: a small fleet on default service
    /// tuning with a deadline wide enough that healthy epochs never
    /// expire.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        let service = ServiceConfig {
            deadline: Duration::from_millis(250),
            ..Default::default()
        };
        ServiceCampaignConfig {
            seed,
            sessions: 12,
            rounds: 24,
            epoch_interval_s: 1.0,
            service,
            signal_faults: None,
            runtime_faults: None,
            journal: None,
        }
    }

    /// The chaos campaign: signal faults layered with the default
    /// runtime chaos mix (panic storm, worker kill, stall injection,
    /// burst overload, journal truncation).
    ///
    /// The signal mix is deliberately *recoverable* — steps, multipath
    /// bursts, a clock jump, NaN corruption — because the campaign's
    /// availability SLO scores the **service's** contribution to
    /// downtime. A total blackout makes fixing physically impossible
    /// for any implementation; that regime is measured by the signal
    /// fault campaign ([`crate::run_campaign`]), not the runtime one.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        let mut cfg = ServiceCampaignConfig::quick(seed);
        cfg.sessions = 16;
        cfg.rounds = 40;
        cfg.signal_faults = Some(
            FaultPlan::new(seed)
                .with(FaultScenario::step())
                .with(FaultScenario::multipath())
                .with(FaultScenario::clock_jump())
                .with(FaultScenario::corruption()),
        );
        cfg.runtime_faults = Some(RuntimeFaultPlan::default_chaos(seed.wrapping_add(1)));
        cfg
    }
}

/// One receiver's pre-generated epoch stream.
struct ReceiverStream {
    receiver: u64,
    truth: Ecef,
    epochs: Vec<Vec<gps_core::Measurement>>,
}

/// Generates the fleet: `sessions` receivers assigned round-robin to
/// the paper's stations, each with its own seeded dataset, with the
/// signal fault plan (if any) applied per stream.
fn build_fleet(cfg: &ServiceCampaignConfig) -> Vec<ReceiverStream> {
    let stations = paper_stations();
    stations
        .iter()
        .cycle()
        .take(cfg.sessions)
        .enumerate()
        .map(|(index, station)| {
            let receiver = index as u64;
            let data = DatasetGenerator::new(cfg.seed.wrapping_add(receiver))
                .epoch_interval_s(cfg.epoch_interval_s)
                .epoch_count(cfg.rounds)
                .elevation_mask_deg(5.0)
                .generate(station);
            let data = match &cfg.signal_faults {
                Some(plan) => plan.apply(&data).data,
                None => data,
            };
            ReceiverStream {
                receiver,
                truth: station.position(),
                epochs: data
                    .epochs()
                    .iter()
                    .map(|e| to_measurements(e.observations()))
                    .collect(),
            }
        })
        .collect()
}

/// Journal verification appended to a campaign that ran with one.
#[derive(Debug, Clone)]
pub struct JournalVerdict {
    /// Journal file path.
    pub path: PathBuf,
    /// Bytes chopped off the tail by the chaos plan (0 = intact).
    pub truncated_bytes: u64,
    /// Records the replay decoded.
    pub records: usize,
    /// Whether the reader stopped at a torn tail.
    pub torn_tail: bool,
    /// Replay records whose recomputed outcome disagreed with the
    /// journaled one (must be 0).
    pub mismatches: usize,
    /// [`gps_core::ReplayReport::verified`] — structurally intact and
    /// mismatch-free.
    pub replay_verified: bool,
    /// Whether the replayed per-receiver digests equal the live
    /// service's bit-for-bit (expected exactly when
    /// `truncated_bytes == 0`).
    pub digest_parity: bool,
}

/// Scoring of one service campaign.
#[derive(Debug, Clone)]
pub struct ServiceCampaignReport {
    /// Receivers in the fleet.
    pub sessions: usize,
    /// Scripted rounds.
    pub rounds: usize,
    /// Ingest attempts (the availability denominator — burst
    /// duplicates included).
    pub ingest_attempts: usize,
    /// Epochs shed by backpressure.
    pub shed: usize,
    /// Outcomes at nominal quality.
    pub nominal: usize,
    /// Outcomes at degraded quality.
    pub degraded: usize,
    /// Outcomes bridged by holdover.
    pub holdover: usize,
    /// Outcomes dropped on an expired deadline with holdover already
    /// exhausted.
    pub deadline_errors: usize,
    /// Outcomes with any other solve error.
    pub no_fix: usize,
    /// Nominal fixes farther than [`MISSED_INTEGRITY_FLOOR_M`] from
    /// truth (SLO: 0).
    pub missed_integrity: usize,
    /// Median per-epoch service latency, µs (exact, not estimated).
    pub p50_latency_us: u64,
    /// 99th-percentile per-epoch service latency, µs (exact).
    pub p99_latency_us: u64,
    /// `pool.worker_restarts` delta across the run.
    pub worker_restarts: u64,
    /// Shard jobs that never completed their round.
    pub round_failures: usize,
    /// Longest streak of consecutive degraded rounds (a round is
    /// degraded when some shard failed to complete) — the recovery
    /// SLO.
    pub longest_outage_rounds: usize,
    /// Runtime injections performed.
    pub runtime_injections: usize,
    /// Sessions evicted for idleness.
    pub evicted: usize,
    /// Fleet-wide outcome digest of the live service.
    pub fleet_digest: u64,
    /// Journal verification, when the campaign journaled.
    pub journal: Option<JournalVerdict>,
}

impl ServiceCampaignReport {
    /// Epochs that produced a usable output (nominal + degraded +
    /// holdover) as a percentage of all ingest attempts. Shed epochs,
    /// expired deadlines without holdover, and solve failures all
    /// count against it.
    #[must_use]
    pub fn availability_pct(&self) -> f64 {
        if self.ingest_attempts == 0 {
            return 0.0;
        }
        100.0 * (self.nominal + self.degraded + self.holdover) as f64 / self.ingest_attempts as f64
    }

    /// Whether the run met the chaos SLOs: availability at or above
    /// `floor_pct` and zero missed-integrity events (and, when
    /// journaled, a clean replay).
    #[must_use]
    pub fn meets_slo(&self, floor_pct: f64) -> bool {
        self.availability_pct() >= floor_pct
            && self.missed_integrity == 0
            && self.journal.as_ref().is_none_or(|j| j.replay_verified)
    }

    /// Serializes the report as a `BENCH_service.json`-shaped document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"service\",\n");
        let mut num = |key: &str, v: f64| {
            out.push_str(&format!("  \"{key}\": {v},\n"));
        };
        num("sessions", self.sessions as f64);
        num("rounds", self.rounds as f64);
        num("ingest_attempts", self.ingest_attempts as f64);
        num(
            "availability_pct",
            (self.availability_pct() * 100.0).round() / 100.0,
        );
        num("nominal", self.nominal as f64);
        num("degraded", self.degraded as f64);
        num("holdover", self.holdover as f64);
        num("shed", self.shed as f64);
        num("deadline_errors", self.deadline_errors as f64);
        num("no_fix", self.no_fix as f64);
        num("missed_integrity", self.missed_integrity as f64);
        num("p50_latency_us", self.p50_latency_us as f64);
        num("p99_latency_us", self.p99_latency_us as f64);
        num("worker_restarts", self.worker_restarts as f64);
        num("round_failures", self.round_failures as f64);
        num("longest_outage_rounds", self.longest_outage_rounds as f64);
        num("runtime_injections", self.runtime_injections as f64);
        num("evicted", self.evicted as f64);
        let journal = match &self.journal {
            Some(j) => format!(
                "{{\"records\": {}, \"truncated_bytes\": {}, \"torn_tail\": {}, \"mismatches\": {}, \"replay_verified\": {}, \"digest_parity\": {}}}",
                j.records, j.truncated_bytes, j.torn_tail, j.mismatches, j.replay_verified, j.digest_parity
            ),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "  \"fleet_digest\": \"{:016x}\",\n",
            self.fleet_digest
        ));
        out.push_str(&format!("  \"journal\": {journal}\n}}\n"));
        out
    }
}

impl fmt::Display for ServiceCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Service campaign — {} receivers × {} rounds, {} ingest attempts",
            self.sessions, self.rounds, self.ingest_attempts
        )?;
        writeln!(
            f,
            "  availability {:.2}% — nominal {}, degraded {}, holdover {}; shed {}, deadline errors {}, no fix {}",
            self.availability_pct(),
            self.nominal,
            self.degraded,
            self.holdover,
            self.shed,
            self.deadline_errors,
            self.no_fix
        )?;
        writeln!(
            f,
            "  latency p50 {} µs, p99 {} µs; missed integrity {} (floor {MISSED_INTEGRITY_FLOOR_M} m)",
            self.p50_latency_us, self.p99_latency_us, self.missed_integrity
        )?;
        writeln!(
            f,
            "  chaos: {} injections, worker restarts {}, round failures {}, longest outage {} round(s), evicted {}",
            self.runtime_injections,
            self.worker_restarts,
            self.round_failures,
            self.longest_outage_rounds,
            self.evicted
        )?;
        write!(f, "  fleet digest {:016x}", self.fleet_digest)?;
        if let Some(j) = &self.journal {
            write!(
                f,
                "\n  journal: {} records, cut {} B, torn tail {}, mismatches {}, replay {}, digest parity {}",
                j.records,
                j.truncated_bytes,
                j.torn_tail,
                j.mismatches,
                if j.replay_verified { "verified" } else { "FAILED" },
                j.digest_parity
            )?;
        }
        Ok(())
    }
}

/// Running tallies folded over each round's [`RoundResult`].
#[derive(Default)]
struct Tally {
    nominal: usize,
    degraded: usize,
    holdover: usize,
    deadline_errors: usize,
    no_fix: usize,
    missed_integrity: usize,
    latencies: Vec<u64>,
    round_failures: usize,
    outage_streak: usize,
    longest_outage: usize,
    evicted: usize,
}

impl Tally {
    fn absorb(&mut self, result: &RoundResult, truths: &HashMap<u64, Ecef>) {
        for outcome in &result.outcomes {
            self.latencies.push(outcome.latency_us);
            match &outcome.result {
                Ok(fix) => match fix.quality {
                    FixQuality::Nominal => {
                        self.nominal += 1;
                        let wide = truths.get(&outcome.receiver).is_some_and(|truth| {
                            fix.position.distance_to(*truth) > MISSED_INTEGRITY_FLOOR_M
                        });
                        if wide {
                            self.missed_integrity += 1;
                        }
                    }
                    FixQuality::Degraded => self.degraded += 1,
                    FixQuality::Holdover => self.holdover += 1,
                },
                Err(SolveError::DeadlineExceeded { .. }) => self.deadline_errors += 1,
                Err(_) => self.no_fix += 1,
            }
        }
        self.round_failures += result.expected_shards - result.completed_shards;
        if result.completed_shards < result.expected_shards {
            self.outage_streak += 1;
            self.longest_outage = self.longest_outage.max(self.outage_streak);
        } else {
            self.outage_streak = 0;
        }
        self.evicted += result.evicted;
    }
}

/// Exact percentile of a latency population (nearest-rank).
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0)
}

/// Runs one service campaign end to end: generates the fleet, drives
/// the service round by round with the scheduled chaos injections,
/// drains the backlog, and (when journaled) truncates and replays the
/// journal.
///
/// # Errors
///
/// Returns an I/O error if journal creation, truncation, or replay
/// fails at the filesystem level (replay *mismatches* are reported in
/// the [`JournalVerdict`], not as errors).
pub fn run_service_campaign(cfg: &ServiceCampaignConfig) -> std::io::Result<ServiceCampaignReport> {
    let _span = gps_telemetry::span("service_campaign");
    let fleet = build_fleet(cfg);
    let truths: HashMap<u64, Ecef> = fleet.iter().map(|r| (r.receiver, r.truth)).collect();
    let mut service = match &cfg.journal {
        Some(path) => PositioningService::new(cfg.service).with_journal(path)?,
        None => PositioningService::new(cfg.service),
    };
    let schedule = cfg
        .runtime_faults
        .as_ref()
        .map(|plan| plan.schedule(cfg.rounds, cfg.service.shards));
    let restarts_counter = gps_telemetry::counter("pool.worker_restarts");
    let restarts_before = restarts_counter.value();

    let mut tally = Tally::default();
    let mut ingest_attempts = 0usize;
    let mut shed = 0usize;
    let mut runtime_injections = 0usize;

    for round in 0..cfg.rounds {
        let faults: RoundFaults = schedule
            .as_ref()
            .map_or_else(RoundFaults::default, |s| s.round(round));
        let next = service.round() + 1;
        for _ in 0..faults.worker_kills {
            service.pool().inject_worker_exit();
            emit_runtime_injection(RuntimeFaultKind::WorkerKill, next, 1.0);
            runtime_injections += 1;
        }
        for &shard in &faults.panic_shards {
            service.set_chaos(next, shard, ChaosOp::Panic);
            emit_runtime_injection(RuntimeFaultKind::PanicStorm, next, shard as f64);
            runtime_injections += 1;
        }
        for &(shard, stall_ms) in &faults.stalls {
            service.set_chaos(next, shard, ChaosOp::Stall(Duration::from_millis(stall_ms)));
            emit_runtime_injection(RuntimeFaultKind::StallInjection, next, stall_ms as f64);
            runtime_injections += 1;
        }
        let multiplier = faults.ingest_multiplier.max(1);
        if multiplier > 1 {
            emit_runtime_injection(RuntimeFaultKind::BurstOverload, next, multiplier as f64);
            runtime_injections += 1;
        }
        for stream in &fleet {
            let Some(measurements) = stream.epochs.get(round) else {
                continue;
            };
            for _ in 0..multiplier {
                ingest_attempts += 1;
                let admitted = service.ingest(SessionEpoch {
                    receiver: stream.receiver,
                    dt_s: cfg.epoch_interval_s,
                    measurements: measurements.clone(),
                });
                if matches!(admitted, IngestResult::Shed { .. }) {
                    shed += 1;
                }
            }
        }
        tally.absorb(&service.process_round(), &truths);
    }
    // Drain: epochs stranded behind a panicked shard still get served.
    for _ in 0..DRAIN_ROUNDS {
        let result = service.process_round();
        if result.expected_shards == 0 {
            break;
        }
        tally.absorb(&result, &truths);
    }

    service.sync_journal()?;
    let live_digests = service.session_digests();
    let worker_restarts = restarts_counter.value().saturating_sub(restarts_before);
    // Release the journal writer before truncating/replaying the file.
    drop(service);

    let journal = match &cfg.journal {
        Some(path) => {
            let cut = schedule
                .as_ref()
                .and_then(|s| s.journal_cut_bytes)
                .unwrap_or(0);
            if cut > 0 {
                let file = OpenOptions::new().write(true).open(path)?;
                let len = file.metadata()?.len();
                file.set_len(len.saturating_sub(cut))?;
                emit_runtime_injection(
                    RuntimeFaultKind::JournalTruncation,
                    cfg.rounds as u64,
                    cut as f64,
                );
                runtime_injections += 1;
            }
            let replay = replay_journal(path)?;
            Some(JournalVerdict {
                path: path.clone(),
                truncated_bytes: cut,
                records: replay.records,
                torn_tail: replay.truncated,
                mismatches: replay.mismatches,
                replay_verified: replay.verified(),
                digest_parity: replay.digests == live_digests,
            })
        }
        None => None,
    };

    tally.latencies.sort_unstable();
    let report = ServiceCampaignReport {
        sessions: cfg.sessions,
        rounds: cfg.rounds,
        ingest_attempts,
        shed,
        nominal: tally.nominal,
        degraded: tally.degraded,
        holdover: tally.holdover,
        deadline_errors: tally.deadline_errors,
        no_fix: tally.no_fix,
        missed_integrity: tally.missed_integrity,
        p50_latency_us: exact_percentile(&tally.latencies, 0.50),
        p99_latency_us: exact_percentile(&tally.latencies, 0.99),
        worker_restarts,
        round_failures: tally.round_failures,
        longest_outage_rounds: tally.longest_outage,
        runtime_injections,
        evicted: tally.evicted,
        fleet_digest: fleet_digest(&live_digests),
        journal,
    };
    if gps_telemetry::enabled(Level::Info) {
        Event::new(Level::Info, "sim.service", "service campaign complete")
            .with("sessions", report.sessions)
            .with("ingest_attempts", report.ingest_attempts)
            .with("availability_pct", report.availability_pct())
            .with("shed", report.shed)
            .with("p99_latency_us", report.p99_latency_us)
            .with("worker_restarts", report.worker_restarts)
            .with("missed_integrity", report.missed_integrity)
            .emit();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gps-sim-service-{}-{name}", std::process::id()))
    }

    #[test]
    fn clean_fleet_is_fully_available() {
        let cfg = ServiceCampaignConfig::quick(11);
        let report = run_service_campaign(&cfg).expect("campaign");
        assert_eq!(report.ingest_attempts, cfg.sessions * cfg.rounds);
        assert_eq!(report.shed, 0, "{report}");
        assert_eq!(report.missed_integrity, 0, "{report}");
        assert!(report.availability_pct() > 99.0, "{report}");
        assert!(report.meets_slo(99.0), "{report}");
        assert!(report.p99_latency_us >= report.p50_latency_us);
    }

    #[test]
    fn chaos_campaign_stays_available_and_honest() {
        let path = temp_path("chaos.jrnl");
        let mut cfg = ServiceCampaignConfig::chaos(7);
        cfg.sessions = 8;
        cfg.rounds = 30;
        cfg.journal = Some(path.clone());
        let report = run_service_campaign(&cfg).expect("campaign");
        let _ = std::fs::remove_file(&path);
        // Chaos injects real damage...
        assert!(report.runtime_injections > 0, "{report}");
        assert!(report.worker_restarts > 0, "{report}");
        // ...and the service absorbs it within the SLO.
        assert!(report.availability_pct() >= 95.0, "{report}");
        assert_eq!(report.missed_integrity, 0, "{report}");
        let journal = report.journal.as_ref().expect("journal verdict");
        assert!(journal.truncated_bytes > 0);
        assert!(journal.replay_verified, "{report}");
        assert_eq!(journal.mismatches, 0, "{report}");
        assert!(report.meets_slo(95.0), "{report}");
    }

    #[test]
    fn intact_journal_has_digest_parity() {
        let path = temp_path("parity.jrnl");
        let mut cfg = ServiceCampaignConfig::quick(23);
        cfg.sessions = 6;
        cfg.rounds = 10;
        cfg.journal = Some(path.clone());
        let report = run_service_campaign(&cfg).expect("campaign");
        let _ = std::fs::remove_file(&path);
        let journal = report.journal.as_ref().expect("journal verdict");
        assert_eq!(journal.truncated_bytes, 0);
        assert!(!journal.torn_tail);
        assert!(journal.digest_parity, "{report}");
        assert!(journal.replay_verified, "{report}");
        assert_eq!(journal.records, report.ingest_attempts);
    }

    #[test]
    fn burst_overload_sheds_but_never_lies() {
        let mut cfg = ServiceCampaignConfig::quick(31);
        cfg.sessions = 8;
        cfg.rounds = 16;
        cfg.service.queue_capacity = 4;
        cfg.runtime_faults = Some(RuntimeFaultPlan::new(5).with(
            gps_faults::RuntimeFault::BurstOverload {
                start_frac: 0.25,
                rounds: 6,
                multiplier: 8,
            },
        ));
        let report = run_service_campaign(&cfg).expect("campaign");
        assert!(report.shed > 0, "{report}");
        assert_eq!(report.missed_integrity, 0, "{report}");
        // Everything admitted was either served or shed — attempts
        // bound the sum.
        let served = report.nominal
            + report.degraded
            + report.holdover
            + report.deadline_errors
            + report.no_fix;
        assert!(served + report.shed <= report.ingest_attempts, "{report}");
    }

    #[test]
    fn report_renders_the_slo_vocabulary() {
        let report = run_service_campaign(&ServiceCampaignConfig::quick(3)).expect("campaign");
        let text = report.to_string();
        for needle in ["availability", "p99", "shed", "restarts", "fleet digest"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        let json = report.to_json();
        for needle in [
            "\"bench\": \"service\"",
            "availability_pct",
            "p99_latency_us",
            "missed_integrity",
            "fleet_digest",
        ] {
            assert!(json.contains(needle), "missing `{needle}` in:\n{json}");
        }
    }
}
