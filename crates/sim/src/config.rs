/// Configuration shared by the experiment reproductions.
///
/// The paper's runs use 24 h of 1 Hz data (86 400 epochs per dataset).
/// That is reproducible here (`ExperimentConfig::paper_scale`), but the
/// rates θ and η converge long before that; the default uses a 30 s
/// cadence over a full day (2 880 epochs) and
/// [`ExperimentConfig::quick`] shrinks further for tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// RNG seed for dataset generation.
    pub seed: u64,
    /// Epoch spacing, seconds.
    pub epoch_interval_s: f64,
    /// Number of epochs per dataset.
    pub epoch_count: usize,
    /// Elevation mask, degrees. The experiments need epochs with up to 10
    /// usable satellites, so the mask is slightly lower than the
    /// generator's 10° default.
    pub elevation_mask_deg: f64,
    /// Satellite-count sweep, inclusive (the paper's figures run 4..=10).
    pub min_satellites: usize,
    /// Upper end of the sweep, inclusive.
    pub max_satellites: usize,
    /// Epochs used to fit the clock drift `r` at startup (§5.2.2).
    pub calibration_epochs: usize,
    /// Re-anchor the predictor offset `D` from an NR-derived bias every
    /// this many seconds (the paper's §4.2 approach 1: "periodically
    /// acquire an accurate standard time"; approach 2 supplies the value
    /// from the NR method). `None` disables periodic re-anchoring, leaving
    /// only the initialization (and threshold resets).
    pub recalibration_interval_s: Option<f64>,
}

impl ExperimentConfig {
    /// Paper-scale configuration: 86 400 epochs at 1 Hz. Slow — use for
    /// the final full reproduction run.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        ExperimentConfig {
            epoch_interval_s: 1.0,
            epoch_count: 86_400,
            ..ExperimentConfig::new(seed)
        }
    }

    /// Default configuration: full-day coverage at 30 s cadence.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            epoch_interval_s: 30.0,
            epoch_count: 2_880,
            elevation_mask_deg: 5.0,
            min_satellites: 4,
            max_satellites: 10,
            calibration_epochs: 60,
            recalibration_interval_s: Some(900.0),
        }
    }

    /// A small configuration for tests and smoke runs: 2 h at 60 s
    /// cadence.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ExperimentConfig {
            epoch_interval_s: 60.0,
            epoch_count: 120,
            calibration_epochs: 20,
            ..ExperimentConfig::new(seed)
        }
    }

    /// The inclusive satellite-count sweep as an iterator.
    pub fn satellite_counts(&self) -> impl Iterator<Item = usize> {
        self.min_satellites..=self.max_satellites
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        let cfg = ExperimentConfig::new(1);
        let counts: Vec<usize> = cfg.satellite_counts().collect();
        assert_eq!(counts, vec![4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn paper_scale_is_full_rate() {
        let cfg = ExperimentConfig::paper_scale(1);
        assert_eq!(cfg.epoch_interval_s, 1.0);
        assert_eq!(cfg.epoch_count, 86_400);
    }

    #[test]
    fn quick_is_small() {
        let cfg = ExperimentConfig::quick(1);
        assert!(cfg.epoch_count <= 200);
        assert!(cfg.calibration_epochs < cfg.epoch_count);
    }
}
