use gps_geodesy::{Ecef, LocalFrame};
use gps_time::GpsTime;

use crate::{KeplerianElements, SatId};

/// One satellite visible from a station at some instant: its id, ECEF
/// position, and look angles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibleSatellite {
    /// Satellite identifier.
    pub id: SatId,
    /// ECEF position at the query time, metres.
    pub position: Ecef,
    /// Elevation above the station's horizon, radians.
    pub elevation: f64,
    /// Azimuth clockwise from north, radians.
    pub azimuth: f64,
    /// Geometric range from the station, metres.
    pub range: f64,
}

/// A set of satellites on Keplerian orbits — the GPS space segment of the
/// paper's §3.1.
///
/// # Example
///
/// ```
/// use gps_orbits::Constellation;
///
/// let gps = Constellation::gps_nominal();
/// assert_eq!(gps.len(), 31); // active vehicles, March 2008 (paper fn. 2)
/// ```
#[derive(Debug, Clone)]
pub struct Constellation {
    satellites: Vec<(SatId, KeplerianElements)>,
}

/// In-plane slot phases (degrees) for a 6-plane GPS-like layout totalling
/// 31 satellites: five planes carry 5 vehicles, one carries 6. Slots are
/// unevenly spaced, as in the real constellation, to improve coverage
/// robustness.
const PLANE_SLOTS: [&[f64]; 6] = [
    &[0.0, 65.0, 135.0, 200.0, 270.0, 330.0], // plane A: 6 vehicles
    &[15.0, 85.0, 155.0, 225.0, 295.0],
    &[40.0, 110.0, 180.0, 250.0, 320.0],
    &[10.0, 80.0, 150.0, 220.0, 290.0],
    &[55.0, 125.0, 195.0, 265.0, 335.0],
    &[30.0, 100.0, 170.0, 240.0, 310.0],
];

/// Parameters of one Walker-style shell for
/// [`Constellation::push_walker_shell`]: a PRN block starting at
/// `first_prn`, `planes × per_plane` vehicles, and the shell's orbit
/// geometry.
struct WalkerShell {
    first_prn: u8,
    planes: u8,
    per_plane: u8,
    semi_major_axis: f64,
    inclination_deg: f64,
    raan0_deg: f64,
}

impl Constellation {
    /// Builds the nominal 31-vehicle GPS constellation: 6 planes at 60°
    /// RAAN spacing, 55° inclination, near-circular 26 560 km orbits, with
    /// reference epoch [`GpsTime::EPOCH`].
    #[must_use]
    pub fn gps_nominal() -> Self {
        Self::gps_nominal_at(GpsTime::EPOCH)
    }

    /// Like [`Constellation::gps_nominal`] but with the orbital elements
    /// referenced to the given epoch.
    #[must_use]
    pub fn gps_nominal_at(epoch: GpsTime) -> Self {
        let mut satellites = Vec::with_capacity(31);
        let mut prn = 1u8;
        for (plane, slots) in PLANE_SLOTS.iter().enumerate() {
            for &slot_deg in *slots {
                satellites.push((
                    SatId::new(prn),
                    KeplerianElements::gps_circular(plane, slot_deg.to_radians(), epoch),
                ));
                prn += 1;
            }
        }
        Constellation { satellites }
    }

    /// Builds a GPS+Galileo+BeiDou-scale multi-GNSS constellation
    /// (~118 vehicles) for the large-`m` experiments of ROADMAP item 4:
    /// the 31-vehicle GPS layout plus a Galileo-like Walker shell
    /// (3 planes × 15 at 56°, 29 600 km) and a BeiDou-MEO-like shell
    /// (3 planes × 14 at 55°, 27 906 km).
    ///
    /// A mid-latitude station sees ≈ 36–44 of these above a 5° mask —
    /// the m ≈ 40 regime where O(m³) dense-covariance solvers fall off a
    /// cliff ("Satellite Positioning with Large Constellations",
    /// PAPERS.md). Inter-system clock offsets are deliberately not
    /// modelled: every shell shares the GPS timescale, so the epochs
    /// exercise dense-`m` *geometry* only, as ROADMAP item 4 scopes it.
    ///
    /// PRN blocks: GPS 1–31, Galileo-like 33–77, BeiDou-like 81–122
    /// (gaps left between blocks so ids read as system membership).
    #[must_use]
    pub fn multi_gnss_nominal_at(epoch: GpsTime) -> Self {
        let mut c = Self::gps_nominal_at(epoch);
        c.push_walker_shell(
            // Galileo-like shell: 56° inclination, 29 600 km semi-major axis.
            WalkerShell {
                first_prn: 33,
                planes: 3,
                per_plane: 15,
                semi_major_axis: 29_600_000.0,
                inclination_deg: 56.0,
                raan0_deg: 20.0,
            },
            epoch,
        );
        c.push_walker_shell(
            // BeiDou-MEO-like shell: 55° inclination, 27 906 km.
            WalkerShell {
                first_prn: 81,
                planes: 3,
                per_plane: 14,
                semi_major_axis: 27_906_100.0,
                inclination_deg: 55.0,
                raan0_deg: 50.0,
            },
            epoch,
        );
        c
    }

    /// [`Constellation::multi_gnss_nominal_at`] at [`GpsTime::EPOCH`].
    #[must_use]
    pub fn multi_gnss_nominal() -> Self {
        Self::multi_gnss_nominal_at(GpsTime::EPOCH)
    }

    /// Appends a Walker-style shell: `planes` equally-spaced orbital
    /// planes (RAAN step `360°/planes` from `raan0_deg`) of `per_plane`
    /// equally-phased near-circular satellites, with the conventional
    /// inter-plane phase stagger of one slot fraction.
    fn push_walker_shell(&mut self, shell: WalkerShell, epoch: GpsTime) {
        let slot_deg = 360.0 / f64::from(shell.per_plane);
        let mut prn = shell.first_prn;
        for plane in 0..shell.planes {
            let raan =
                (shell.raan0_deg + f64::from(plane) * 360.0 / f64::from(shell.planes)).to_radians();
            // Stagger planes by a third of a slot so no two shells'
            // satellites bunch at the same argument of latitude.
            let phase0 = f64::from(plane) * slot_deg / f64::from(shell.planes);
            for slot in 0..shell.per_plane {
                let phase = (phase0 + f64::from(slot) * slot_deg).to_radians();
                self.satellites.push((
                    SatId::new(prn),
                    KeplerianElements {
                        semi_major_axis: shell.semi_major_axis,
                        eccentricity: 0.003,
                        inclination: shell.inclination_deg.to_radians(),
                        raan,
                        argument_of_perigee: 0.0,
                        mean_anomaly: phase,
                        epoch,
                    },
                ));
                prn += 1;
            }
        }
    }

    /// Builds a constellation from explicit `(id, elements)` pairs.
    #[must_use]
    pub fn from_elements(satellites: Vec<(SatId, KeplerianElements)>) -> Self {
        Constellation { satellites }
    }

    /// Number of satellites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.satellites.len()
    }

    /// Returns `true` if the constellation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.satellites.is_empty()
    }

    /// Iterates over `(id, elements)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(SatId, KeplerianElements)> {
        self.satellites.iter()
    }

    /// Looks up a satellite's orbital elements by id.
    #[must_use]
    pub fn get(&self, id: SatId) -> Option<&KeplerianElements> {
        self.satellites
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, el)| el)
    }

    /// ECEF position of every satellite at time `t`.
    #[must_use]
    pub fn positions_at(&self, t: GpsTime) -> Vec<(SatId, Ecef)> {
        self.satellites
            .iter()
            .map(|(id, el)| (*id, el.position_at(t)))
            .collect()
    }

    /// Satellites visible from `station` at time `t` with elevation above
    /// `mask_rad`, sorted by **descending elevation**.
    ///
    /// The descending order makes "take the m best-placed satellites" (the
    /// satellite-count sweep of the paper's Figures 5.1/5.2) a simple
    /// prefix truncation.
    #[must_use]
    pub fn visible_from(&self, station: Ecef, t: GpsTime, mask_rad: f64) -> Vec<VisibleSatellite> {
        let frame = LocalFrame::new(station);
        let mut visible: Vec<VisibleSatellite> = self
            .satellites
            .iter()
            .filter_map(|(id, el)| {
                let pos = el.position_at(t);
                let elevation = frame.elevation(pos);
                if elevation >= mask_rad {
                    Some(VisibleSatellite {
                        id: *id,
                        position: pos,
                        elevation,
                        azimuth: frame.azimuth(pos),
                        range: station.distance_to(pos),
                    })
                } else {
                    None
                }
            })
            .collect();
        visible.sort_by(|a, b| b.elevation.total_cmp(&a.elevation));
        visible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_geodesy::Geodetic;
    use gps_time::Duration;

    fn station_mid_latitude() -> Ecef {
        Geodetic::from_deg(45.0, 7.0, 200.0).to_ecef()
    }

    #[test]
    fn nominal_has_31_unique_prns() {
        let c = Constellation::gps_nominal();
        assert_eq!(c.len(), 31);
        assert!(!c.is_empty());
        let mut prns: Vec<u8> = c.iter().map(|(id, _)| id.prn()).collect();
        prns.sort_unstable();
        prns.dedup();
        assert_eq!(prns.len(), 31);
        assert_eq!(prns[0], 1);
        assert_eq!(prns[30], 31);
    }

    #[test]
    fn get_by_id() {
        let c = Constellation::gps_nominal();
        assert!(c.get(SatId::new(7)).is_some());
        assert!(c.get(SatId::new(32)).is_none());
    }

    #[test]
    fn visibility_counts_realistic_over_a_day() {
        let c = Constellation::gps_nominal();
        let station = station_mid_latitude();
        let mask = 10.0f64.to_radians();
        let mut min_seen = usize::MAX;
        let mut max_seen = 0;
        for hour in 0..24 {
            let t = GpsTime::EPOCH + Duration::from_hours(hour as f64);
            let n = c.visible_from(station, t, mask).len();
            min_seen = min_seen.min(n);
            max_seen = max_seen.max(n);
        }
        // The paper's data items contain 8-12 satellites; a nominal
        // constellation should always show at least 6 and rarely above 14.
        assert!(min_seen >= 5, "min visible {min_seen}");
        assert!(max_seen <= 15, "max visible {max_seen}");
    }

    #[test]
    fn visible_sorted_by_descending_elevation() {
        let c = Constellation::gps_nominal();
        let vis = c.visible_from(station_mid_latitude(), GpsTime::EPOCH, 0.0);
        for pair in vis.windows(2) {
            assert!(pair[0].elevation >= pair[1].elevation);
        }
    }

    #[test]
    fn visible_ranges_physically_plausible() {
        let c = Constellation::gps_nominal();
        let vis = c.visible_from(station_mid_latitude(), GpsTime::EPOCH, 5.0f64.to_radians());
        for v in &vis {
            // Range between ~20 000 km (zenith) and ~26 000 km (horizon).
            assert!(v.range > 1.9e7 && v.range < 2.7e7, "range {}", v.range);
            assert!(v.elevation >= 5.0f64.to_radians());
            assert!((0.0..std::f64::consts::TAU).contains(&v.azimuth));
        }
    }

    #[test]
    fn higher_mask_reduces_visibility() {
        let c = Constellation::gps_nominal();
        let station = station_mid_latitude();
        let low = c.visible_from(station, GpsTime::EPOCH, 0.0).len();
        let high = c
            .visible_from(station, GpsTime::EPOCH, 30.0f64.to_radians())
            .len();
        assert!(high <= low);
    }

    #[test]
    fn polar_station_still_sees_satellites() {
        // 55° inclination leaves a polar hole overhead, but slant
        // visibility keeps several vehicles in view.
        let c = Constellation::gps_nominal();
        let pole = Geodetic::from_deg(89.0, 0.0, 0.0).to_ecef();
        let n = c
            .visible_from(pole, GpsTime::EPOCH, 10.0f64.to_radians())
            .len();
        assert!(n >= 4, "polar visibility {n}");
    }

    #[test]
    fn multi_gnss_has_unique_prns_and_three_shells() {
        let c = Constellation::multi_gnss_nominal();
        assert_eq!(c.len(), 31 + 45 + 42);
        let mut prns: Vec<u8> = c.iter().map(|(id, _)| id.prn()).collect();
        prns.sort_unstable();
        prns.dedup();
        assert_eq!(prns.len(), c.len(), "duplicate PRNs");
        // Three distinct orbital radii — one per system.
        let mut radii: Vec<i64> = c.iter().map(|(_, el)| el.semi_major_axis as i64).collect();
        radii.sort_unstable();
        radii.dedup();
        assert_eq!(radii.len(), 3);
    }

    #[test]
    fn multi_gnss_visibility_reaches_forty() {
        // The whole point of the multi-GNSS layout: a mid-latitude
        // station should routinely see ~40 satellites above a 5° mask
        // (the large-constellation regime of ROADMAP item 4), and never
        // dip anywhere near the GPS-only 8-12 band.
        let c = Constellation::multi_gnss_nominal();
        let station = station_mid_latitude();
        let mask = 5.0f64.to_radians();
        let mut min_seen = usize::MAX;
        let mut max_seen = 0;
        let mut epochs_at_40 = 0;
        for step in 0..96 {
            let t = GpsTime::EPOCH + Duration::from_minutes(15.0 * step as f64);
            let n = c.visible_from(station, t, mask).len();
            min_seen = min_seen.min(n);
            max_seen = max_seen.max(n);
            if n >= 40 {
                epochs_at_40 += 1;
            }
        }
        assert!(min_seen >= 30, "min visible {min_seen}");
        assert!(max_seen <= 52, "max visible {max_seen}");
        assert!(
            epochs_at_40 >= 24,
            "only {epochs_at_40}/96 epochs reach m = 40"
        );
    }

    #[test]
    fn from_elements_round_trip() {
        let el = KeplerianElements::gps_circular(0, 0.0, GpsTime::EPOCH);
        let c = Constellation::from_elements(vec![(SatId::new(9), el)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.positions_at(GpsTime::EPOCH).len(), 1);
        assert_eq!(c.positions_at(GpsTime::EPOCH)[0].0, SatId::new(9));
    }
}
