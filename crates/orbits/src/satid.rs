use std::fmt;

/// A GPS satellite identifier (PRN number, 1..=32 for the GPS
/// constellation).
///
/// # Example
///
/// ```
/// use gps_orbits::SatId;
///
/// let id = SatId::new(7);
/// assert_eq!(id.prn(), 7);
/// assert_eq!(id.to_string(), "G07");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SatId(u8);

impl SatId {
    /// Creates a satellite id from a PRN number.
    ///
    /// # Panics
    ///
    /// Panics if `prn` is 0 (PRNs are 1-based).
    #[must_use]
    pub fn new(prn: u8) -> Self {
        assert!(prn > 0, "PRN numbers are 1-based");
        SatId(prn)
    }

    /// The PRN number.
    #[must_use]
    pub fn prn(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for SatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{:02}", self.0)
    }
}

impl From<SatId> for u8 {
    fn from(id: SatId) -> u8 {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prn_round_trip() {
        let id = SatId::new(31);
        assert_eq!(id.prn(), 31);
        assert_eq!(u8::from(id), 31);
    }

    #[test]
    fn display_zero_pads() {
        assert_eq!(SatId::new(3).to_string(), "G03");
        assert_eq!(SatId::new(12).to_string(), "G12");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_prn_rejected() {
        let _ = SatId::new(0);
    }

    #[test]
    fn ordering_by_prn() {
        assert!(SatId::new(1) < SatId::new(2));
    }
}
