//! Kepler-equation solver: mean anomaly → eccentric anomaly.
//!
//! Kepler's equation `M = E − e·sin E` has no closed-form inverse; the
//! orbit propagator solves it by Newton iteration, which converges
//! quadratically for the near-circular orbits of GPS (e ≈ 0.01) and
//! remains robust for any elliptical eccentricity `0 ≤ e < 1`.

/// Convergence tolerance on the eccentric anomaly, radians.
const TOLERANCE: f64 = 1e-13;

/// Iteration cap; Newton on Kepler's equation converges in < 10 steps for
/// any `e < 0.99` with the starting guesses used below.
const MAX_ITERATIONS: usize = 30;

/// Solves Kepler's equation `M = E − e·sin E` for the eccentric anomaly
/// `E`, given mean anomaly `m` (radians) and eccentricity `e`.
///
/// # Panics
///
/// Panics if `e` is not in `[0, 1)` or `m` is not finite.
///
/// # Example
///
/// ```
/// use gps_orbits::kepler::solve_kepler;
///
/// // Circular orbit: E == M.
/// assert_eq!(solve_kepler(1.234, 0.0), 1.234);
/// // Residual of the defining equation is tiny.
/// let e = 0.0123;
/// let big_e = solve_kepler(2.5, e);
/// assert!((big_e - e * big_e.sin() - 2.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn solve_kepler(m: f64, e: f64) -> f64 {
    assert!((0.0..1.0).contains(&e), "eccentricity must be in [0, 1)");
    assert!(m.is_finite(), "mean anomaly must be finite");
    if e == 0.0 {
        return m;
    }
    // Reduce M to (-π, π] for a well-behaved starting guess, remembering
    // the offset so the returned E is continuous with the input M.
    let two_pi = std::f64::consts::TAU;
    let m_wrapped = m - two_pi * (m / two_pi).round();
    let offset = m - m_wrapped;

    // Starting guess: E₀ = M + e·sin M works well for small e; for larger e
    // near M = 0 use the cubic-root guess to avoid slow starts.
    let mut big_e = if e < 0.8 {
        m_wrapped + e * m_wrapped.sin()
    } else {
        std::f64::consts::PI.copysign(m_wrapped.max(f64::MIN_POSITIVE))
    };

    let mut converged = false;
    for _ in 0..MAX_ITERATIONS {
        let f = big_e - e * big_e.sin() - m_wrapped;
        let fp = 1.0 - e * big_e.cos();
        let delta = f / fp;
        big_e -= delta;
        if delta.abs() < TOLERANCE {
            converged = true;
            break;
        }
    }
    if !converged || (big_e - e * big_e.sin() - m_wrapped).abs() > 1e-10 {
        // Guaranteed fallback: f(E) = E − e·sin E − M is strictly
        // increasing and bracketed by [M − e, M + e], so bisect.
        let mut lo = m_wrapped - e;
        let mut hi = m_wrapped + e;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mid - e * mid.sin() - m_wrapped < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < TOLERANCE {
                break;
            }
        }
        big_e = 0.5 * (lo + hi);
    }
    big_e + offset
}

/// True anomaly `ν` from eccentric anomaly `E` and eccentricity `e`.
///
/// # Panics
///
/// Panics if `e` is not in `[0, 1)`.
#[must_use]
pub fn true_anomaly(big_e: f64, e: f64) -> f64 {
    assert!((0.0..1.0).contains(&e), "eccentricity must be in [0, 1)");
    let (s, c) = big_e.sin_cos();
    let sin_nu = (1.0 - e * e).sqrt() * s;
    let cos_nu = c - e;
    sin_nu.atan2(cos_nu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_orbit_identity() {
        for m in [-3.0, 0.0, 0.5, 2.0, 6.0] {
            assert_eq!(solve_kepler(m, 0.0), m);
        }
    }

    #[test]
    fn residual_small_across_parameter_space() {
        for &e in &[1e-6, 0.001, 0.0123, 0.1, 0.3, 0.7, 0.95] {
            for i in 0..48 {
                let m = -7.0 + 14.0 * (i as f64) / 47.0;
                let big_e = solve_kepler(m, e);
                let resid = big_e - e * big_e.sin() - m;
                assert!(resid.abs() < 1e-10, "e={e} m={m}: residual {resid}");
            }
        }
    }

    #[test]
    fn continuity_with_wrapping() {
        // E(M + 2π) = E(M) + 2π: wrapping must not introduce jumps.
        let e = 0.05;
        let m = 1.3;
        let a = solve_kepler(m, e);
        let b = solve_kepler(m + std::f64::consts::TAU, e);
        assert!((b - a - std::f64::consts::TAU).abs() < 1e-10);
    }

    #[test]
    fn symmetric_about_zero() {
        let e = 0.2;
        assert!((solve_kepler(-1.0, e) + solve_kepler(1.0, e)).abs() < 1e-12);
    }

    #[test]
    fn true_anomaly_limits() {
        // At perigee (E = 0) and apogee (E = π) true anomaly equals E.
        assert_eq!(true_anomaly(0.0, 0.3), 0.0);
        assert!((true_anomaly(std::f64::consts::PI, 0.3) - std::f64::consts::PI).abs() < 1e-12);
        // For a circular orbit, ν = E everywhere.
        for i in 0..8 {
            let big_e = -3.0 + i as f64;
            let nu = true_anomaly(big_e, 0.0);
            let wrapped = (big_e - nu + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU);
            assert!((wrapped - std::f64::consts::PI).abs() < 1e-12);
        }
    }

    #[test]
    fn true_anomaly_leads_eccentric_ahead_of_perigee() {
        // For 0 < E < π the true anomaly is ahead of E (body moves faster
        // near perigee).
        let e = 0.4;
        for big_e in [0.3, 1.0, 2.0] {
            assert!(true_anomaly(big_e, e) > big_e);
        }
    }

    #[test]
    #[should_panic(expected = "eccentricity")]
    fn rejects_hyperbolic() {
        let _ = solve_kepler(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_mean_anomaly() {
        let _ = solve_kepler(f64::NAN, 0.1);
    }
}
