use gps_geodesy::wgs84::{EARTH_GRAVITATIONAL_PARAMETER, EARTH_ROTATION_RATE};
use gps_geodesy::Ecef;
use gps_time::{Duration, GpsTime};

use crate::kepler;

/// Classical Keplerian orbital elements of one satellite, with an epoch.
///
/// Propagation follows the standard two-body model plus the rotation into
/// the Earth-fixed frame: the Right Ascension of the Ascending Node is
/// measured against a frame that rotates with the Earth at the IS-GPS-200
/// rate, exactly as GPS almanacs define it. Perturbations (J₂, lunisolar)
/// are deliberately omitted — the positioning algorithms consume satellite
/// coordinates as given (paper eq. 3-1), so unmodeled perturbations would
/// only relabel the simulated truth without changing any compared quantity.
///
/// # Example
///
/// ```
/// use gps_orbits::KeplerianElements;
/// use gps_time::GpsTime;
///
/// let orbit = KeplerianElements::gps_circular(0, 0.0, GpsTime::EPOCH);
/// let pos = orbit.position_at(GpsTime::EPOCH);
/// // GPS orbital radius ≈ 26 560 km (±a·e for a slightly eccentric orbit).
/// assert!((pos.norm() - 2.656e7).abs() < 3.5e5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeplerianElements {
    /// Semi-major axis, metres.
    pub semi_major_axis: f64,
    /// Eccentricity, dimensionless, `0 ≤ e < 1`.
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination: f64,
    /// Right ascension of the ascending node at `epoch`, radians, measured
    /// in the ECEF frame (i.e. against the Greenwich meridian at `epoch`).
    pub raan: f64,
    /// Argument of perigee, radians.
    pub argument_of_perigee: f64,
    /// Mean anomaly at `epoch`, radians.
    pub mean_anomaly: f64,
    /// Reference epoch for `raan` and `mean_anomaly`.
    pub epoch: GpsTime,
}

/// Nominal GPS semi-major axis (m): 12-sidereal-hour orbits.
pub const GPS_SEMI_MAJOR_AXIS: f64 = 26_559_710.0;

/// Nominal GPS inclination (rad): 55°.
pub const GPS_INCLINATION: f64 = 55.0 * std::f64::consts::PI / 180.0;

/// Typical GPS eccentricity: orbits are nearly circular.
pub const GPS_ECCENTRICITY: f64 = 0.01;

impl KeplerianElements {
    /// A nominal near-circular GPS orbit in plane `plane` (0..6, setting
    /// RAAN at 60° spacing) with in-plane phase `phase_rad`.
    #[must_use]
    pub fn gps_circular(plane: usize, phase_rad: f64, epoch: GpsTime) -> Self {
        KeplerianElements {
            semi_major_axis: GPS_SEMI_MAJOR_AXIS,
            eccentricity: GPS_ECCENTRICITY,
            inclination: GPS_INCLINATION,
            raan: (plane as f64) * 60.0f64.to_radians(),
            argument_of_perigee: 0.0,
            mean_anomaly: phase_rad,
            epoch,
        }
    }

    /// Mean motion `n = sqrt(μ/a³)`, rad/s.
    #[must_use]
    pub fn mean_motion(&self) -> f64 {
        (EARTH_GRAVITATIONAL_PARAMETER / self.semi_major_axis.powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    #[must_use]
    pub fn period(&self) -> Duration {
        Duration::from_seconds(std::f64::consts::TAU / self.mean_motion())
    }

    /// Satellite ECEF position at time `t`.
    #[must_use]
    pub fn position_at(&self, t: GpsTime) -> Ecef {
        self.position_velocity_at(t).0
    }

    /// Satellite ECEF position and velocity at time `t`.
    ///
    /// The velocity is the ECEF-frame velocity (it includes the frame
    /// rotation term), useful for range-rate/Doppler simulation.
    #[must_use]
    pub fn position_velocity_at(&self, t: GpsTime) -> (Ecef, Ecef) {
        let dt = (t - self.epoch).as_seconds();
        let n = self.mean_motion();
        let e = self.eccentricity;

        // Anomalies.
        let m = self.mean_anomaly + n * dt;
        let big_e = kepler::solve_kepler(m, e);
        let nu = kepler::true_anomaly(big_e, e);

        // Orbital-plane polar coordinates.
        let r = self.semi_major_axis * (1.0 - e * big_e.cos());
        let arg_lat = self.argument_of_perigee + nu; // argument of latitude

        // RAAN in the Earth-fixed frame drifts backwards at the Earth
        // rotation rate.
        let omega = self.raan - EARTH_ROTATION_RATE * dt;

        let (s_al, c_al) = arg_lat.sin_cos();
        let (s_om, c_om) = omega.sin_cos();
        let (s_i, c_i) = self.inclination.sin_cos();

        // In-plane position components.
        let x_p = r * c_al;
        let y_p = r * s_al;

        let pos = Ecef::new(
            x_p * c_om - y_p * c_i * s_om,
            x_p * s_om + y_p * c_i * c_om,
            y_p * s_i,
        );

        // Velocity: differentiate r and arg_lat.
        let e_dot = n / (1.0 - e * big_e.cos());
        let r_dot = self.semi_major_axis * e * big_e.sin() * e_dot;
        let nu_dot = e_dot * (1.0 - e * e).sqrt() / (1.0 - e * big_e.cos());
        let x_p_dot = r_dot * c_al - r * s_al * nu_dot;
        let y_p_dot = r_dot * s_al + r * c_al * nu_dot;
        let om_dot = -EARTH_ROTATION_RATE;

        let vel = Ecef::new(
            x_p_dot * c_om - y_p_dot * c_i * s_om - om_dot * (x_p * s_om + y_p * c_i * c_om),
            x_p_dot * s_om + y_p_dot * c_i * c_om + om_dot * (x_p * c_om - y_p * c_i * s_om),
            y_p_dot * s_i,
        );

        (pos, vel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> KeplerianElements {
        KeplerianElements::gps_circular(2, 1.0, GpsTime::EPOCH)
    }

    #[test]
    fn gps_period_is_half_sidereal_day() {
        let p = nominal().period().as_seconds();
        // Half a sidereal day ≈ 43 082 s.
        assert!((p - 43_082.0).abs() < 60.0, "period {p}");
    }

    #[test]
    fn radius_stays_near_semi_major_axis() {
        let orbit = nominal();
        for k in 0..24 {
            let t = GpsTime::EPOCH + Duration::from_hours(k as f64);
            let r = orbit.position_at(t).norm();
            let bound = orbit.semi_major_axis * orbit.eccentricity * 1.01;
            assert!(
                (r - orbit.semi_major_axis).abs() <= bound,
                "r {r} at hour {k}"
            );
        }
    }

    #[test]
    fn z_extent_matches_inclination() {
        // |z| never exceeds a(1+e)·sin i, and gets close to a·sin i.
        let orbit = nominal();
        let mut max_z: f64 = 0.0;
        for k in 0..720 {
            let t = GpsTime::EPOCH + Duration::from_minutes(k as f64);
            max_z = max_z.max(orbit.position_at(t).z.abs());
        }
        let limit = orbit.semi_major_axis * (1.0 + orbit.eccentricity) * GPS_INCLINATION.sin();
        assert!(max_z <= limit * 1.0001, "max_z {max_z}");
        assert!(
            max_z > orbit.semi_major_axis * GPS_INCLINATION.sin() * 0.97,
            "max_z {max_z}"
        );
    }

    #[test]
    fn equatorial_orbit_stays_in_plane() {
        let mut orbit = nominal();
        orbit.inclination = 0.0;
        for k in 0..12 {
            let t = GpsTime::EPOCH + Duration::from_hours(k as f64);
            assert!(orbit.position_at(t).z.abs() < 1e-6);
        }
    }

    #[test]
    fn velocity_matches_finite_difference() {
        let orbit = nominal();
        let t = GpsTime::EPOCH + Duration::from_hours(3.0);
        let h = 0.05;
        let (pos, vel) = orbit.position_velocity_at(t);
        let ahead = orbit.position_at(t + Duration::from_seconds(h));
        let behind = orbit.position_at(t - Duration::from_seconds(h));
        let fd = (ahead - behind) / (2.0 * h);
        assert!((fd - vel).norm() < 1e-2, "fd err {}", (fd - vel).norm());
        let _ = pos;
    }

    #[test]
    fn speed_is_orbital() {
        // GPS inertial orbital speed ≈ 3.87 km/s; ECEF speed differs by the
        // frame rotation (≤ ω·r ≈ 1.94 km/s) but stays in the same ballpark.
        let (_, vel) = nominal().position_velocity_at(GpsTime::EPOCH);
        let v = vel.norm();
        assert!(v > 2_000.0 && v < 6_000.0, "speed {v}");
    }

    #[test]
    fn planes_are_rotated_copies() {
        // Two satellites in different planes with the same phase have the
        // same geocentric radius at the same time.
        let a = KeplerianElements::gps_circular(0, 0.5, GpsTime::EPOCH);
        let b = KeplerianElements::gps_circular(3, 0.5, GpsTime::EPOCH);
        let t = GpsTime::EPOCH + Duration::from_hours(5.0);
        assert!((a.position_at(t).norm() - b.position_at(t).norm()).abs() < 1e-6);
        assert!(a.position_at(t).distance_to(b.position_at(t)) > 1e6);
    }

    #[test]
    fn period_repeats_in_rotating_frame_after_sidereal_day() {
        // After exactly two orbital periods (one sidereal day), the ground
        // track repeats: ECEF position returns to (almost) the same place.
        let orbit = nominal();
        let p = orbit.period();
        let t0 = GpsTime::EPOCH + Duration::from_hours(1.0);
        let t1 = t0 + p * 2.0;
        let d = orbit.position_at(t0).distance_to(orbit.position_at(t1));
        // Not exact because mean motion and Earth rate aren't commensurate
        // to machine precision, but within a few km.
        assert!(d < 20_000.0, "repeat distance {d}");
    }
}
