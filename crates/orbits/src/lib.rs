//! GPS satellite constellation simulation.
//!
//! The paper evaluates its algorithms on observation files from real CORS
//! stations; each one-second data item carries "all available satellites'
//! coordinates and pseudo-ranges". To regenerate equivalent inputs without
//! the proprietary downloads, this crate simulates the **space segment**
//! the paper describes in §3.1: a constellation of satellites "orbiting in
//! 6 circular orbital planes around the earth" (31 active vehicles as of
//! March 2008, the paper's own footnote 2).
//!
//! The pieces:
//!
//! * [`kepler`] — the Kepler-equation solver (mean → eccentric anomaly);
//! * [`KeplerianElements`] — one satellite's orbit, propagated to an ECEF
//!   position at any [`GpsTime`](gps_time::GpsTime) (rotation into the Earth-fixed frame uses
//!   the IS-GPS-200 Earth-rotation rate);
//! * [`Constellation`] — the full 31-vehicle GPS almanac-style layout with
//!   per-plane RAAN spacing and in-plane phasing, plus visibility queries
//!   (`visible_from`) that feed the dataset generator.
//!
//! # Example
//!
//! ```
//! use gps_orbits::Constellation;
//! use gps_geodesy::Geodetic;
//! use gps_time::GpsTime;
//!
//! let gps = Constellation::gps_nominal();
//! let station = Geodetic::from_deg(45.0, 7.0, 200.0).to_ecef();
//! let visible = gps.visible_from(station, GpsTime::EPOCH, 10f64.to_radians());
//! // A ground station always sees roughly 6-12 satellites.
//! assert!(visible.len() >= 6 && visible.len() <= 14);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod constellation;
mod elements;
pub mod kepler;
mod satid;
pub mod yuma;

pub use constellation::{Constellation, VisibleSatellite};
pub use elements::KeplerianElements;
pub use satid::SatId;
