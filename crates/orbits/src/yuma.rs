//! YUMA almanac text format: the standard human-readable GPS almanac
//! exchange format, as published weekly by the US Coast Guard.
//!
//! Writing lets a constellation built here be inspected with standard GPS
//! tooling; parsing lets real published almanacs (when available) replace
//! the nominal constellation without code changes. Only the orbital
//! fields this crate models are interpreted; clock fields are carried
//! through verbatim.
//!
//! # Example
//!
//! ```
//! use gps_orbits::{yuma, Constellation};
//!
//! let gps = Constellation::gps_nominal();
//! let text = yuma::write(&gps);
//! let back = yuma::parse(&text).unwrap();
//! assert_eq!(back.len(), gps.len());
//! ```

use std::error::Error;
use std::fmt;

use gps_time::GpsTime;

use crate::{Constellation, KeplerianElements, SatId};

/// Error produced when parsing a YUMA document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum YumaError {
    /// A record was missing a required field.
    MissingField {
        /// The field label.
        field: &'static str,
        /// Index of the record (0-based).
        record: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// The field label.
        field: &'static str,
        /// The offending text.
        text: String,
    },
    /// A PRN was outside 1..=63.
    BadPrn {
        /// The offending value.
        prn: i64,
    },
    /// The document contained no records.
    Empty,
}

impl fmt::Display for YumaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YumaError::MissingField { field, record } => {
                write!(f, "record {record} is missing field `{field}`")
            }
            YumaError::BadNumber { field, text } => {
                write!(f, "field `{field}`: `{text}` is not a number")
            }
            YumaError::BadPrn { prn } => write!(f, "PRN {prn} outside 1..=63"),
            YumaError::Empty => write!(f, "no almanac records found"),
        }
    }
}

impl Error for YumaError {}

/// Serializes a constellation as a YUMA almanac document.
///
/// Week numbers are written modulo 1024 (the YUMA convention). RAAN is
/// written as the "Right Ascen at Week" field; the omitted clock fields
/// are zeroed.
#[must_use]
pub fn write(constellation: &Constellation) -> String {
    let mut out = String::new();
    for (id, el) in constellation.iter() {
        let week = el.epoch.week().rem_euclid(1024);
        out.push_str(&format!(
            "******** Week {week} almanac for PRN-{:02} ********\n",
            id.prn()
        ));
        out.push_str(&format!("ID:                         {:02}\n", id.prn()));
        out.push_str("Health:                     000\n");
        out.push_str(&format!(
            "Eccentricity:               {:.10E}\n",
            el.eccentricity
        ));
        out.push_str(&format!(
            "Time of Applicability(s):  {:.4}\n",
            el.epoch.seconds_of_week()
        ));
        out.push_str(&format!(
            "Orbital Inclination(rad):   {:.10}\n",
            el.inclination
        ));
        out.push_str("Rate of Right Ascen(r/s):   0.0000000000E+00\n");
        out.push_str(&format!(
            "SQRT(A)  (m 1/2):           {:.6}\n",
            el.semi_major_axis.sqrt()
        ));
        out.push_str(&format!("Right Ascen at Week(rad):   {:.10E}\n", el.raan));
        out.push_str(&format!(
            "Argument of Perigee(rad):   {:.9}\n",
            el.argument_of_perigee
        ));
        out.push_str(&format!(
            "Mean Anom(rad):             {:.10E}\n",
            el.mean_anomaly
        ));
        out.push_str("Af0(s):                     0.0000000000E+00\n");
        out.push_str("Af1(s/s):                   0.0000000000E+00\n");
        out.push_str(&format!("week:                       {week}\n"));
        out.push('\n');
    }
    out
}

/// One partially parsed record.
#[derive(Default)]
struct RawRecord {
    id: Option<i64>,
    eccentricity: Option<f64>,
    toa: Option<f64>,
    inclination: Option<f64>,
    sqrt_a: Option<f64>,
    raan: Option<f64>,
    arg_perigee: Option<f64>,
    mean_anomaly: Option<f64>,
    week: Option<i64>,
}

impl RawRecord {
    fn is_empty(&self) -> bool {
        self.id.is_none()
            && self.eccentricity.is_none()
            && self.toa.is_none()
            && self.week.is_none()
    }

    fn finish(self, record: usize) -> Result<(SatId, KeplerianElements), YumaError> {
        let need = |field: &'static str, v: Option<f64>| {
            v.ok_or(YumaError::MissingField { field, record })
        };
        let prn = self.id.ok_or(YumaError::MissingField {
            field: "ID",
            record,
        })?;
        if !(1..=63).contains(&prn) {
            return Err(YumaError::BadPrn { prn });
        }
        let sqrt_a = need("SQRT(A)", self.sqrt_a)?;
        let week = self.week.ok_or(YumaError::MissingField {
            field: "week",
            record,
        })?;
        let toa = need("Time of Applicability", self.toa)?;
        Ok((
            SatId::new(prn as u8),
            KeplerianElements {
                semi_major_axis: sqrt_a * sqrt_a,
                eccentricity: need("Eccentricity", self.eccentricity)?,
                inclination: need("Orbital Inclination", self.inclination)?,
                raan: need("Right Ascen at Week", self.raan)?,
                argument_of_perigee: need("Argument of Perigee", self.arg_perigee)?,
                mean_anomaly: need("Mean Anom", self.mean_anomaly)?,
                epoch: GpsTime::new(week as i32, toa),
            },
        ))
    }
}

fn parse_value(field: &'static str, text: &str) -> Result<f64, YumaError> {
    text.trim()
        .parse::<f64>()
        .map_err(|_| YumaError::BadNumber {
            field,
            text: text.trim().to_owned(),
        })
}

/// Parses a YUMA almanac document, resolving the 10-bit week numbers
/// against a full reference week (the standard rollover disambiguation:
/// each record's week is lifted into the 1024-week window centred on
/// `reference_week`).
///
/// # Errors
///
/// Returns [`YumaError`] for missing/malformed fields, bad PRNs, or an
/// empty document.
pub fn parse_with_reference(text: &str, reference_week: i32) -> Result<Constellation, YumaError> {
    let constellation = parse(text)?;
    let resolved = constellation
        .iter()
        .map(|(id, el)| {
            let mut el = *el;
            let short = el.epoch.week().rem_euclid(1024);
            let base = reference_week - 512;
            let week = base + (short - base).rem_euclid(1024);
            el.epoch = GpsTime::new(week, el.epoch.seconds_of_week());
            (*id, el)
        })
        .collect();
    Ok(Constellation::from_elements(resolved))
}

/// Parses a YUMA almanac document into a [`Constellation`].
///
/// Week numbers are taken as written (mod 1024, per the format). Use
/// [`parse_with_reference`] to resolve the week rollover against a known
/// full week number.
///
/// # Errors
///
/// Returns [`YumaError`] for missing/malformed fields, bad PRNs, or an
/// empty document.
pub fn parse(text: &str) -> Result<Constellation, YumaError> {
    let mut satellites = Vec::new();
    let mut current = RawRecord::default();
    let mut record = 0usize;

    let flush = |current: &mut RawRecord,
                 satellites: &mut Vec<(SatId, KeplerianElements)>,
                 record: &mut usize|
     -> Result<(), YumaError> {
        if !current.is_empty() {
            let finished = std::mem::take(current).finish(*record)?;
            satellites.push(finished);
            *record += 1;
        }
        Ok(())
    };

    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("****") {
            flush(&mut current, &mut satellites, &mut record)?;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim();
        if key.starts_with("ID") {
            current.id = Some(parse_value("ID", value)? as i64);
        } else if key.starts_with("Eccentricity") {
            current.eccentricity = Some(parse_value("Eccentricity", value)?);
        } else if key.starts_with("Time of Applicability") {
            current.toa = Some(parse_value("Time of Applicability", value)?);
        } else if key.starts_with("Orbital Inclination") {
            current.inclination = Some(parse_value("Orbital Inclination", value)?);
        } else if key.starts_with("SQRT(A)") {
            current.sqrt_a = Some(parse_value("SQRT(A)", value)?);
        } else if key.starts_with("Right Ascen at Week") {
            current.raan = Some(parse_value("Right Ascen at Week", value)?);
        } else if key.starts_with("Argument of Perigee") {
            current.arg_perigee = Some(parse_value("Argument of Perigee", value)?);
        } else if key.starts_with("Mean Anom") {
            current.mean_anomaly = Some(parse_value("Mean Anom", value)?);
        } else if key.starts_with("week") {
            current.week = Some(parse_value("week", value)? as i64);
        }
        // Health / Af0 / Af1 / Rate of Right Ascen are accepted and
        // ignored: this crate does not model them.
    }
    flush(&mut current, &mut satellites, &mut record)?;

    if satellites.is_empty() {
        return Err(YumaError::Empty);
    }
    Ok(Constellation::from_elements(satellites))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_time::Duration;

    #[test]
    fn round_trip_preserves_orbits() {
        let gps = Constellation::gps_nominal_at(GpsTime::new(1544, 259_200.0));
        let text = write(&gps);
        let back = parse_with_reference(&text, 1544).expect("round trip");
        assert_eq!(back.len(), gps.len());
        // Propagated positions agree to numerical precision of the
        // printed fields.
        let t = GpsTime::new(1544, 260_000.0) + Duration::from_hours(3.0);
        for ((id_a, el_a), (id_b, el_b)) in gps.iter().zip(back.iter()) {
            assert_eq!(id_a, id_b);
            let d = el_a.position_at(t).distance_to(el_b.position_at(t));
            assert!(d < 1.0, "{id_a}: positions differ by {d} m");
        }
    }

    #[test]
    fn week_written_modulo_1024() {
        let gps = Constellation::gps_nominal_at(GpsTime::new(1544, 0.0));
        let text = write(&gps);
        assert!(text.contains("Week 520"), "1544 mod 1024 = 520");
    }

    #[test]
    fn parse_rejects_empty_and_garbage() {
        assert_eq!(parse("").unwrap_err(), YumaError::Empty);
        assert_eq!(parse("hello\nworld\n").unwrap_err(), YumaError::Empty);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let text = "ID: 05\nweek: 100\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            YumaError::MissingField { .. }
        ));
    }

    #[test]
    fn parse_rejects_bad_prn_and_numbers() {
        let gps = Constellation::gps_nominal();
        let text = write(&gps).replacen("ID:                         01", "ID: 99", 1);
        assert_eq!(parse(&text).unwrap_err(), YumaError::BadPrn { prn: 99 });

        let text2 = write(&gps).replacen("Eccentricity:               1", "Eccentricity: X", 1);
        assert!(matches!(
            parse(&text2).unwrap_err(),
            YumaError::BadNumber { .. }
        ));
    }

    #[test]
    fn error_display() {
        assert!(YumaError::Empty.to_string().contains("no almanac"));
        assert!(YumaError::BadPrn { prn: 0 }.to_string().contains('0'));
        assert!(YumaError::MissingField {
            field: "week",
            record: 3
        }
        .to_string()
        .contains("week"));
    }
}
