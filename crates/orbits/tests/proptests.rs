//! Randomized property tests for orbital propagation.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops for the offline
//! build; inputs come from deterministic xoshiro256++ streams.

use gps_orbits::{kepler, Constellation, KeplerianElements, SatId};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use gps_time::{Duration, GpsTime};

const CASES: usize = 256;

fn random_elements(rng: &mut StdRng) -> KeplerianElements {
    KeplerianElements {
        semi_major_axis: rng.gen_range(2.0e7..4.0e7),
        eccentricity: rng.gen_range(0.0..0.1),
        inclination: rng.gen_range(0.0..1.2),
        raan: rng.gen_range(0.0..std::f64::consts::TAU),
        argument_of_perigee: rng.gen_range(0.0..std::f64::consts::TAU),
        mean_anomaly: rng.gen_range(0.0..std::f64::consts::TAU),
        epoch: GpsTime::EPOCH,
    }
}

#[test]
fn kepler_residual_is_zero() {
    let mut rng = StdRng::seed_from_u64(0x0F_01);
    for _ in 0..CASES {
        let m = rng.gen_range(-20.0..20.0);
        let e = rng.gen_range(0.0..0.95);
        let big_e = kepler::solve_kepler(m, e);
        let resid = big_e - e * big_e.sin() - m;
        assert!(resid.abs() < 1e-9, "residual {resid}");
    }
}

#[test]
fn radius_bounded_by_apsides() {
    let mut rng = StdRng::seed_from_u64(0x0F_02);
    for _ in 0..CASES {
        let el = random_elements(&mut rng);
        let hours = rng.gen_range(0.0..48.0);
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let r = el.position_at(t).norm();
        let perigee = el.semi_major_axis * (1.0 - el.eccentricity);
        let apogee = el.semi_major_axis * (1.0 + el.eccentricity);
        assert!(
            r >= perigee * 0.999_999 && r <= apogee * 1.000_001,
            "r {r} outside [{perigee}, {apogee}]"
        );
    }
}

#[test]
fn z_bounded_by_inclination() {
    let mut rng = StdRng::seed_from_u64(0x0F_03);
    for _ in 0..CASES {
        let el = random_elements(&mut rng);
        let hours = rng.gen_range(0.0..48.0);
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let pos = el.position_at(t);
        let bound = el.semi_major_axis * (1.0 + el.eccentricity) * el.inclination.sin();
        assert!(
            pos.z.abs() <= bound * 1.000_001 + 1.0,
            "z {} bound {bound}",
            pos.z
        );
    }
}

#[test]
fn velocity_consistent_with_finite_difference() {
    let mut rng = StdRng::seed_from_u64(0x0F_04);
    for _ in 0..CASES {
        let el = random_elements(&mut rng);
        let hours = rng.gen_range(0.1..24.0);
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let (_, vel) = el.position_velocity_at(t);
        let h = 0.05;
        let fd = (el.position_at(t + Duration::from_seconds(h))
            - el.position_at(t - Duration::from_seconds(h)))
            / (2.0 * h);
        // Acceleration is ~0.6 m/s², so the central difference is good to
        // ~a·h²/6 ≈ mm/s; allow cm/s.
        assert!((fd - vel).norm() < 0.5, "err {}", (fd - vel).norm());
    }
}

#[test]
fn yuma_round_trip_any_constellation() {
    let mut rng = StdRng::seed_from_u64(0x0F_05);
    for _ in 0..CASES {
        let seed_phase = rng.gen_range(0.0..6.0);
        let week = rng.gen_range(0i32..3000);
        let epoch = GpsTime::new(week, 120_000.0);
        let c = Constellation::from_elements(vec![
            (
                SatId::new(1),
                KeplerianElements::gps_circular(0, seed_phase, epoch),
            ),
            (
                SatId::new(2),
                KeplerianElements::gps_circular(3, seed_phase + 1.0, epoch),
            ),
        ]);
        let text = gps_orbits::yuma::write(&c);
        let back = gps_orbits::yuma::parse_with_reference(&text, week).unwrap();
        let t = epoch + Duration::from_hours(2.0);
        for ((_, a), (_, b)) in c.iter().zip(back.iter()) {
            assert!(a.position_at(t).distance_to(b.position_at(t)) < 1.0);
        }
    }
}

#[test]
fn visibility_range_bounds() {
    let mut rng = StdRng::seed_from_u64(0x0F_06);
    let c = Constellation::gps_nominal();
    for _ in 0..CASES {
        let lat = rng.gen_range(-80.0..80.0);
        let lon = rng.gen_range(-179.0..179.0);
        let hours = rng.gen_range(0.0..24.0);
        let station = gps_geodesy::Geodetic::from_deg(lat, lon, 0.0).to_ecef();
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let visible = c.visible_from(station, t, 5.0f64.to_radians());
        assert!(visible.len() >= 4, "only {} visible", visible.len());
        for v in &visible {
            assert!(v.range > 1.8e7 && v.range < 2.8e7, "range {}", v.range);
        }
    }
}
