//! Property-based tests for orbital propagation.

use gps_orbits::{kepler, Constellation, KeplerianElements, SatId};
use gps_time::{Duration, GpsTime};
use proptest::prelude::*;

fn elements_strategy() -> impl Strategy<Value = KeplerianElements> {
    (
        2.0e7f64..4.0e7,              // semi-major axis
        0.0f64..0.1,                  // eccentricity
        0.0f64..1.2,                  // inclination
        0.0f64..std::f64::consts::TAU, // raan
        0.0f64..std::f64::consts::TAU, // arg perigee
        0.0f64..std::f64::consts::TAU, // mean anomaly
    )
        .prop_map(|(a, e, i, raan, argp, m)| KeplerianElements {
            semi_major_axis: a,
            eccentricity: e,
            inclination: i,
            raan,
            argument_of_perigee: argp,
            mean_anomaly: m,
            epoch: GpsTime::EPOCH,
        })
}

proptest! {
    #[test]
    fn kepler_residual_is_zero(m in -20.0f64..20.0, e in 0.0f64..0.95) {
        let big_e = kepler::solve_kepler(m, e);
        let resid = big_e - e * big_e.sin() - m;
        prop_assert!(resid.abs() < 1e-9, "residual {resid}");
    }

    #[test]
    fn radius_bounded_by_apsides(el in elements_strategy(), hours in 0.0f64..48.0) {
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let r = el.position_at(t).norm();
        let perigee = el.semi_major_axis * (1.0 - el.eccentricity);
        let apogee = el.semi_major_axis * (1.0 + el.eccentricity);
        prop_assert!(r >= perigee * 0.999_999 && r <= apogee * 1.000_001,
            "r {r} outside [{perigee}, {apogee}]");
    }

    #[test]
    fn z_bounded_by_inclination(el in elements_strategy(), hours in 0.0f64..48.0) {
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let pos = el.position_at(t);
        let bound = el.semi_major_axis * (1.0 + el.eccentricity) * el.inclination.sin();
        prop_assert!(pos.z.abs() <= bound * 1.000_001 + 1.0, "z {} bound {bound}", pos.z);
    }

    #[test]
    fn velocity_consistent_with_finite_difference(el in elements_strategy(), hours in 0.1f64..24.0) {
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let (_, vel) = el.position_velocity_at(t);
        let h = 0.05;
        let fd = (el.position_at(t + Duration::from_seconds(h))
            - el.position_at(t - Duration::from_seconds(h)))
            / (2.0 * h);
        // Acceleration is ~0.6 m/s², so the central difference is good to
        // ~a·h²/6 ≈ mm/s; allow cm/s.
        prop_assert!((fd - vel).norm() < 0.5, "err {}", (fd - vel).norm());
    }

    #[test]
    fn yuma_round_trip_any_constellation(seed_phase in 0.0f64..6.0, week in 0i32..3000) {
        let epoch = GpsTime::new(week, 120_000.0);
        let c = Constellation::from_elements(vec![
            (SatId::new(1), KeplerianElements::gps_circular(0, seed_phase, epoch)),
            (SatId::new(2), KeplerianElements::gps_circular(3, seed_phase + 1.0, epoch)),
        ]);
        let text = gps_orbits::yuma::write(&c);
        let back = gps_orbits::yuma::parse_with_reference(&text, week).unwrap();
        let t = epoch + Duration::from_hours(2.0);
        for ((_, a), (_, b)) in c.iter().zip(back.iter()) {
            prop_assert!(a.position_at(t).distance_to(b.position_at(t)) < 1.0);
        }
    }

    #[test]
    fn visibility_range_bounds(lat in -80.0f64..80.0, lon in -179.0f64..179.0, hours in 0.0f64..24.0) {
        let c = Constellation::gps_nominal();
        let station = gps_geodesy::Geodetic::from_deg(lat, lon, 0.0).to_ecef();
        let t = GpsTime::EPOCH + Duration::from_hours(hours);
        let visible = c.visible_from(station, t, 5.0f64.to_radians());
        prop_assert!(visible.len() >= 4, "only {} visible", visible.len());
        for v in &visible {
            prop_assert!(v.range > 1.8e7 && v.range < 2.8e7, "range {}", v.range);
        }
    }
}
