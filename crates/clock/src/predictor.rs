use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_time::GpsTime;

/// The paper's linear clock-bias predictor: `Δt̂ = D + r·tᵉ` (eq. 4-3),
/// giving the range-domain prediction `ε̂ᴿ = c·Δt̂` (eq. 4-4).
///
/// Usage follows §5.2.2 of the paper:
///
/// * `D` is **calibrated** from an externally supplied bias — in practice
///   the clock bias that a Newton–Raphson solve produces
///   (`D ≈ εᴿ/c`, eq. 5-4). For steering clocks this happens once at
///   initialization; for threshold clocks it happens again at every reset.
/// * `r` is **fitted** from a short window of `(t, bias)` samples at
///   initialization ("a small set of data items at the initialization time
///   is used to compute it") via an ordinary least-squares line fit.
///
/// # Example
///
/// ```
/// use gps_clock::ClockBiasPredictor;
/// use gps_time::{Duration, GpsTime};
///
/// let t0 = GpsTime::EPOCH;
/// let mut p = ClockBiasPredictor::new(t0);
/// // Fit drift from a startup window of NR-derived biases:
/// let samples: Vec<(GpsTime, f64)> = (0..10)
///     .map(|k| {
///         let t = t0 + Duration::from_seconds(k as f64 * 30.0);
///         (t, 1e-6 + 2e-9 * (k as f64 * 30.0))
///     })
///     .collect();
/// p.fit_drift(&samples);
/// p.calibrate(t0, 1e-6);
/// let predicted = p.predict(t0 + Duration::from_seconds(300.0));
/// assert!((predicted - (1e-6 + 2e-9 * 300.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockBiasPredictor {
    /// Offset `D` at the calibration instant, seconds.
    offset: f64,
    /// Drift `r`, s/s.
    drift: f64,
    /// The instant at which `offset` was calibrated.
    calibrated_at: GpsTime,
}

impl ClockBiasPredictor {
    /// Creates a predictor with zero offset and zero drift, anchored at
    /// `t0`.
    #[must_use]
    pub fn new(t0: GpsTime) -> Self {
        ClockBiasPredictor {
            offset: 0.0,
            drift: 0.0,
            calibrated_at: t0,
        }
    }

    /// The current offset `D`, seconds.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The current drift `r`, s/s.
    #[must_use]
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Re-anchors the offset `D` at time `t` from an externally obtained
    /// bias (seconds) — e.g. an NR-derived `εᴿ/c` (paper eq. 5-4).
    ///
    /// Called once at initialization for steering clocks, and at every
    /// reset for threshold clocks.
    pub fn calibrate(&mut self, t: GpsTime, bias_seconds: f64) {
        self.offset = bias_seconds;
        self.calibrated_at = t;
    }

    /// Re-anchors the offset from a range-domain bias `εᴿ` (metres),
    /// applying eq. 5-4 `D ≈ εᴿ/c`.
    pub fn calibrate_from_range_bias(&mut self, t: GpsTime, epsilon_r_meters: f64) {
        self.calibrate(t, epsilon_r_meters / SPEED_OF_LIGHT);
    }

    /// Fits the drift `r` by an ordinary least-squares line through
    /// `(t, bias)` samples (the paper's startup window). The offset is NOT
    /// modified — call [`ClockBiasPredictor::calibrate`] separately.
    ///
    /// Returns the fitted drift. With fewer than two samples (or zero time
    /// spread) the drift is left unchanged.
    pub fn fit_drift(&mut self, samples: &[(GpsTime, f64)]) -> f64 {
        if samples.len() >= 2 {
            let t0 = samples[0].0;
            let n = samples.len() as f64;
            let (mut sum_t, mut sum_b, mut sum_tt, mut sum_tb) = (0.0, 0.0, 0.0, 0.0);
            for (t, b) in samples {
                let dt = (*t - t0).as_seconds();
                sum_t += dt;
                sum_b += b;
                sum_tt += dt * dt;
                sum_tb += dt * b;
            }
            let denom = n * sum_tt - sum_t * sum_t;
            if denom.abs() > f64::EPSILON {
                self.drift = (n * sum_tb - sum_t * sum_b) / denom;
            }
        }
        self.drift
    }

    /// Predicted clock bias `Δt̂` (seconds) at time `t` (eq. 4-3, with the
    /// elapsed time measured from the last calibration).
    #[must_use]
    pub fn predict(&self, t: GpsTime) -> f64 {
        self.offset + self.drift * (t - self.calibrated_at).as_seconds()
    }

    /// Predicted receiver-dependent range error `ε̂ᴿ = c·Δt̂` (metres,
    /// eq. 4-4).
    #[must_use]
    pub fn predict_range_bias(&self, t: GpsTime) -> f64 {
        self.predict(t) * SPEED_OF_LIGHT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_time::Duration;

    fn t(k: f64) -> GpsTime {
        GpsTime::EPOCH + Duration::from_seconds(k)
    }

    #[test]
    fn zero_initialized() {
        let p = ClockBiasPredictor::new(GpsTime::EPOCH);
        assert_eq!(p.offset(), 0.0);
        assert_eq!(p.drift(), 0.0);
        assert_eq!(p.predict(t(1_000.0)), 0.0);
    }

    #[test]
    fn calibration_anchors_offset() {
        let mut p = ClockBiasPredictor::new(GpsTime::EPOCH);
        p.calibrate(t(100.0), 5e-7);
        assert_eq!(p.predict(t(100.0)), 5e-7);
        // Zero drift: constant prediction.
        assert_eq!(p.predict(t(1_000.0)), 5e-7);
    }

    #[test]
    fn range_domain_round_trip() {
        let mut p = ClockBiasPredictor::new(GpsTime::EPOCH);
        p.calibrate_from_range_bias(t(0.0), 30.0); // 30 m ≈ 100 ns
        assert!((p.predict(t(0.0)) - 30.0 / SPEED_OF_LIGHT).abs() < 1e-20);
        assert!((p.predict_range_bias(t(0.0)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn drift_fit_exact_line() {
        let mut p = ClockBiasPredictor::new(GpsTime::EPOCH);
        let samples: Vec<(GpsTime, f64)> = (0..20)
            .map(|k| (t(f64::from(k)), 3e-6 + 4e-9 * f64::from(k)))
            .collect();
        let r = p.fit_drift(&samples);
        assert!((r - 4e-9).abs() < 1e-15, "drift {r}");
        p.calibrate(t(0.0), 3e-6);
        assert!((p.predict(t(10.0)) - (3e-6 + 4e-8)).abs() < 1e-14);
    }

    #[test]
    fn drift_fit_rejects_degenerate_input() {
        let mut p = ClockBiasPredictor::new(GpsTime::EPOCH);
        p.fit_drift(&[]);
        assert_eq!(p.drift(), 0.0);
        p.fit_drift(&[(t(0.0), 1e-6)]);
        assert_eq!(p.drift(), 0.0);
        // All samples at the same instant: zero spread.
        p.fit_drift(&[(t(5.0), 1e-6), (t(5.0), 2e-6)]);
        assert_eq!(p.drift(), 0.0);
    }

    #[test]
    fn drift_fit_averages_noise() {
        let mut p = ClockBiasPredictor::new(GpsTime::EPOCH);
        // Line 1e-8·t plus alternating ±1e-9 noise.
        let samples: Vec<(GpsTime, f64)> = (0..100)
            .map(|k| {
                let noise = if k % 2 == 0 { 1e-9 } else { -1e-9 };
                (t(f64::from(k) * 10.0), 1e-8 * f64::from(k) * 10.0 + noise)
            })
            .collect();
        let r = p.fit_drift(&samples);
        assert!((r - 1e-8).abs() < 2e-11, "drift {r}");
    }

    #[test]
    fn recalibration_moves_anchor() {
        let mut p = ClockBiasPredictor::new(GpsTime::EPOCH);
        p.fit_drift(&[(t(0.0), 0.0), (t(10.0), 1e-8)]); // r = 1e-9
        p.calibrate(t(100.0), 7e-7);
        // Prediction counts drift from the new anchor.
        assert!((p.predict(t(110.0)) - (7e-7 + 1e-8)).abs() < 1e-16);
    }
}
