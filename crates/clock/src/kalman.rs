use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_time::GpsTime;

/// Two-state (bias, drift) Kalman-filter clock predictor — the paper's §6
/// second extension ("consider better clock bias models so the clock
/// prediction can be further improved").
///
/// State `x = [Δt, ṙ]` with constant-drift dynamics
/// `Δt(t+dt) = Δt + ṙ·dt`, white frequency/aging process noise, and scalar
/// measurements of the bias (e.g. NR-derived `εᴿ/c`). Compared to the
/// static linear fit of [`crate::ClockBiasPredictor`], the filter keeps
/// adapting to drift changes instead of trusting a once-fitted slope.
///
/// # Example
///
/// ```
/// use gps_clock::KalmanClockPredictor;
/// use gps_time::{Duration, GpsTime};
///
/// let mut kf = KalmanClockPredictor::default_tcxo(GpsTime::EPOCH);
/// // Feed a ramp of measurements with drift 1e-9 s/s:
/// for k in 0..50 {
///     let t = GpsTime::EPOCH + Duration::from_seconds(k as f64 * 30.0);
///     kf.update(t, 1e-9 * (k as f64 * 30.0));
/// }
/// assert!((kf.drift() - 1e-9).abs() < 2e-10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanClockPredictor {
    /// State estimate: bias (s) and drift (s/s).
    bias: f64,
    drift: f64,
    /// Covariance entries (symmetric 2×2).
    p00: f64,
    p01: f64,
    p11: f64,
    /// White phase process noise density (s²/s).
    q_phase: f64,
    /// Drift (frequency random walk) process noise density ((s/s)²/s).
    q_drift: f64,
    /// Measurement noise variance (s²).
    r_meas: f64,
    /// Time of the last update.
    last: GpsTime,
    /// Whether at least one measurement has been absorbed.
    initialized: bool,
}

impl KalmanClockPredictor {
    /// Creates a filter with explicit noise densities.
    ///
    /// # Panics
    ///
    /// Panics if any noise parameter is negative or `r_meas` is zero.
    #[must_use]
    pub fn new(t0: GpsTime, q_phase: f64, q_drift: f64, r_meas: f64) -> Self {
        assert!(
            q_phase >= 0.0 && q_drift >= 0.0,
            "process noise must be non-negative"
        );
        assert!(r_meas > 0.0, "measurement noise must be positive");
        KalmanClockPredictor {
            bias: 0.0,
            drift: 0.0,
            // Large initial uncertainty: first measurement dominates.
            p00: 1.0,
            p01: 0.0,
            p11: 1e-6,
            q_phase,
            q_drift,
            r_meas,
            last: t0,
            initialized: false,
        }
    }

    /// Sensible tuning for a TCXO-grade receiver clock measured through
    /// NR-derived biases (≈ 10 ns measurement noise).
    #[must_use]
    pub fn default_tcxo(t0: GpsTime) -> Self {
        KalmanClockPredictor::new(t0, 1e-21, 1e-24, 1e-16)
    }

    /// Current bias estimate, seconds.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Current drift estimate, s/s.
    #[must_use]
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Returns `true` once at least one measurement has been absorbed.
    #[must_use]
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Propagates the state to time `t` without measurement (in place).
    fn propagate(&mut self, t: GpsTime) {
        let dt = (t - self.last).as_seconds().max(0.0);
        if dt == 0.0 {
            return;
        }
        // x ← F x with F = [[1, dt], [0, 1]].
        self.bias += self.drift * dt;
        // P ← F P Fᵀ + Q.
        let p00 = self.p00 + dt * (2.0 * self.p01 + dt * self.p11);
        let p01 = self.p01 + dt * self.p11;
        self.p00 = p00 + self.q_phase * dt;
        self.p01 = p01;
        self.p11 += self.q_drift * dt;
        self.last = t;
    }

    /// Absorbs a bias measurement (seconds) at time `t`, e.g. an
    /// NR-derived `εᴿ/c`.
    pub fn update(&mut self, t: GpsTime, measured_bias: f64) {
        if !self.initialized {
            self.bias = measured_bias;
            self.last = t;
            self.initialized = true;
            return;
        }
        self.propagate(t);
        // Scalar update with H = [1, 0].
        let s = self.p00 + self.r_meas;
        let k0 = self.p00 / s;
        let k1 = self.p01 / s;
        let innovation = measured_bias - self.bias;
        self.bias += k0 * innovation;
        self.drift += k1 * innovation;
        // Joseph-free covariance update (sufficient for scalar case).
        let p00 = (1.0 - k0) * self.p00;
        let p01 = (1.0 - k0) * self.p01;
        let p11 = self.p11 - k1 * self.p01;
        self.p00 = p00;
        self.p01 = p01;
        self.p11 = p11;
    }

    /// Handles a threshold reset: the bias state is re-anchored to the
    /// given measured value while the drift estimate is kept (the
    /// oscillator frequency does not change at a reset).
    pub fn reset_bias(&mut self, t: GpsTime, measured_bias: f64) {
        self.propagate(t);
        self.bias = measured_bias;
        self.p00 = self.r_meas.max(self.p00.min(1e-12));
        self.p01 = 0.0;
    }

    /// Predicted bias `Δt̂` (seconds) at a (future) time `t`, without
    /// mutating the filter.
    #[must_use]
    pub fn predict(&self, t: GpsTime) -> f64 {
        let dt = (t - self.last).as_seconds();
        self.bias + self.drift * dt
    }

    /// Predicted receiver range error `ε̂ᴿ = c·Δt̂` (metres).
    #[must_use]
    pub fn predict_range_bias(&self, t: GpsTime) -> f64 {
        self.predict(t) * SPEED_OF_LIGHT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_time::Duration;

    fn t(k: f64) -> GpsTime {
        GpsTime::EPOCH + Duration::from_seconds(k)
    }

    #[test]
    fn first_measurement_initializes() {
        let mut kf = KalmanClockPredictor::default_tcxo(GpsTime::EPOCH);
        assert!(!kf.is_initialized());
        kf.update(t(0.0), 5e-7);
        assert!(kf.is_initialized());
        assert_eq!(kf.bias(), 5e-7);
        assert_eq!(kf.drift(), 0.0);
    }

    #[test]
    fn converges_to_constant_drift() {
        let mut kf = KalmanClockPredictor::default_tcxo(GpsTime::EPOCH);
        let true_drift = 3e-9;
        for k in 0..200 {
            let tk = f64::from(k) * 30.0;
            kf.update(t(tk), true_drift * tk);
        }
        assert!(
            (kf.drift() - true_drift).abs() < 1e-10,
            "drift {}",
            kf.drift()
        );
        // Prediction 5 minutes ahead should be tight.
        let ahead = t(200.0 * 30.0 + 300.0);
        let expected = true_drift * (200.0 * 30.0 + 300.0);
        assert!((kf.predict(ahead) - expected).abs() < 5e-9);
    }

    #[test]
    fn tracks_drift_change_better_than_static_fit() {
        // Drift flips sign halfway; the filter should re-converge.
        let mut kf = KalmanClockPredictor::new(GpsTime::EPOCH, 1e-21, 1e-22, 1e-16);
        let mut bias = 0.0;
        let mut now = 0.0;
        for _ in 0..300 {
            bias += 2e-9 * 30.0;
            now += 30.0;
            kf.update(t(now), bias);
        }
        for _ in 0..300 {
            bias -= 2e-9 * 30.0;
            now += 30.0;
            kf.update(t(now), bias);
        }
        assert!((kf.drift() + 2e-9).abs() < 5e-10, "drift {}", kf.drift());
    }

    #[test]
    fn reset_keeps_drift() {
        let mut kf = KalmanClockPredictor::default_tcxo(GpsTime::EPOCH);
        for k in 0..100 {
            let tk = f64::from(k) * 10.0;
            kf.update(t(tk), 1e-9 * tk);
        }
        let drift_before = kf.drift();
        kf.reset_bias(t(1_000.0), 0.0);
        assert_eq!(kf.bias(), 0.0);
        assert_eq!(kf.drift(), drift_before);
    }

    #[test]
    fn predict_does_not_mutate() {
        let mut kf = KalmanClockPredictor::default_tcxo(GpsTime::EPOCH);
        kf.update(t(0.0), 1e-7);
        kf.update(t(30.0), 1e-7);
        let before = kf;
        let _ = kf.predict(t(300.0));
        assert_eq!(kf, before);
    }

    #[test]
    fn range_bias_scaling() {
        let mut kf = KalmanClockPredictor::default_tcxo(GpsTime::EPOCH);
        kf.update(t(0.0), 1e-7);
        let range = kf.predict_range_bias(t(0.0));
        assert!((range - 1e-7 * SPEED_OF_LIGHT).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "measurement noise")]
    fn rejects_zero_measurement_noise() {
        let _ = KalmanClockPredictor::new(GpsTime::EPOCH, 1e-21, 1e-24, 0.0);
    }
}
