//! Receiver clock simulation and clock-bias prediction.
//!
//! The central idea of the paper's algorithms (§4.1–4.2) is to stop
//! treating the receiver clock error `εᴿ` as a fourth unknown (as the
//! Newton–Raphson baseline does) and instead **predict** it with a clock
//! model, then subtract the prediction from every pseudorange (eq. 4-1).
//! That requires two things, both provided here:
//!
//! 1. **Simulated receiver clocks** with the two correction disciplines the
//!    paper observed in its CORS datasets (§5.2.2): a *steering* clock that
//!    is continuously nudged toward GPS time ([`SteeringClock`]), and a
//!    *threshold* clock that drifts freely and is step-reset whenever the
//!    bias exceeds a threshold ([`ThresholdClock`]). Both implement
//!    [`ReceiverClock`].
//! 2. **Predictors**: [`ClockBiasPredictor`] implements the paper's linear
//!    model `Δt̂ = D + r·tᵉ` (eq. 4-3/4-4) with `D` bootstrapped from an
//!    NR-derived bias (eq. 5-4) and `r` fitted over a startup window; and
//!    [`KalmanClockPredictor`] implements the §6 "better clock bias
//!    models" extension as a two-state (bias, drift) Kalman filter.
//!
//! # Example
//!
//! ```
//! use gps_clock::{ClockBiasPredictor, ReceiverClock, SteeringClock};
//! use gps_time::{Duration, GpsTime};
//! use gps_rng::SeedableRng;
//!
//! let mut rng = gps_rng::rngs::StdRng::seed_from_u64(1);
//! let mut clock = SteeringClock::default();
//! let mut predictor = ClockBiasPredictor::new(GpsTime::EPOCH);
//! // Bootstrap D from the clock's initial (e.g. NR-derived) bias:
//! predictor.calibrate(GpsTime::EPOCH, clock.bias());
//! clock.advance(Duration::from_seconds(30.0), &mut rng);
//! let t = GpsTime::EPOCH + Duration::from_seconds(30.0);
//! let err = predictor.predict(t) - clock.bias();
//! assert!(err.abs() < 1e-6); // within a microsecond for a steered clock
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod allan;
mod kalman;
mod predictor;
mod receiver;

pub use kalman::KalmanClockPredictor;
pub use predictor::ClockBiasPredictor;
pub use receiver::{CorrectionType, ReceiverClock, SteeringClock, ThresholdClock};
