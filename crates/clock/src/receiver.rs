use std::fmt;

use gps_rng::Rng;
use gps_time::Duration;

/// The clock-correction discipline a station applies, as listed in the
/// paper's Table 5.1 ("Clock Correction Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectionType {
    /// The receiver continuously steers its oscillator toward GPS time,
    /// keeping the bias inside a small band (datasets 1–3 of the paper).
    Steering,
    /// The clock drifts freely and is step-reset whenever the bias crosses
    /// a preset threshold (dataset 4 of the paper).
    Threshold,
}

impl fmt::Display for CorrectionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrectionType::Steering => write!(f, "Steering"),
            CorrectionType::Threshold => write!(f, "Threshold"),
        }
    }
}

/// A simulated receiver clock: a source of the true bias `Δt` of the
/// paper's eq. 3-7 (`tᵉ = t + Δt`), advanced epoch by epoch.
///
/// Implementations are stateful simulators; [`ReceiverClock::advance`]
/// steps the internal oscillator model and [`ReceiverClock::bias`] reads
/// the current offset from true GPS time in seconds.
pub trait ReceiverClock {
    /// Current clock bias `Δt`, seconds (receiver reads fast for positive
    /// bias).
    fn bias(&self) -> f64;

    /// Advances the simulation by `dt`, updating the bias.
    fn advance(&mut self, dt: Duration, rng: &mut dyn gps_rng::RngCore);

    /// The correction discipline this clock applies.
    fn correction_type(&self) -> CorrectionType;

    /// `true` if the *last* call to [`ReceiverClock::advance`] performed a
    /// discontinuous correction (a threshold reset). Predictors must
    /// re-calibrate their offset when this fires (paper §5.2.2: "D is
    /// calculated whenever clock bias is reset").
    fn was_reset(&self) -> bool;

    /// Nominal frequency offset (bias growth rate), s/s. Shows up as a
    /// common term in all Doppler measurements; zero for disciplined
    /// (steered) clocks.
    fn drift_rate(&self) -> f64 {
        0.0
    }
}

/// Gaussian draw via Box–Muller (keeps `gps-rng` as the only RNG dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.standard_normal()
}

/// A steered receiver clock: a control loop keeps the bias close to a
/// fixed setpoint, so the bias is `offset + slowly-varying wander`.
///
/// Matches the paper's description: "With the steering approach, the
/// system manages to control `r·tᵉ` within a small range of standard
/// time", and its consequence for prediction: "D is calculated only once
/// at the initialization time".
///
/// The wander is a mean-reverting (Ornstein–Uhlenbeck–style) process:
/// white frequency noise integrated into phase, pulled back by the
/// steering gain.
#[derive(Debug, Clone)]
pub struct SteeringClock {
    /// Fixed setpoint offset `D`, seconds.
    offset: f64,
    /// Current deviation from the setpoint, seconds.
    wander: f64,
    /// Steady-state RMS of the wander, seconds.
    wander_sigma: f64,
    /// Mean-reversion time constant, seconds.
    tau: f64,
    reset_flag: bool,
}

impl SteeringClock {
    /// Creates a steering clock.
    ///
    /// * `offset_s` — the setpoint bias `D` (seconds);
    /// * `wander_sigma_s` — steady-state RMS of the residual wander;
    /// * `tau_s` — steering time constant (how fast excursions are pulled
    ///   back).
    ///
    /// # Panics
    ///
    /// Panics if `wander_sigma_s` is negative or `tau_s` non-positive.
    #[must_use]
    pub fn new(offset_s: f64, wander_sigma_s: f64, tau_s: f64) -> Self {
        assert!(wander_sigma_s >= 0.0, "wander sigma must be non-negative");
        assert!(tau_s > 0.0, "steering time constant must be positive");
        SteeringClock {
            offset: offset_s,
            wander: 0.0,
            wander_sigma: wander_sigma_s,
            tau: tau_s,
            reset_flag: false,
        }
    }

    /// The fixed setpoint offset `D`, seconds.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }
}

impl Default for SteeringClock {
    /// A CORS-style steered clock: 50 ns setpoint, 10 ns wander RMS
    /// (≈ 3 m of range), 300 s steering constant.
    fn default() -> Self {
        SteeringClock::new(5e-8, 1e-8, 300.0)
    }
}

impl ReceiverClock for SteeringClock {
    fn bias(&self) -> f64 {
        self.offset + self.wander
    }

    fn advance(&mut self, dt: Duration, rng: &mut dyn gps_rng::RngCore) {
        let dt_s = dt.as_seconds();
        assert!(dt_s >= 0.0, "cannot advance a clock backwards");
        // Exact OU discretization: x' = a·x + sqrt(1-a²)·σ·ξ.
        let a = (-dt_s / self.tau).exp();
        let noise_scale = self.wander_sigma * (1.0 - a * a).max(0.0).sqrt();
        self.wander = a * self.wander + noise_scale * gaussian(rng);
        self.reset_flag = false;
    }

    fn correction_type(&self) -> CorrectionType {
        CorrectionType::Steering
    }

    fn was_reset(&self) -> bool {
        self.reset_flag
    }
}

/// A free-running receiver clock with threshold resets: the oscillator
/// drifts at a (slowly wandering) rate, and whenever `|bias|` crosses the
/// threshold the clock is step-corrected back toward zero.
///
/// Matches the paper's dataset 4: "With the threshold approach, `r·tᵉ`
/// will change as the passage of time. Whenever the clock error reaches a
/// pre-set threshold, the clock will be adjusted."
#[derive(Debug, Clone)]
pub struct ThresholdClock {
    /// Current bias, seconds.
    bias: f64,
    /// Nominal frequency offset (drift rate `r`), s/s.
    drift: f64,
    /// White frequency noise density: RMS of drift fluctuation per step.
    freq_noise: f64,
    /// Reset threshold, seconds.
    threshold: f64,
    /// Residual bias right after a reset (steering is imperfect), seconds.
    reset_residual: f64,
    reset_flag: bool,
}

impl ThresholdClock {
    /// Creates a threshold clock.
    ///
    /// * `initial_bias_s` — bias at simulation start;
    /// * `drift_s_per_s` — nominal frequency offset `r` (s/s);
    /// * `threshold_s` — reset threshold (|bias| at which a step
    ///   correction fires);
    /// * `freq_noise` — RMS of white frequency noise (s/s per √s).
    ///
    /// # Panics
    ///
    /// Panics if `threshold_s` is non-positive or `freq_noise` negative.
    #[must_use]
    pub fn new(initial_bias_s: f64, drift_s_per_s: f64, threshold_s: f64, freq_noise: f64) -> Self {
        assert!(threshold_s > 0.0, "threshold must be positive");
        assert!(freq_noise >= 0.0, "frequency noise must be non-negative");
        ThresholdClock {
            bias: initial_bias_s,
            drift: drift_s_per_s,
            freq_noise,
            threshold: threshold_s,
            reset_residual: threshold_s * 1e-3,
            reset_flag: false,
        }
    }

    /// The nominal drift rate `r`, s/s.
    #[must_use]
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The reset threshold, seconds.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Default for ThresholdClock {
    /// A TCXO-grade clock: 2×10⁻⁸ s/s drift (≈ 1.7 ms/day), 1 ms reset
    /// threshold (reset roughly every 14 h), small frequency noise.
    fn default() -> Self {
        ThresholdClock::new(1e-7, 2e-8, 1e-3, 1e-11)
    }
}

impl ReceiverClock for ThresholdClock {
    fn bias(&self) -> f64 {
        self.bias
    }

    fn advance(&mut self, dt: Duration, rng: &mut dyn gps_rng::RngCore) {
        let dt_s = dt.as_seconds();
        assert!(dt_s >= 0.0, "cannot advance a clock backwards");
        // Integrate phase: bias += drift·dt + white-frequency random walk.
        self.bias += self.drift * dt_s + self.freq_noise * dt_s.sqrt() * gaussian(rng);
        self.reset_flag = false;
        if self.bias.abs() >= self.threshold {
            // Step correction back to (nearly) zero, on the side the clock
            // is drifting away from so the next segment is a fresh ramp.
            self.bias = self.reset_residual * gaussian(rng);
            self.reset_flag = true;
        }
    }

    fn correction_type(&self) -> CorrectionType {
        CorrectionType::Threshold
    }

    fn was_reset(&self) -> bool {
        self.reset_flag
    }

    fn drift_rate(&self) -> f64 {
        self.drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_rng::rngs::StdRng;
    use gps_rng::SeedableRng;

    #[test]
    fn steering_stays_bounded() {
        let mut clock = SteeringClock::default();
        let mut rng = StdRng::seed_from_u64(1);
        let step = Duration::from_seconds(30.0);
        for _ in 0..5_000 {
            clock.advance(step, &mut rng);
            let dev = (clock.bias() - clock.offset()).abs();
            assert!(dev < 1e-7, "wander escaped: {dev}");
            assert!(!clock.was_reset());
        }
        assert_eq!(clock.correction_type(), CorrectionType::Steering);
    }

    #[test]
    fn steering_wander_has_configured_rms() {
        let mut clock = SteeringClock::new(0.0, 1e-8, 100.0);
        let mut rng = StdRng::seed_from_u64(2);
        let step = Duration::from_seconds(50.0);
        let mut sum_sq = 0.0;
        let n = 20_000;
        for _ in 0..n {
            clock.advance(step, &mut rng);
            sum_sq += clock.bias() * clock.bias();
        }
        let rms = (sum_sq / f64::from(n)).sqrt();
        assert!((rms - 1e-8).abs() / 1e-8 < 0.15, "rms {rms}");
    }

    #[test]
    fn threshold_clock_ramps_then_resets() {
        // Deterministic drift (no noise): bias ramps at `drift` and resets
        // when crossing the threshold.
        let mut clock = ThresholdClock::new(0.0, 1e-6, 1e-3, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let step = Duration::from_seconds(1.0);
        let mut resets = 0;
        let mut steps_since_reset = 0;
        // Each ramp is 1000 steps ± the (randomized) post-reset residual,
        // so leave a little slack beyond 3 nominal ramps.
        for _ in 0..3_020 {
            clock.advance(step, &mut rng);
            steps_since_reset += 1;
            if clock.was_reset() {
                resets += 1;
                // 1e-3 / 1e-6 = 1000 steps per ramp, give or take the
                // residual left by the previous reset.
                assert!((steps_since_reset as i64 - 1_000).abs() <= 5);
                steps_since_reset = 0;
            }
        }
        assert_eq!(resets, 3, "expected 3 resets in ~3000 s");
        assert_eq!(clock.correction_type(), CorrectionType::Threshold);
    }

    #[test]
    fn threshold_bias_piecewise_linear() {
        let mut clock = ThresholdClock::new(0.0, 1e-6, 1e-3, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        clock.advance(Duration::from_seconds(100.0), &mut rng);
        assert!((clock.bias() - 1e-4).abs() < 1e-12);
        assert_eq!(clock.drift(), 1e-6);
        assert_eq!(clock.threshold(), 1e-3);
    }

    #[test]
    fn default_threshold_resets_are_rare_per_day() {
        let mut clock = ThresholdClock::default();
        let mut rng = StdRng::seed_from_u64(5);
        let step = Duration::from_seconds(30.0);
        let mut resets = 0;
        for _ in 0..2_880 {
            // one day at 30 s cadence
            clock.advance(step, &mut rng);
            if clock.was_reset() {
                resets += 1;
            }
        }
        assert!((1..=4).contains(&resets), "resets {resets}");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_rejects_negative_dt() {
        let mut clock = SteeringClock::default();
        let mut rng = StdRng::seed_from_u64(6);
        clock.advance(Duration::from_seconds(-1.0), &mut rng);
    }

    #[test]
    fn correction_type_display() {
        assert_eq!(CorrectionType::Steering.to_string(), "Steering");
        assert_eq!(CorrectionType::Threshold.to_string(), "Threshold");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_clock_rejects_bad_threshold() {
        let _ = ThresholdClock::new(0.0, 1e-7, 0.0, 0.0);
    }

    #[test]
    fn trait_object_usable() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut clocks: Vec<Box<dyn ReceiverClock>> = vec![
            Box::new(SteeringClock::default()),
            Box::new(ThresholdClock::default()),
        ];
        for c in &mut clocks {
            c.advance(Duration::from_seconds(1.0), &mut rng);
            assert!(c.bias().abs() < 1.0);
        }
    }
}
