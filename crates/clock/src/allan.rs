//! Allan deviation: the standard stability characterization for clocks.
//!
//! The paper's clock-bias predictor works because receiver oscillators
//! have a *stable frequency* over the prediction horizon (§4.2: "a clock
//! has a constant drift due to its stability on frequency"). The Allan
//! deviation quantifies exactly that stability as a function of the
//! averaging interval τ, making it the right tool to validate that a
//! simulated clock behaves like the hardware class it models — and to
//! choose the recalibration cadence.

/// Computes the overlapping Allan deviation of a phase (time-error)
/// record.
///
/// `phase` holds clock bias samples `x(k·tau0)` in seconds at a constant
/// spacing `tau0` (seconds); `m` is the averaging factor, so the returned
/// deviation is at `τ = m·tau0`.
///
/// Returns `None` when the record is too short (needs at least `2m + 1`
/// samples).
///
/// # Panics
///
/// Panics if `tau0` is not strictly positive or `m` is zero.
///
/// # Example
///
/// ```
/// use gps_clock::allan::allan_deviation;
///
/// // A perfectly linear phase ramp (pure frequency offset) has zero
/// // Allan deviation at every τ.
/// let phase: Vec<f64> = (0..100).map(|k| 1e-9 * k as f64).collect();
/// let adev = allan_deviation(&phase, 1.0, 10).unwrap();
/// assert!(adev < 1e-18);
/// ```
#[must_use]
pub fn allan_deviation(phase: &[f64], tau0: f64, m: usize) -> Option<f64> {
    assert!(tau0 > 0.0, "sample spacing must be positive");
    assert!(m > 0, "averaging factor must be positive");
    let n = phase.len();
    if n < 2 * m + 1 {
        return None;
    }
    let tau = m as f64 * tau0;
    // Overlapping estimator:
    // σ²(τ) = 1/(2τ²(N−2m)) Σ (x[k+2m] − 2x[k+m] + x[k])².
    let terms = n - 2 * m;
    let mut sum = 0.0;
    for k in 0..terms {
        let d = phase[k + 2 * m] - 2.0 * phase[k + m] + phase[k];
        sum += d * d;
    }
    Some((sum / (2.0 * tau * tau * terms as f64)).sqrt())
}

/// Computes the Allan deviation over a log-spaced ladder of averaging
/// factors, returning `(τ, σ(τ))` pairs — the standard stability plot.
///
/// # Panics
///
/// Panics if `tau0` is not strictly positive.
#[must_use]
pub fn allan_ladder(phase: &[f64], tau0: f64) -> Vec<(f64, f64)> {
    assert!(tau0 > 0.0, "sample spacing must be positive");
    let mut out = Vec::new();
    let mut m = 1usize;
    while let Some(adev) = allan_deviation(phase, tau0, m) {
        out.push((m as f64 * tau0, adev));
        // Log-spaced: 1, 2, 4, 8, ...
        m *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReceiverClock, SteeringClock, ThresholdClock};
    use gps_rng::rngs::StdRng;
    use gps_rng::SeedableRng;
    use gps_time::Duration;

    #[test]
    fn linear_ramp_has_zero_adev() {
        let phase: Vec<f64> = (0..1_000).map(|k| 5e-8 + 2e-9 * k as f64).collect();
        for m in [1, 4, 16, 64] {
            let adev = allan_deviation(&phase, 1.0, m).unwrap();
            assert!(adev < 1e-17, "m={m}: {adev}");
        }
    }

    #[test]
    fn white_phase_noise_slope_is_minus_one() {
        // For white phase noise, σ(τ) ∝ τ⁻¹: quadrupling τ divides the
        // deviation by ~4.
        let mut state = 88172645463325252u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let phase: Vec<f64> = (0..20_000).map(|_| 1e-9 * next()).collect();
        let a1 = allan_deviation(&phase, 1.0, 4).unwrap();
        let a4 = allan_deviation(&phase, 1.0, 16).unwrap();
        let slope = (a4 / a1).log2() / 2.0; // per octave-of-4
        assert!(
            (slope + 1.0).abs() < 0.25,
            "white-PM slope {slope}, expected ≈ -1"
        );
    }

    #[test]
    fn short_record_returns_none() {
        let phase = [0.0; 10];
        assert!(allan_deviation(&phase, 1.0, 5).is_none());
        assert!(allan_deviation(&phase, 1.0, 4).is_some());
    }

    #[test]
    fn ladder_is_log_spaced_and_bounded() {
        let phase: Vec<f64> = (0..512).map(|k| (k as f64).sin() * 1e-9).collect();
        let ladder = allan_ladder(&phase, 2.0);
        assert!(!ladder.is_empty());
        for pair in ladder.windows(2) {
            assert!((pair[1].0 / pair[0].0 - 2.0).abs() < 1e-12);
        }
        // Largest m still satisfies 2m+1 <= n.
        let max_tau = ladder.last().unwrap().0;
        assert!(max_tau <= 512.0);
    }

    #[test]
    fn steering_clock_is_stable_at_long_tau() {
        // A steered clock's phase wander is bounded, so σ(τ) falls with τ.
        let mut clock = SteeringClock::default();
        let mut rng = StdRng::seed_from_u64(5);
        let phase: Vec<f64> = (0..4_000)
            .map(|_| {
                clock.advance(Duration::from_seconds(30.0), &mut rng);
                clock.bias()
            })
            .collect();
        let short = allan_deviation(&phase, 30.0, 2).unwrap();
        let long = allan_deviation(&phase, 30.0, 256).unwrap();
        assert!(long < short, "long {long} should be below short {short}");
    }

    #[test]
    fn threshold_clock_dominated_by_drift_between_resets() {
        // Pure deterministic drift (no reset within the record): the
        // second difference is exactly zero.
        let mut clock = ThresholdClock::new(0.0, 2e-8, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let phase: Vec<f64> = (0..500)
            .map(|_| {
                clock.advance(Duration::from_seconds(1.0), &mut rng);
                clock.bias()
            })
            .collect();
        let adev = allan_deviation(&phase, 1.0, 8).unwrap();
        assert!(adev < 1e-16, "drift-only adev {adev}");
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn rejects_bad_tau0() {
        let _ = allan_deviation(&[0.0; 10], 0.0, 1);
    }
}
