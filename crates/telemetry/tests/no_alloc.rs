//! Proves the acceptance criterion that counter/gauge/histogram record
//! paths perform no heap allocation, using a counting global allocator.
//!
//! The counters are thread-local so allocations made by libtest's
//! harness threads (timers, output capture) don't pollute the window —
//! only the thread actually exercising the record path is measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

fn note_allocation() {
    // Cell-based, const-initialized, non-Drop TLS: reading it never
    // allocates, so this is safe to call from inside the allocator.
    if COUNTING.with(Cell::get) {
        ALLOCATIONS.with(|a| a.set(a.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_allocation();
        // SAFETY: same contract as ours; layout is forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as ours; ptr/layout forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_allocation();
        // SAFETY: same contract as ours; arguments forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn record_path_does_not_allocate() {
    // Registration (named lookups) may allocate; do it up front.
    let counter = gps_telemetry::counter("noalloc.counter");
    let gauge = gps_telemetry::gauge("noalloc.gauge");
    let histogram = gps_telemetry::histogram("noalloc.histogram");
    counter.inc();
    gauge.set(1.0);
    histogram.record(1.0);

    COUNTING.with(|c| c.set(true));
    for i in 0..10_000u64 {
        counter.add(i & 3);
        gauge.set(i as f64);
        histogram.record(0.5 + i as f64);
    }
    COUNTING.with(|c| c.set(false));

    let allocations = ALLOCATIONS.with(Cell::get);
    assert_eq!(
        allocations, 0,
        "record path must be allocation-free, saw {allocations} allocations"
    );
}

#[test]
fn flight_recorder_record_path_does_not_allocate() {
    use gps_telemetry::recorder::{self, RecordKind};

    // Ring creation and thread attachment allocate; do them up front.
    let ring = recorder::recorder().attach(90);
    ring.record(RecordKind::Marker, 0, 0, 0, 0);
    recorder::record_current(RecordKind::Marker, 0, 0, 0, 0);
    let solver_tag = recorder::tag("NR");

    COUNTING.with(|c| c.set(true));
    for i in 0..10_000u32 {
        // Direct ring writes and the thread-attached path, past the
        // wrap-around point (the default ring holds 1024 records).
        ring.record(RecordKind::LaneSolve, 0, i, solver_tag, u64::from(i));
        recorder::record_current(RecordKind::EpochStart, 8, i, 0, 0);
    }
    COUNTING.with(|c| c.set(false));

    recorder::recorder().detach();
    let allocations = ALLOCATIONS.with(Cell::get);
    assert_eq!(
        allocations, 0,
        "flight-recorder record path must be allocation-free, saw {allocations} allocations"
    );
}
