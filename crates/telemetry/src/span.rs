//! Monotonic timing spans on a thread-local stack.

use std::cell::RefCell;
use std::time::Instant;

use crate::recorder::{self, RecordKind};
use crate::{Event, Level};

thread_local! {
    /// Names of the spans currently open on this thread, outermost
    /// first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one named region of work.
///
/// Created by [`span`]; on drop it records the elapsed wall time into
/// the histogram `span.<outer>/<inner>` (microseconds) and, when a sink
/// listens at `Debug`, emits a `span` event with the duration.
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    /// Flight-recorder tag of the span name, precomputed so the drop
    /// path stays allocation-free when a worker ring is attached.
    tag: u64,
    start: Instant,
}

/// Opens a span named `name`, nested under any span already open on
/// this thread. Hold the returned guard for the duration of the region:
///
/// ```
/// let _epoch = gps_telemetry::span("epoch");
/// {
///     let _solve = gps_telemetry::span("nr"); // records span.epoch/nr
/// }
/// ```
pub fn span(name: &str) -> SpanGuard {
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_owned());
        stack.join("/")
    });
    let tag = recorder::tag(name);
    recorder::record_current(RecordKind::SpanEnter, 0, 0, tag, 0);
    SpanGuard {
        path,
        tag,
        start: Instant::now(),
    }
}

impl SpanGuard {
    /// Full `/`-joined path of this span, e.g. `epoch/nr`.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let duration_us = self.start.elapsed().as_secs_f64() * 1e6;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        recorder::record_current(RecordKind::SpanExit, 0, 0, self.tag, duration_us as u64);
        crate::histogram(&format!("span.{}", self.path)).record(duration_us);
        if crate::enabled(Level::Debug) {
            Event::new(Level::Debug, "span", self.path.clone())
                .with("duration_us", duration_us)
                .emit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_slash_paths() {
        let outer = span("span_outer");
        assert_eq!(outer.path(), "span_outer");
        {
            let inner = span("inner");
            assert_eq!(inner.path(), "span_outer/inner");
        }
        drop(outer);
        let snap = crate::snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"span.span_outer"));
        assert!(names.contains(&"span.span_outer/inner"));
    }

    #[test]
    fn span_durations_are_positive_microseconds() {
        {
            let _s = span("span_timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = crate::snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "span.span_timed")
            .unwrap();
        assert!(
            h.min >= 2_000.0,
            "slept 2 ms but span recorded {} µs",
            h.min
        );
    }

    #[test]
    fn stack_unwinds_after_drop() {
        {
            let _a = span("span_unwind");
        }
        let fresh = span("span_fresh");
        assert_eq!(fresh.path(), "span_fresh", "previous span must have popped");
    }
}
