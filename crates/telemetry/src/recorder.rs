//! Flight recorder: per-worker fixed-capacity binary ring buffers.
//!
//! Each worker thread attaches to a ring of packed fixed-width records
//! (span enter/exit, job lifecycle, solver lane outcomes, fix quality)
//! and overwrites the oldest record when full — like an aircraft flight
//! recorder, the last `capacity` records per worker always survive. The
//! record path is lock-free and allocation-free (a timestamp read, one
//! `fetch_add`, four relaxed stores), cheap enough to leave on inside
//! the timed solver interior.
//!
//! Rings are drained on demand ([`FlightRecorder::capture`]), on job
//! panic (`gps-pool` wires its panic isolation to
//! [`FlightRecorder::dump_now`]), and at shutdown (the CLI's
//! `--flight-recorder FILE` flag). The dump is a small binary file
//! (magic `GPSFREC1`, little-endian words) that `gps-repro inspect`
//! decodes into a per-worker timeline.
//!
//! Concurrency contract: each ring has a *single writer* (the attached
//! worker thread). Draining while that writer is still recording is
//! safe — every word is an atomic — but a record straddling the cursor
//! may mix words from two generations. Drains therefore happen at
//! quiescence (after a panic is caught, or after the pool has joined),
//! and the decoder treats implausible records as opaque rather than
//! trusting them.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// Words per packed record: timestamp, kind/code/epoch, payload a/b.
const RECORD_WORDS: usize = 4;
/// Default ring capacity (records per worker) when none is configured.
const DEFAULT_CAPACITY: usize = 1024;
/// File magic of a flight-recorder dump (version 1).
pub const DUMP_MAGIC: &[u8; 8] = b"GPSFREC1";

/// What a flight record describes. Stored as a `u16` in the packed
/// record; unknown values decode as raw numbers so newer dumps stay
/// readable by older inspectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum RecordKind {
    /// A telemetry span opened (`a` = name tag).
    SpanEnter = 1,
    /// A telemetry span closed (`a` = name tag, `b` = duration µs).
    SpanExit = 2,
    /// A pool worker picked up a job (`a` = job sequence).
    JobStart = 3,
    /// A pool job finished cleanly (`a` = job sequence, `b` = busy µs).
    JobEnd = 4,
    /// A pool job panicked; caught by the worker (`a` = job sequence).
    JobPanic = 5,
    /// A parallel-engine epoch began (`code` = satellite count).
    EpochStart = 6,
    /// A solver lane produced a fix (`a` = solver tag, `b` = ns).
    LaneSolve = 7,
    /// A solver lane failed (`code` = error code, `a` = solver tag,
    /// `b` = ns).
    LaneError = 8,
    /// A resilient fix was graded (`code` = quality code, `a` = quality
    /// name tag).
    FixQuality = 9,
    /// Free-form marker (`a` = tag).
    Marker = 10,
}

impl RecordKind {
    /// Decodes the wire value, if known.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<RecordKind> {
        match v {
            1 => Some(RecordKind::SpanEnter),
            2 => Some(RecordKind::SpanExit),
            3 => Some(RecordKind::JobStart),
            4 => Some(RecordKind::JobEnd),
            5 => Some(RecordKind::JobPanic),
            6 => Some(RecordKind::EpochStart),
            7 => Some(RecordKind::LaneSolve),
            8 => Some(RecordKind::LaneError),
            9 => Some(RecordKind::FixQuality),
            10 => Some(RecordKind::Marker),
            _ => None,
        }
    }

    /// Stable lower-snake name for timeline rendering.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::SpanEnter => "span_enter",
            RecordKind::SpanExit => "span_exit",
            RecordKind::JobStart => "job_start",
            RecordKind::JobEnd => "job_end",
            RecordKind::JobPanic => "job_panic",
            RecordKind::EpochStart => "epoch_start",
            RecordKind::LaneSolve => "lane_solve",
            RecordKind::LaneError => "lane_error",
            RecordKind::FixQuality => "fix_quality",
            RecordKind::Marker => "marker",
        }
    }
}

/// Packs the first eight ASCII bytes of `name` into a `u64` tag
/// (little-endian, NUL-padded). Lossy by design: tags identify solver
/// lanes and span names, which the workspace keeps short and distinct
/// within their first eight bytes.
#[must_use]
pub fn tag(name: &str) -> u64 {
    let mut out = 0u64;
    for (i, b) in name.bytes().take(8).enumerate() {
        out |= u64::from(b) << (8 * i);
    }
    out
}

/// Recovers the printable text of a [`tag`] (stops at the NUL padding;
/// non-ASCII bytes render as `?`).
#[must_use]
pub fn tag_text(t: u64) -> String {
    let mut out = String::new();
    for i in 0..8 {
        let b = ((t >> (8 * i)) & 0xff) as u8;
        if b == 0 {
            break;
        }
        out.push(if b.is_ascii_graphic() || b == b' ' {
            b as char
        } else {
            '?'
        });
    }
    out
}

/// One decoded flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Microseconds since the recorder's origin instant.
    pub t_us: u64,
    /// Wire value of the record kind (see [`RecordKind::from_u16`]).
    pub kind: u16,
    /// Kind-specific small payload (error code, quality code, …).
    pub code: u16,
    /// Epoch id the record refers to (0 when not applicable).
    pub epoch_id: u32,
    /// Kind-specific payload word (usually a [`tag`]).
    pub a: u64,
    /// Kind-specific payload word (usually a duration).
    pub b: u64,
}

impl FlightRecord {
    // lint: wire_format
    fn to_words(self) -> [u64; RECORD_WORDS] {
        let meta =
            u64::from(self.kind) | u64::from(self.code) << 16 | u64::from(self.epoch_id) << 32;
        [self.t_us, meta, self.a, self.b]
    }

    // lint: wire_format
    fn from_words(w: [u64; RECORD_WORDS]) -> FlightRecord {
        let [t_us, meta, a, b] = w;
        FlightRecord {
            t_us,
            kind: (meta & 0xffff) as u16,
            code: ((meta >> 16) & 0xffff) as u16,
            epoch_id: (meta >> 32) as u32,
            a,
            b,
        }
    }

    /// Decoded kind, if this record's wire value is known.
    #[must_use]
    pub fn kind(&self) -> Option<RecordKind> {
        RecordKind::from_u16(self.kind)
    }
}

/// A single worker's fixed-capacity record ring. Single writer (the
/// attached thread), any number of quiescent readers.
#[derive(Debug)]
pub struct WorkerRing {
    worker: u32,
    /// Power-of-two record capacity.
    capacity: usize,
    /// Total records ever written; the ring holds the last `capacity`.
    cursor: AtomicU64,
    /// `capacity * RECORD_WORDS` atomic words.
    slots: Box<[AtomicU64]>,
    origin: Instant,
}

impl WorkerRing {
    fn new(worker: u32, capacity: usize, origin: Instant) -> WorkerRing {
        let capacity = capacity.next_power_of_two().max(16);
        WorkerRing {
            worker,
            capacity,
            cursor: AtomicU64::new(0),
            slots: (0..capacity * RECORD_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            origin,
        }
    }

    /// Worker id this ring belongs to.
    #[must_use]
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Appends one record, overwriting the oldest when full. Atomics
    /// only — no locks, no allocation.
    // lint: no_alloc
    pub fn record(&self, kind: RecordKind, code: u16, epoch_id: u32, a: u64, b: u64) {
        let t_us = self.origin.elapsed().as_micros() as u64;
        let rec = FlightRecord {
            t_us,
            kind: kind as u16,
            code,
            epoch_id,
            a,
            b,
        };
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let base = (seq as usize & (self.capacity - 1)) * RECORD_WORDS;
        for (i, w) in rec.to_words().iter().enumerate() {
            if let Some(slot) = self.slots.get(base + i) {
                slot.store(*w, Ordering::Relaxed);
            }
        }
    }

    /// Copies out the surviving records, oldest first, plus how many
    /// older records the ring has already overwritten.
    #[must_use]
    pub fn capture(&self) -> WorkerTimeline {
        // Relaxed matches the store side: every write to `cursor` and
        // `slots` is Relaxed, so an Acquire here would synchronise
        // with nothing. Capture is only coherent for records whose
        // writes happened-before this call by external means (the
        // worker has quiesced, or the caller joined it); torn reads
        // of in-flight records are an accepted property of the
        // single-writer ring.
        let cursor = self.cursor.load(Ordering::Relaxed);
        let len = cursor.min(self.capacity as u64);
        let dropped = cursor - len;
        let mut records = Vec::with_capacity(len as usize);
        for seq in dropped..cursor {
            let base = (seq as usize & (self.capacity - 1)) * RECORD_WORDS;
            let mut words = [0u64; RECORD_WORDS];
            for (i, w) in words.iter_mut().enumerate() {
                if let Some(slot) = self.slots.get(base + i) {
                    *w = slot.load(Ordering::Relaxed);
                }
            }
            records.push(FlightRecord::from_words(words));
        }
        WorkerTimeline {
            worker: self.worker,
            dropped,
            records,
        }
    }
}

/// One worker's captured records, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTimeline {
    /// Worker id.
    pub worker: u32,
    /// Records overwritten before this capture (ring wrapped).
    pub dropped: u64,
    /// Surviving records in write order.
    pub records: Vec<FlightRecord>,
}

/// A full capture of every worker ring, encodable to the binary dump
/// format and back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightDump {
    /// Per-worker timelines, in worker-id order.
    pub workers: Vec<WorkerTimeline>,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// lint: wire_format
fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
    let end = at
        .checked_add(4)
        .ok_or_else(|| format!("cursor overflow at byte {}", *at))?;
    let slice = bytes
        .get(*at..end)
        .ok_or_else(|| format!("truncated dump at byte {}", *at))?;
    *at = end;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(slice);
    Ok(u32::from_le_bytes(buf))
}

// lint: wire_format
fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, String> {
    let end = at
        .checked_add(8)
        .ok_or_else(|| format!("cursor overflow at byte {}", *at))?;
    let slice = bytes
        .get(*at..end)
        .ok_or_else(|| format!("truncated dump at byte {}", *at))?;
    *at = end;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(slice);
    Ok(u64::from_le_bytes(buf))
}

impl FlightDump {
    /// Total surviving records across all workers.
    #[must_use]
    pub fn total_records(&self) -> usize {
        self.workers.iter().map(|w| w.records.len()).sum()
    }

    /// Total overwritten records across all workers.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Encodes the dump: magic, worker count, then per worker its id,
    /// dropped count, record count and packed records (all
    /// little-endian).
    #[must_use]
    // lint: wire_format
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DUMP_MAGIC);
        push_u32(&mut out, self.workers.len() as u32);
        for w in &self.workers {
            push_u32(&mut out, w.worker);
            push_u64(&mut out, w.dropped);
            push_u32(&mut out, w.records.len() as u32);
            for r in &w.records {
                for word in r.to_words() {
                    push_u64(&mut out, word);
                }
            }
        }
        out
    }

    /// Decodes the output of [`FlightDump::to_bytes`].
    // lint: wire_format
    pub fn from_bytes(bytes: &[u8]) -> Result<FlightDump, String> {
        if bytes.get(..8) != Some(DUMP_MAGIC.as_slice()) {
            return Err("not a flight-recorder dump (bad magic)".to_owned());
        }
        let mut at = 8usize;
        let worker_count = take_u32(bytes, &mut at)?;
        let mut workers = Vec::with_capacity(worker_count as usize);
        for _ in 0..worker_count {
            let worker = take_u32(bytes, &mut at)?;
            let dropped = take_u64(bytes, &mut at)?;
            let record_count = take_u32(bytes, &mut at)?;
            let mut records = Vec::with_capacity(record_count as usize);
            for _ in 0..record_count {
                let mut words = [0u64; RECORD_WORDS];
                for w in words.iter_mut() {
                    *w = take_u64(bytes, &mut at)?;
                }
                records.push(FlightRecord::from_words(words));
            }
            workers.push(WorkerTimeline {
                worker,
                dropped,
                records,
            });
        }
        if at != bytes.len() {
            return Err(format!(
                "{} trailing bytes after dump body",
                bytes.len().saturating_sub(at)
            ));
        }
        Ok(FlightDump { workers })
    }
}

/// Owns every worker ring plus the optional dump destination. One
/// global instance lives behind [`recorder`].
#[derive(Debug)]
pub struct FlightRecorder {
    origin: Instant,
    capacity: AtomicU64,
    rings: RwLock<Vec<Arc<WorkerRing>>>,
    dump_path: Mutex<Option<PathBuf>>,
}

impl FlightRecorder {
    fn new() -> FlightRecorder {
        FlightRecorder {
            origin: Instant::now(),
            capacity: AtomicU64::new(DEFAULT_CAPACITY as u64),
            rings: RwLock::new(Vec::new()),
            dump_path: Mutex::new(None),
        }
    }

    /// Sets the record capacity used for rings created *after* this
    /// call (existing rings keep their size). Rounded up to a power of
    /// two, minimum 16.
    pub fn set_capacity(&self, records: usize) {
        self.capacity
            .store(records.max(1) as u64, Ordering::Relaxed);
    }

    /// Fetches (creating on first use) the ring for `worker`.
    pub fn ring(&self, worker: u32) -> Arc<WorkerRing> {
        if let Some(found) = self
            .rings
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|r| r.worker == worker)
        {
            return Arc::clone(found);
        }
        let mut rings = self.rings.write().unwrap_or_else(PoisonError::into_inner);
        // Double-checked: another thread may have created it between
        // the read unlock and the write lock.
        if let Some(found) = rings.iter().find(|r| r.worker == worker) {
            return Arc::clone(found);
        }
        let capacity = self.capacity.load(Ordering::Relaxed) as usize;
        let ring = Arc::new(WorkerRing::new(worker, capacity, self.origin));
        rings.push(Arc::clone(&ring));
        rings.sort_by_key(|r| r.worker);
        ring
    }

    /// Attaches the calling thread to `worker`'s ring: subsequent
    /// [`record_current`] calls (spans, lane solves, …) on this thread
    /// land there. Returns the ring for direct use.
    pub fn attach(&self, worker: u32) -> Arc<WorkerRing> {
        let ring = self.ring(worker);
        CURRENT.with(|current| *current.borrow_mut() = Some(Arc::clone(&ring)));
        ring
    }

    /// Detaches the calling thread (subsequent records are dropped).
    pub fn detach(&self) {
        CURRENT.with(|current| *current.borrow_mut() = None);
    }

    /// Captures every ring into a decodable dump, oldest records first.
    #[must_use]
    pub fn capture(&self) -> FlightDump {
        let rings = self.rings.read().unwrap_or_else(PoisonError::into_inner);
        FlightDump {
            workers: rings.iter().map(|r| r.capture()).collect(),
        }
    }

    /// Sets (or clears) the file the recorder dumps to on panic and at
    /// shutdown.
    pub fn set_dump_path(&self, path: Option<PathBuf>) {
        *self
            .dump_path
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = path;
    }

    /// The configured dump destination, if any.
    #[must_use]
    pub fn dump_path(&self) -> Option<PathBuf> {
        self.dump_path
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Captures every ring and writes the binary dump to `path`.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.capture().to_bytes())
    }

    /// Captures and writes to the configured dump path, if one is set.
    /// Returns the path written, or `None` when no path is configured.
    /// IO errors are reported, not panicked on — the recorder may be
    /// running on a panicking worker already.
    pub fn dump_now(&self) -> Option<(PathBuf, std::io::Result<()>)> {
        let path = self.dump_path()?;
        let result = self.dump_to(&path);
        Some((path, result))
    }
}

thread_local! {
    /// The ring the current thread records into, if attached.
    static CURRENT: RefCell<Option<Arc<WorkerRing>>> = const { RefCell::new(None) };
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(FlightRecorder::new)
}

/// Records into the calling thread's attached ring; a no-op on
/// unattached threads. Atomics and a thread-local borrow only — no
/// locks, no allocation.
// lint: no_alloc
pub fn record_current(kind: RecordKind, code: u16, epoch_id: u32, a: u64, b: u64) {
    CURRENT.with(|current| {
        if let Some(ring) = current.borrow().as_ref() {
            ring.record(kind, code, epoch_id, a, b);
        }
    });
}

/// `true` when the calling thread is attached to a worker ring.
/// Callers can skip tag computation when nobody is recording.
#[must_use]
pub fn attached() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_short_ascii_names() {
        assert_eq!(tag_text(tag("NR")), "NR");
        assert_eq!(tag_text(tag("Bancroft")), "Bancroft");
        // Longer names truncate to their first eight bytes.
        assert_eq!(tag_text(tag("trilateration")), "trilater");
        assert_eq!(tag(""), 0);
        assert_eq!(tag_text(0), "");
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_records() {
        let ring = WorkerRing::new(7, 16, Instant::now());
        for i in 0..40u64 {
            ring.record(RecordKind::Marker, 0, i as u32, i, 2 * i);
        }
        let timeline = ring.capture();
        assert_eq!(timeline.worker, 7);
        assert_eq!(timeline.dropped, 24, "40 written, 16 kept");
        assert_eq!(timeline.records.len(), 16);
        // Oldest first, and exactly the last 16 written.
        for (offset, rec) in timeline.records.iter().enumerate() {
            let i = 24 + offset as u64;
            assert_eq!(rec.epoch_id, i as u32);
            assert_eq!(rec.a, i);
            assert_eq!(rec.b, 2 * i);
            assert_eq!(rec.kind(), Some(RecordKind::Marker));
        }
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let ring = WorkerRing::new(0, 100, Instant::now());
        for i in 0..1000u64 {
            ring.record(RecordKind::Marker, 0, 0, i, 0);
        }
        let t = ring.capture();
        assert_eq!(t.records.len(), 128);
        assert_eq!(t.dropped, 1000 - 128);
    }

    #[test]
    fn dump_binary_round_trip_is_exact() {
        let ring_a = WorkerRing::new(0, 16, Instant::now());
        let ring_b = WorkerRing::new(3, 16, Instant::now());
        ring_a.record(RecordKind::JobStart, 0, 0, 11, 0);
        ring_a.record(RecordKind::JobPanic, 2, 0, 11, 0);
        ring_b.record(RecordKind::LaneSolve, 0, 42, tag("DLO"), 1234);
        let dump = FlightDump {
            workers: vec![ring_a.capture(), ring_b.capture()],
        };
        let bytes = dump.to_bytes();
        assert_eq!(&bytes[..8], DUMP_MAGIC);
        let back = FlightDump::from_bytes(&bytes).unwrap();
        assert_eq!(back, dump);
        assert_eq!(back.total_records(), 3);
        assert_eq!(back.total_dropped(), 0);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(FlightDump::from_bytes(b"").is_err());
        assert!(FlightDump::from_bytes(b"GPSFREC9aaaa").is_err());
        // Valid magic but truncated body.
        let mut bytes = DUMP_MAGIC.to_vec();
        bytes.extend_from_slice(&5u32.to_le_bytes());
        assert!(FlightDump::from_bytes(&bytes).is_err());
        // Trailing junk after a well-formed body.
        let dump = FlightDump::default();
        let mut bytes = dump.to_bytes();
        bytes.push(0);
        assert!(FlightDump::from_bytes(&bytes).is_err());
    }

    #[test]
    fn attach_routes_records_and_detach_stops_them() {
        let rec = FlightRecorder::new();
        assert!(rec.capture().workers.is_empty());
        let ring = rec.attach(9);
        CURRENT.with(|current| {
            if let Some(r) = current.borrow().as_ref() {
                r.record(RecordKind::Marker, 1, 2, 3, 4);
            }
        });
        assert_eq!(ring.capture().records.len(), 1);
        CURRENT.with(|current| *current.borrow_mut() = None);
        let dump = rec.capture();
        assert_eq!(dump.workers.len(), 1);
        assert_eq!(dump.workers.first().map(|w| w.worker), Some(9));
    }

    #[test]
    fn dump_now_honours_the_configured_path() {
        let rec = FlightRecorder::new();
        assert!(rec.dump_now().is_none(), "no path configured yet");
        let path = std::env::temp_dir().join(format!(
            "gps_frec_test_{}_{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        rec.set_dump_path(Some(path.clone()));
        rec.attach(0).record(RecordKind::Marker, 0, 0, 1, 2);
        rec.detach();
        let (written, result) = rec.dump_now().unwrap();
        assert_eq!(written, path);
        result.unwrap();
        let back = FlightDump::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back.total_records(), 1);
        std::fs::remove_file(&path).ok();
    }
}
