//! Event sinks and the global dispatcher that fans events out to them.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
// Poisoned locks are recovered with `PoisonError::into_inner`: a sink
// must keep accepting events after a panic on another thread, and every
// guarded structure remains valid after any partial mutation.
use std::sync::{Mutex, OnceLock, PoisonError, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::{Event, Level, Snapshot};

/// A destination for events (and, optionally, end-of-run snapshots).
pub trait Sink: Send + Sync {
    /// Handles one event that passed this sink's level filter.
    fn accept(&self, event: &Event);

    /// Writes an end-of-run metrics snapshot (default: ignored).
    fn write_snapshot(&self, _snapshot: &Snapshot) {}

    /// Flushes any buffered output (default: no-op).
    fn flush(&self) {}
}

/// Human-readable sink: one `[LEVEL target] message k=v` line per event
/// on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn accept(&self, event: &Event) {
        eprintln!("{}", event.to_human());
    }
}

/// On-disk representation of a [`FileSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFormat {
    /// One JSON object per line.
    Jsonl,
    /// `ts_us,level,target,message,fields` rows under a header.
    Csv,
}

impl std::str::FromStr for FileFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "jsonl" | "json" => Ok(FileFormat::Jsonl),
            "csv" => Ok(FileFormat::Csv),
            other => Err(format!(
                "unknown metrics format `{other}` (expected jsonl|csv)"
            )),
        }
    }
}

/// Buffered file sink writing JSONL or CSV.
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
    format: FileFormat,
}

impl std::fmt::Debug for FileSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSink")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

impl FileSink {
    /// Creates (truncating) `path` and, for CSV, writes the header row.
    pub fn create(path: &Path, format: FileFormat) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        if format == FileFormat::Csv {
            writeln!(writer, "ts_us,level,target,message,fields")?;
        }
        Ok(FileSink {
            writer: Mutex::new(writer),
            format,
        })
    }
}

impl Sink for FileSink {
    fn accept(&self, event: &Event) {
        let line = match self.format {
            FileFormat::Jsonl => event.to_json(),
            FileFormat::Csv => event.to_csv_row(),
        };
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(writer, "{line}");
    }

    fn write_snapshot(&self, snapshot: &Snapshot) {
        let body = match self.format {
            FileFormat::Jsonl => snapshot.to_jsonl(),
            FileFormat::Csv => snapshot.to_csv(),
        };
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = write!(writer, "{body}");
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
    }
}

/// Test sink that retains every accepted event in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copies out everything accepted so far.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Sink for MemorySink {
    fn accept(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// `Level` floor meaning "no sinks registered".
const FLOOR_NONE: u8 = u8::MAX;

/// Fans events out to registered sinks; holds the fast-path level floor.
pub(crate) struct Dispatcher {
    /// Minimum level any sink accepts (`FLOOR_NONE` when empty), so the
    /// disabled case is a single relaxed load.
    floor: AtomicU8,
    sinks: RwLock<Vec<(Level, Box<dyn Sink>)>>,
}

static DISPATCHER: OnceLock<Dispatcher> = OnceLock::new();

pub(crate) fn dispatcher() -> &'static Dispatcher {
    DISPATCHER.get_or_init(|| Dispatcher {
        floor: AtomicU8::new(FLOOR_NONE),
        sinks: RwLock::new(Vec::new()),
    })
}

impl Dispatcher {
    pub(crate) fn add(&self, level: Level, sink: Box<dyn Sink>) {
        let mut sinks = self.sinks.write().unwrap_or_else(PoisonError::into_inner);
        sinks.push((level, sink));
        let floor = sinks
            .iter()
            .map(|(l, _)| *l as u8)
            .min()
            .unwrap_or(FLOOR_NONE);
        self.floor.store(floor, Ordering::Relaxed);
    }

    pub(crate) fn clear(&self) {
        let mut sinks = self.sinks.write().unwrap_or_else(PoisonError::into_inner);
        for (_, sink) in sinks.iter() {
            sink.flush();
        }
        sinks.clear();
        self.floor.store(FLOOR_NONE, Ordering::Relaxed);
    }

    pub(crate) fn enabled(&self, level: Level) -> bool {
        // With no sinks the floor is FLOOR_NONE (255), above any level.
        level as u8 >= self.floor.load(Ordering::Relaxed)
    }

    pub(crate) fn dispatch(&self, mut event: Event) {
        if !self.enabled(event.level) {
            return;
        }
        event.ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        for (level, sink) in self
            .sinks
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            if event.level >= *level {
                sink.accept(&event);
            }
        }
    }

    pub(crate) fn write_snapshot(&self, snapshot: &Snapshot) {
        for (_, sink) in self
            .sinks
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            sink.write_snapshot(snapshot);
        }
    }

    pub(crate) fn flush(&self) {
        for (_, sink) in self
            .sinks
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Wraps a shared MemorySink so the test keeps a handle after
    /// registration.
    struct Shared(Arc<MemorySink>);

    impl Sink for Shared {
        fn accept(&self, event: &Event) {
            self.0.accept(event);
        }
    }

    #[test]
    fn level_filter_and_timestamps() {
        let mem = Arc::new(MemorySink::new());
        crate::clear_sinks();
        crate::add_sink(Level::Info, Box::new(Shared(Arc::clone(&mem))));
        assert!(crate::enabled(Level::Info));
        assert!(!crate::enabled(Level::Debug));

        Event::new(Level::Debug, "t", "filtered out").emit();
        Event::new(Level::Warn, "t", "kept").with("k", 1u64).emit();

        let events = mem.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "kept");
        assert!(events[0].ts_us > 0, "dispatch stamps a wall-clock time");
        crate::clear_sinks();
        assert!(!crate::enabled(Level::Error));
    }

    #[test]
    fn file_format_parses() {
        assert_eq!("jsonl".parse::<FileFormat>().unwrap(), FileFormat::Jsonl);
        assert_eq!("CSV".parse::<FileFormat>().unwrap(), FileFormat::Csv);
        assert!("yaml".parse::<FileFormat>().is_err());
    }

    #[test]
    fn file_sink_writes_lines_and_snapshot() {
        let dir = std::env::temp_dir().join("gps_telemetry_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let sink = FileSink::create(&path, FileFormat::Jsonl).unwrap();
        let mut e = Event::new(Level::Info, "t", "m").with("k", 2.5);
        e.ts_us = 42;
        sink.accept(&e);
        let reg = crate::Registry::new();
        reg.counter("c").add(3);
        sink.write_snapshot(&reg.snapshot());
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"target\":\"t\""));
        assert!(text.contains("\"type\":\"counter\""));
        std::fs::remove_file(&path).ok();
    }
}
