//! Counters, gauges, log-binned histograms, and the registry that owns
//! them.
//!
//! Handles are cheap `Arc` clones; the *record* path (`inc`, `add`,
//! `set`, `record`) touches only atomics — no locks, no heap
//! allocation — so it is safe to call from the timed interior of a
//! solver. The only allocation happens once per metric name, at
//! registration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
// Lock poisoning is deliberately shrugged off (`PoisonError::into_inner`):
// telemetry must keep working after a panic on another thread, and every
// guarded structure is valid after any partial mutation (map inserts,
// vector pushes).
use std::sync::{Arc, PoisonError, RwLock};

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    // lint: no_alloc
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    // lint: no_alloc
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge with `v`.
    // lint: no_alloc
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram bins: one underflow bin plus log₂ bins covering
/// 2⁻¹⁶ (≈ 1.5e-5) through 2⁴⁶ (≈ 7e13) — microseconds to condition
/// numbers without configuration.
const BINS: usize = 64;
/// Exponent of the first log bin's lower bound.
const MIN_EXP: i32 = -16;

#[derive(Debug)]
pub(crate) struct HistogramCore {
    count: AtomicU64,
    /// Running sum, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    bins: [AtomicU64; BINS],
}

/// A log₂-binned distribution of `f64` samples.
///
/// Exact count/sum/min/max; quantiles are approximated from the bin the
/// quantile falls in (geometric bin midpoint), good to roughly a factor
/// of √2 — plenty for "is DLO 3× or 30× faster than NR".
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Index of the bin `v` falls into. Non-positive and non-finite samples
/// land in the underflow bin 0.
fn bin_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let e = v.log2().floor() as i64;
    (e - i64::from(MIN_EXP) + 1).clamp(0, BINS as i64 - 1) as usize
}

/// Lower bound of bin `i` (bin 0 is the underflow bin).
pub(crate) fn bin_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (2.0f64).powi(MIN_EXP + i as i32 - 1)
    }
}

// lint: no_alloc
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one sample. Atomics only — no locks, no allocation.
    // lint: no_alloc
    pub fn record(&self, v: f64) {
        let core = &*self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.bins[bin_index(v)].fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&core.sum_bits, |s| s + v);
        atomic_f64_update(&core.min_bits, |m| m.min(v));
        atomic_f64_update(&core.max_bits, |m| m.max(v));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time summary of this histogram.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(core.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(core.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(core.max_bits.load(Ordering::Relaxed));
        let bins: Vec<u64> = core
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> f64 {
            let total: u64 = bins.iter().sum();
            if total == 0 {
                return f64::NAN;
            }
            let target = (q * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &b) in bins.iter().enumerate() {
                seen += b;
                if seen >= target {
                    let est = if i == 0 {
                        min
                    } else {
                        // Geometric midpoint of [2^k, 2^(k+1)).
                        bin_lower(i) * std::f64::consts::SQRT_2
                    };
                    return est.clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
        }
    }
}

/// Owns every named metric. One global instance lives behind
/// [`crate::registry`]; separate instances exist only in tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
}

fn get_or_insert<T: Clone>(
    map: &RwLock<HashMap<String, T>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> T {
    if let Some(found) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return found.clone();
    }
    map.write()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(name.to_owned())
        .or_insert_with(make)
        .clone()
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fetches (registering on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name, || {
            Counter(Arc::new(AtomicU64::new(0)))
        })
    }

    /// Fetches (registering on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name, || {
            Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        })
    }

    /// Fetches (registering on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.histograms, name, Histogram::new)
    }

    /// Summarizes every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.value(),
            })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.value(),
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_survives_a_poisoned_lock() {
        // Panic while holding the write lock (the registration closure
        // runs under it), then verify the registry still hands out
        // metrics instead of propagating the poison.
        let r = Registry::new();
        r.counter("before").inc();
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            get_or_insert::<Counter>(&r.counters, "boom", || panic!("registration failed"))
        }));
        assert!(poison.is_err());
        r.counter("after").add(2);
        assert_eq!(r.counter("before").value(), 1);
        assert_eq!(r.counter("after").value(), 2);
        assert_eq!(r.snapshot().counters.len(), 2);
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let r = Registry::new();
        let a = r.counter("c");
        let b = r.counter("c");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("c").value(), 5);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(2.5);
        r.gauge("g").set(-1.0);
        assert_eq!(r.gauge("g").value(), -1.0);
    }

    #[test]
    fn bin_index_is_monotone_and_bounded() {
        assert_eq!(bin_index(0.0), 0);
        assert_eq!(bin_index(-3.0), 0);
        assert_eq!(bin_index(f64::NAN), 0);
        // Smallest covered magnitude lands just above underflow.
        assert_eq!(bin_index(2.0f64.powi(MIN_EXP)), 1);
        // Values below the first bin lower bound clamp into the frame.
        assert!(bin_index(1e-30) <= 1);
        // Huge values clamp to the top bin.
        assert_eq!(bin_index(1e300), BINS - 1);
        let mut last = 0;
        for e in -20..60 {
            let idx = bin_index(2.0f64.powi(e) * 1.1);
            assert!(idx >= last, "bin index must be monotone in v");
            last = idx;
        }
    }

    #[test]
    fn bin_bounds_bracket_their_samples() {
        for v in [1.5e-5, 0.02, 1.0, 3.7, 1000.0, 6.1e13] {
            let i = bin_index(v);
            assert!(v >= bin_lower(i), "v {v} below bin {i} lower bound");
            if i + 1 < BINS {
                assert!(v < bin_lower(i + 1), "v {v} above bin {i} upper bound");
            }
        }
    }

    #[test]
    fn histogram_summary_statistics_are_exact() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        let s = h.snapshot("h");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean(), 4.0);
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bin() {
        let r = Registry::new();
        let h = r.histogram("h");
        // 99 samples near 1.5, one outlier at 1000: p50 ≈ 1.5 (within
        // its factor-of-√2 bin), p95 well below the outlier.
        for _ in 0..99 {
            h.record(1.5);
        }
        h.record(1000.0);
        let s = h.snapshot("h");
        assert!((1.0..4.0).contains(&s.p50), "p50 {}", s.p50);
        assert!(s.p95 < 10.0, "p95 {}", s.p95);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_well_formed() {
        let r = Registry::new();
        let s = r.histogram("h").snapshot("h");
        assert_eq!(s.count, 0);
        assert!(s.p50.is_nan());
        assert!(s.min.is_infinite());
    }
}
