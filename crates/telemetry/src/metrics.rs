//! Counters, gauges, HDR-style sub-bucketed histograms, and the
//! registry that owns them.
//!
//! Handles are cheap `Arc` clones; the *record* path (`inc`, `add`,
//! `set`, `record`) touches only atomics — no locks, no heap
//! allocation — so it is safe to call from the timed interior of a
//! solver. The only allocation happens once per metric name, at
//! registration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
// Lock poisoning is deliberately shrugged off (`PoisonError::into_inner`):
// telemetry must keep working after a panic on another thread, and every
// guarded structure is valid after any partial mutation (map inserts,
// vector pushes).
use std::sync::{Arc, PoisonError, RwLock};

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    // lint: no_alloc
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    // lint: no_alloc
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge with `v`.
    // lint: no_alloc
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// log₂ of the number of linear sub-buckets per power of two. Six bits
/// of mantissa give 64 sub-buckets, so a bucket spans at most 1/64 of
/// its lower bound and the midpoint estimate is within 1/128 ≈ 0.78 %
/// of any sample in it.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per power of two.
const SUB: usize = 1 << SUB_BITS;
/// Exponent of the first major bucket's lower bound.
const MIN_EXP: i32 = -16;
/// Exponent of the last major bucket's lower bound. The covered range
/// 2⁻¹⁶ (≈ 1.5e-5) through 2⁴⁷ (≈ 1.4e14) spans microseconds to
/// condition numbers without configuration.
const MAX_EXP: i32 = 46;
/// Major (power-of-two) buckets.
const MAJORS: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Number of histogram bins: one underflow bin plus `SUB` linear
/// sub-buckets for each major power-of-two bucket (HDR-style).
const BINS: usize = 1 + MAJORS * SUB;

#[derive(Debug)]
pub(crate) struct HistogramCore {
    count: AtomicU64,
    /// Running sum, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    bins: Box<[AtomicU64]>,
}

/// An HDR-style sub-bucketed distribution of `f64` samples.
///
/// Exact count/sum/min/max; each power of two is split into 64 linear
/// sub-buckets (the top six mantissa bits), so quantile estimates
/// (bucket midpoints) are within ~1 % relative error of the exact
/// order statistic — tight enough to report a trustworthy p999.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Index of the bin `v` falls into. Non-positive, non-finite, and
/// below-range samples land in the underflow bin 0; values above the
/// covered range clamp into the top bin.
fn bin_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    // IEEE-754 bit split: unbiased exponent selects the major bucket,
    // the top SUB_BITS mantissa bits select the linear sub-bucket.
    // Subnormals have biased exponent 0 → far below MIN_EXP → bin 0.
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp > MAX_EXP {
        return BINS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUB + sub
}

/// Lower bound of bin `i` (bin 0 is the underflow bin).
pub(crate) fn bin_lower(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let major = (i - 1) / SUB;
    let sub = (i - 1) % SUB;
    (2.0f64).powi(MIN_EXP + major as i32) * (1.0 + sub as f64 / SUB as f64)
}

// lint: no_alloc
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            bins: (0..BINS).map(|_| AtomicU64::new(0)).collect(),
        }))
    }

    /// Records one sample. Atomics only — no locks, no allocation.
    // lint: no_alloc
    pub fn record(&self, v: f64) {
        let core = &*self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.bins[bin_index(v)].fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&core.sum_bits, |s| s + v);
        atomic_f64_update(&core.min_bits, |m| m.min(v));
        atomic_f64_update(&core.max_bits, |m| m.max(v));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time summary of this histogram.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(core.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(core.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(core.max_bits.load(Ordering::Relaxed));
        let bins: Vec<u64> = core
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = bins.iter().sum();
        let quantile = |q: f64| -> f64 {
            if total == 0 {
                return f64::NAN;
            }
            let target = (q * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &b) in bins.iter().enumerate() {
                seen += b;
                if seen >= target {
                    let est = if i == 0 {
                        // Underflow bin: non-positive/non-finite samples.
                        min
                    } else if i + 1 < BINS {
                        // Linear sub-bucket midpoint: within 1/128 of
                        // every sample the bucket can hold.
                        (bin_lower(i) + bin_lower(i + 1)) / 2.0
                    } else {
                        // Top (clamping) bucket has no upper bound.
                        max
                    };
                    return est.clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p95: quantile(0.95),
            p99: quantile(0.99),
            p999: quantile(0.999),
        }
    }
}

/// Owns every named metric. One global instance lives behind
/// [`crate::registry`]; separate instances exist only in tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
}

fn get_or_insert<T: Clone>(
    map: &RwLock<HashMap<String, T>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> T {
    if let Some(found) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return found.clone();
    }
    map.write()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(name.to_owned())
        .or_insert_with(make)
        .clone()
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fetches (registering on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name, || {
            Counter(Arc::new(AtomicU64::new(0)))
        })
    }

    /// Fetches (registering on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name, || {
            Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        })
    }

    /// Fetches (registering on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.histograms, name, Histogram::new)
    }

    /// Summarizes every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.value(),
            })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.value(),
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_survives_a_poisoned_lock() {
        // Panic while holding the write lock (the registration closure
        // runs under it), then verify the registry still hands out
        // metrics instead of propagating the poison.
        let r = Registry::new();
        r.counter("before").inc();
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            get_or_insert::<Counter>(&r.counters, "boom", || panic!("registration failed"))
        }));
        assert!(poison.is_err());
        r.counter("after").add(2);
        assert_eq!(r.counter("before").value(), 1);
        assert_eq!(r.counter("after").value(), 2);
        assert_eq!(r.snapshot().counters.len(), 2);
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let r = Registry::new();
        let a = r.counter("c");
        let b = r.counter("c");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("c").value(), 5);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(2.5);
        r.gauge("g").set(-1.0);
        assert_eq!(r.gauge("g").value(), -1.0);
    }

    #[test]
    fn bin_index_is_monotone_and_bounded() {
        assert_eq!(bin_index(0.0), 0);
        assert_eq!(bin_index(-3.0), 0);
        assert_eq!(bin_index(f64::NAN), 0);
        // Smallest covered magnitude lands just above underflow.
        assert_eq!(bin_index(2.0f64.powi(MIN_EXP)), 1);
        // Values below the first bin lower bound clamp into the frame.
        assert!(bin_index(1e-30) <= 1);
        // Huge values clamp to the top bin.
        assert_eq!(bin_index(1e300), BINS - 1);
        let mut last = 0;
        for e in -20..60 {
            let idx = bin_index(2.0f64.powi(e) * 1.1);
            assert!(idx >= last, "bin index must be monotone in v");
            last = idx;
        }
    }

    #[test]
    fn bin_bounds_bracket_their_samples() {
        for v in [1.5e-5, 0.02, 1.0, 3.7, 1000.0, 6.1e13] {
            let i = bin_index(v);
            assert!(v >= bin_lower(i), "v {v} below bin {i} lower bound");
            if i + 1 < BINS {
                assert!(v < bin_lower(i + 1), "v {v} above bin {i} upper bound");
            }
        }
    }

    #[test]
    fn histogram_summary_statistics_are_exact() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        let s = h.snapshot("h");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean(), 4.0);
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bin() {
        let r = Registry::new();
        let h = r.histogram("h");
        // 99 samples near 1.5, one outlier at 1000: p50 ≈ 1.5 (within
        // its factor-of-√2 bin), p95 well below the outlier.
        for _ in 0..99 {
            h.record(1.5);
        }
        h.record(1000.0);
        let s = h.snapshot("h");
        assert!((1.0..4.0).contains(&s.p50), "p50 {}", s.p50);
        assert!(s.p95 < 10.0, "p95 {}", s.p95);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn quantiles_are_within_one_percent_of_exact() {
        // Known distribution: 20 000 uniformly spaced samples over
        // [10, 7410). The exact q-quantile under the snapshot's
        // target rule (ceil(q·n), 1-based) is samples[target - 1];
        // every sub-bucket midpoint estimate must land within 1 %.
        let r = Registry::new();
        let h = r.histogram("h");
        let n = 20_000usize;
        let samples: Vec<f64> = (0..n).map(|i| 10.0 + i as f64 * 0.37).collect();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot("h");
        for (q, est) in [
            (0.50, s.p50),
            (0.90, s.p90),
            (0.95, s.p95),
            (0.99, s.p99),
            (0.999, s.p999),
        ] {
            let target = (q * n as f64).ceil() as usize;
            let exact = samples.get(target - 1).copied().unwrap_or(f64::NAN);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 0.01,
                "p{q}: estimate {est} vs exact {exact} (rel err {rel:.4})"
            );
        }
    }

    #[test]
    fn quantiles_stay_accurate_across_decades() {
        // Log-spaced samples exercise many major buckets; the relative
        // error bound is scale-free so it must hold at every decade.
        let r = Registry::new();
        let h = r.histogram("h");
        let n = 5_000usize;
        // 1.002^i for i in 0..5000 spans [1, ~2.2e4) deterministically.
        let samples: Vec<f64> = (0..n)
            .scan(1.0f64, |acc, _| {
                let v = *acc;
                *acc *= 1.002;
                Some(v)
            })
            .collect();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot("h");
        for (q, est) in [(0.50, s.p50), (0.99, s.p99), (0.999, s.p999)] {
            let target = (q * n as f64).ceil() as usize;
            let exact = samples.get(target - 1).copied().unwrap_or(f64::NAN);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 0.01,
                "p{q}: estimate {est} vs exact {exact} (rel err {rel:.4})"
            );
        }
    }

    #[test]
    fn saturated_histogram_clamps_to_the_top_bin() {
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(1e300); // far above 2^47: lands in the clamping bin
        let s = h.snapshot("h");
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 1e300);
        assert_eq!(s.max, 1e300);
        // The top bin has no upper bound, so the estimate is the exact
        // max rather than a midpoint.
        assert_eq!(s.p50, 1e300);
        assert_eq!(s.p999, 1e300);
    }

    #[test]
    fn empty_histogram_snapshot_is_well_formed() {
        let r = Registry::new();
        let s = r.histogram("h").snapshot("h");
        assert_eq!(s.count, 0);
        assert!(s.p50.is_nan());
        assert!(s.p999.is_nan());
        assert!(s.min.is_infinite());
    }
}
