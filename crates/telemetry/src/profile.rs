//! Self-timing profiler output: folds the span tree into flamegraph
//! folded-stack text.
//!
//! Spans already record their full slash-joined path (`span.fig51/epoch/nr`)
//! into per-path histograms, so the registry *is* a sampling profile of
//! wall time by stack — all that is left is to re-encode it in the
//! folded-stack format flamegraph tooling consumes: one line per stack,
//! frames joined by `;`, followed by an integer weight. We use the
//! span's total recorded microseconds as the weight.

use crate::snapshot::Snapshot;

/// Prefix under which span histograms live in the registry.
const SPAN_PREFIX: &str = "span.";

/// One folded stack: frames root-first plus a weight in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// `;`-joined frame path, root first (e.g. `fig51;epoch;nr`).
    pub stack: String,
    /// Total wall time attributed to this exact stack, µs.
    pub total_us: u64,
    /// Number of times this stack was recorded.
    pub count: u64,
}

/// Extracts every `span.*` histogram from `snap` as a folded stack,
/// sorted by stack name. Non-span metrics are ignored.
#[must_use]
pub fn folded_stacks(snap: &Snapshot) -> Vec<FoldedStack> {
    let mut out: Vec<FoldedStack> = snap
        .histograms
        .iter()
        .filter_map(|h| {
            let path = h.name.strip_prefix(SPAN_PREFIX)?;
            Some(FoldedStack {
                stack: path.replace('/', ";"),
                total_us: h.sum.round().max(0.0) as u64,
                count: h.count,
            })
        })
        .collect();
    out.sort_by(|a, b| a.stack.cmp(&b.stack));
    out
}

/// Renders `snap`'s spans as flamegraph folded-stack text: one
/// `stack;frames weight` line per span path (weight = total µs), ready
/// for `flamegraph.pl` / `inferno-flamegraph`.
#[must_use]
pub fn render_folded(snap: &Snapshot) -> String {
    let mut out = String::new();
    for s in folded_stacks(snap) {
        out.push_str(&s.stack);
        out.push(' ');
        out.push_str(&s.total_us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSnapshot;

    fn hist(name: &str, count: u64, sum: f64) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum,
            min: 0.0,
            max: sum,
            p50: 0.0,
            p90: 0.0,
            p95: 0.0,
            p99: 0.0,
            p999: 0.0,
        }
    }

    #[test]
    fn folds_span_paths_and_ignores_other_metrics() {
        let snap = Snapshot {
            histograms: vec![
                hist("core.nr.iterations", 10, 60.0),
                hist("span.fig51", 1, 5000.4),
                hist("span.fig51/epoch", 120, 4800.0),
                hist("span.fig51/epoch/nr", 120, 1700.6),
            ],
            ..Snapshot::default()
        };
        let folded = render_folded(&snap);
        assert_eq!(
            folded,
            "fig51 5000\nfig51;epoch 4800\nfig51;epoch;nr 1701\n"
        );
        assert!(!folded.contains("core.nr"));
    }

    #[test]
    fn empty_snapshot_folds_to_nothing() {
        assert!(render_folded(&Snapshot::default()).is_empty());
        assert!(folded_stacks(&Snapshot::default()).is_empty());
    }
}
