//! Minimal hand-rolled JSON encoding (this crate has no serde).
//!
//! Only what the sinks and snapshots need: escaped strings and f64
//! numbers. Rust's shortest round-trip float formatting (`{}`) is valid
//! JSON for finite values; non-finite values become `null` since JSON
//! has no representation for them.

/// Appends `v` as a JSON number, or `null` if it is not finite.
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Integral-valued floats print as e.g. `3`, which JSON accepts.
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub(crate) fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn string_of(s: &str) -> String {
        let mut out = String::new();
        write_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string_of("plain"), "\"plain\"");
        assert_eq!(string_of("a\"b"), "\"a\\\"b\"");
        assert_eq!(string_of("a\\b"), "\"a\\\\b\"");
        assert_eq!(string_of("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string_of("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        let mut out = String::new();
        write_f64(&mut out, 0.1);
        assert_eq!(out.parse::<f64>().unwrap(), 0.1);
        out.clear();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
