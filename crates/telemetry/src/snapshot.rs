//! Point-in-time summaries of the metrics registry, serializable to a
//! human table, JSONL, or CSV (and parseable back from CSV).

use crate::json;

/// Header row of [`Snapshot::to_csv`].
const CSV_HEADER: &str = "kind,name,value,count,sum,min,max,p50,p90,p95,p99,p999";
/// Cells per CSV row (the header's column count).
const CSV_CELLS: usize = 12;

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// Median estimate (sub-bucket midpoint, ≤ ~1 % relative error;
    /// `NaN` when empty).
    pub p50: f64,
    /// 90th-percentile estimate (`NaN` when empty).
    pub p90: f64,
    /// 95th-percentile estimate (`NaN` when empty).
    pub p95: f64,
    /// 99th-percentile estimate (`NaN` when empty).
    pub p99: f64,
    /// 99.9th-percentile estimate (`NaN` when empty).
    pub p999: f64,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded samples (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything in the registry at one instant, each section sorted by
/// name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// `true` if no metric was ever registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders an aligned, human-readable summary table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<44} {:>12}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<44} {:>12.6}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "histograms:\n  {:<44} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "count", "mean", "min", "p50", "p95", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}\n",
                    h.name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// One `{"type":"metric",...}` JSON object per line (with trailing
    /// newline), ready to append to a JSONL event stream.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::write_string(&mut out, &c.name);
            out.push_str(",\"value\":");
            out.push_str(&c.value.to_string());
            out.push_str("}\n");
        }
        for g in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            json::write_string(&mut out, &g.name);
            out.push_str(",\"value\":");
            json::write_f64(&mut out, g.value);
            out.push_str("}\n");
        }
        for h in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            json::write_string(&mut out, &h.name);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            for (key, v) in [
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("p50", h.p50),
                ("p90", h.p90),
                ("p95", h.p95),
                ("p99", h.p99),
                ("p999", h.p999),
            ] {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                json::write_f64(&mut out, v);
            }
            out.push_str("}\n");
        }
        out
    }

    /// CSV with a header row. Floats use Rust's shortest round-trip
    /// formatting, so [`Snapshot::from_csv`] reproduces this snapshot
    /// exactly. A never-recorded histogram writes *empty* stat cells
    /// (rather than `NaN`/`inf` text that poisons downstream parsers);
    /// `from_csv` restores the empty-histogram sentinels from them.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for c in &self.counters {
            out.push_str(&format!("counter,{},{},,,,,,,,,\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("gauge,{},{},,,,,,,,,\n", g.name, g.value));
        }
        for h in &self.histograms {
            if h.count == 0 {
                out.push_str(&format!("histogram,{},,0,{},,,,,,,\n", h.name, h.sum));
            } else {
                out.push_str(&format!(
                    "histogram,{},,{},{},{},{},{},{},{},{},{}\n",
                    h.name, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p95, h.p99, h.p999
                ));
            }
        }
        out
    }

    /// Parses the output of [`Snapshot::to_csv`].
    pub fn from_csv(text: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty snapshot CSV")?;
        if header != CSV_HEADER {
            return Err(format!("unexpected snapshot CSV header `{header}`"));
        }
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != CSV_CELLS {
                return Err(format!(
                    "line {}: expected {CSV_CELLS} cells, got {}",
                    lineno + 2,
                    cells.len()
                ));
            }
            let cell = |i: usize| -> &str { cells.get(i).copied().unwrap_or("") };
            let f = |i: usize| -> Result<f64, String> {
                cell(i)
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: {e}", lineno + 2))
            };
            // Empty stat cells are the empty-histogram encoding; map
            // them back to the documented in-memory sentinels.
            let f_or = |i: usize, empty: f64| -> Result<f64, String> {
                if cell(i).is_empty() {
                    Ok(empty)
                } else {
                    f(i)
                }
            };
            match cell(0) {
                "counter" => snap.counters.push(CounterSnapshot {
                    name: cell(1).to_owned(),
                    value: cell(2)
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 2))?,
                }),
                "gauge" => snap.gauges.push(GaugeSnapshot {
                    name: cell(1).to_owned(),
                    value: f(2)?,
                }),
                "histogram" => snap.histograms.push(HistogramSnapshot {
                    name: cell(1).to_owned(),
                    count: cell(3)
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 2))?,
                    sum: f(4)?,
                    min: f_or(5, f64::INFINITY)?,
                    max: f_or(6, f64::NEG_INFINITY)?,
                    p50: f_or(7, f64::NAN)?,
                    p90: f_or(8, f64::NAN)?,
                    p95: f_or(9, f64::NAN)?,
                    p99: f_or(10, f64::NAN)?,
                    p999: f_or(11, f64::NAN)?,
                }),
                other => return Err(format!("line {}: unknown kind `{other}`", lineno + 2)),
            }
        }
        Ok(snap)
    }

    /// Forwards this snapshot to every registered sink (file sinks
    /// append it in their own format; the stderr sink ignores it).
    pub fn write_to_sinks(&self) {
        crate::sink::dispatcher().write_snapshot(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated() -> Snapshot {
        let r = Registry::new();
        r.counter("runs").add(12);
        r.gauge("theta").set(0.3125);
        let h = r.histogram("solve_us");
        for v in [1.25, 2.5, 40.0] {
            h.record(v);
        }
        r.histogram("empty"); // registered, never recorded
        r.snapshot()
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let snap = populated();
        let back = Snapshot::from_csv(&snap.to_csv()).unwrap();
        // NaN != NaN, so compare the empty histogram separately.
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms.len(), snap.histograms.len());
        for (a, b) in back.histograms.iter().zip(&snap.histograms) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.count, b.count);
            assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            assert_eq!(a.min.to_bits(), b.min.to_bits());
            assert_eq!(a.max.to_bits(), b.max.to_bits());
            assert_eq!(a.p50.to_bits(), b.p50.to_bits());
            assert_eq!(a.p90.to_bits(), b.p90.to_bits());
            assert_eq!(a.p95.to_bits(), b.p95.to_bits());
            assert_eq!(a.p99.to_bits(), b.p99.to_bits());
            assert_eq!(a.p999.to_bits(), b.p999.to_bits());
        }
    }

    #[test]
    fn one_sample_and_saturated_histograms_round_trip() {
        let r = Registry::new();
        r.histogram("one").record(42.5);
        r.histogram("saturated").record(1e300); // top clamping bin
        let snap = r.snapshot();
        let back = Snapshot::from_csv(&snap.to_csv()).unwrap();
        assert_eq!(back.histograms, snap.histograms);
        let one = back.histograms.iter().find(|h| h.name == "one").unwrap();
        assert_eq!(one.count, 1);
        assert_eq!(one.min, 42.5);
        assert_eq!(one.max, 42.5);
        // A single sample pins every quantile to it exactly (clamped).
        assert_eq!(one.p50, 42.5);
        assert_eq!(one.p999, 42.5);
        let sat = back
            .histograms
            .iter()
            .find(|h| h.name == "saturated")
            .unwrap();
        assert_eq!(sat.p999, 1e300);
    }

    #[test]
    fn empty_histogram_writes_empty_cells_not_nan() {
        // Regression: NaN/±inf text in the CSV poisoned downstream
        // parsers; an empty histogram must emit empty stat cells.
        let snap = populated();
        let row = snap
            .to_csv()
            .lines()
            .find(|l| l.starts_with("histogram,empty,"))
            .map(str::to_owned)
            .unwrap();
        assert_eq!(row, "histogram,empty,,0,0,,,,,,,");
        assert!(!snap.to_csv().contains("NaN"), "{}", snap.to_csv());
        assert!(!snap.to_csv().contains("inf"), "{}", snap.to_csv());
        // And the empty cells restore the in-memory sentinels.
        let back = Snapshot::from_csv(&snap.to_csv()).unwrap();
        let empty = back.histograms.iter().find(|h| h.name == "empty").unwrap();
        assert_eq!(empty.count, 0);
        assert!(empty.min.is_infinite() && empty.min > 0.0);
        assert!(empty.max.is_infinite() && empty.max < 0.0);
        assert!(empty.p50.is_nan() && empty.p999.is_nan());
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(Snapshot::from_csv("").is_err());
        assert!(Snapshot::from_csv("bogus,header\n").is_err());
        let bad_kind = format!("{CSV_HEADER}\nwidget,x,,,,,,,,,,\n");
        assert!(Snapshot::from_csv(&bad_kind).is_err());
        let short_row = format!("{CSV_HEADER}\nhistogram,x,,0,0\n");
        assert!(Snapshot::from_csv(&short_row).is_err());
    }

    #[test]
    fn jsonl_emits_one_object_per_metric() {
        let snap = populated();
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("{\"type\":\"counter\",\"name\":\"runs\",\"value\":12}"));
        // The never-recorded histogram has ±inf min/max and NaN
        // quantiles → explicit JSON nulls, never bare NaN text.
        assert!(jsonl.contains("\"name\":\"empty\",\"count\":0,\"sum\":0,\"min\":null"));
        let empty_line = jsonl
            .lines()
            .find(|l| l.contains("\"name\":\"empty\""))
            .unwrap();
        for key in ["max", "p50", "p90", "p95", "p99", "p999"] {
            assert!(
                empty_line.contains(&format!("\"{key}\":null")),
                "{empty_line}"
            );
        }
        assert!(!jsonl.contains("NaN"), "{jsonl}");
    }

    #[test]
    fn table_mentions_every_metric() {
        let table = populated().render_table();
        for name in ["runs", "theta", "solve_us", "empty"] {
            assert!(table.contains(name), "table missing {name}:\n{table}");
        }
        assert!(Snapshot::default()
            .render_table()
            .contains("no metrics recorded"));
    }
}
