//! Zero-dependency structured tracing and metrics for the GPS solver
//! pipeline.
//!
//! The paper's evaluation (§5) is entirely about *observing* solver
//! behavior — execution-time rate θ (eq. 5-3) and accuracy rate η
//! (eq. 5-2) — and this crate makes the inside of a run visible without
//! pulling in `tracing`, `metrics`, or `serde` (the build is fully
//! offline). Four pieces:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) in a global
//!   [`Registry`]. Handles are `Arc`s obtained once (amortized; cache
//!   them in a `OnceLock` on hot paths); recording is a handful of
//!   atomic operations with **no heap allocation**, cheap enough for
//!   per-epoch and per-solve call sites. Histograms are HDR-style
//!   sub-bucketed: 64 linear sub-buckets per power of two, so
//!   p50/p90/p95/p99/p999 estimates carry ≤ ~1 % relative error.
//! * **Spans** ([`span`]) — monotonic timers on a thread-local stack,
//!   so nested solver stages produce `span.epoch/nr`-style histograms
//!   and (at `Debug` level) duration events. [`profile::render_folded`]
//!   re-encodes the span histograms as flamegraph folded-stack text.
//! * **Flight recorder** ([`recorder`]) — per-worker binary ring
//!   buffers of packed fixed-width records (span enter/exit, job
//!   lifecycle, lane outcomes), drained on demand, on job panic, and
//!   at shutdown into a dump `gps-repro inspect` decodes.
//! * **Events** ([`Event`]) — structured records with a severity
//!   [`Level`], a target, a message, and typed fields, fanned out to
//!   pluggable [`Sink`]s: a human-readable [`StderrSink`] and a
//!   hand-rolled JSONL/CSV [`FileSink`].
//! * **Snapshots** ([`Snapshot`]) — a serializable end-of-run summary
//!   of the whole registry (table / JSONL / CSV).
//!
//! ```
//! use gps_telemetry as telemetry;
//!
//! let solves = telemetry::counter("docs.solves");
//! let residual = telemetry::histogram("docs.residual_m");
//! {
//!     let _epoch = telemetry::span("epoch");
//!     solves.inc();
//!     residual.record(0.42);
//! }
//! let snap = telemetry::snapshot();
//! assert!(snap.counters.iter().any(|c| c.name == "docs.solves"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod event;
pub mod journal;
mod json;
mod level;
mod metrics;
pub mod profile;
pub mod recorder;
mod sink;
mod snapshot;
mod span;
mod value;

pub use event::Event;
pub use journal::{fnv1a_words, JournalReader, JournalWriter, JOURNAL_MAGIC};
pub use level::Level;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use profile::{folded_stacks, render_folded, FoldedStack};
pub use recorder::{recorder, FlightDump, FlightRecord, FlightRecorder, RecordKind, WorkerRing};
pub use sink::{FileFormat, FileSink, MemorySink, Sink, StderrSink};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};
pub use span::{span, SpanGuard};
pub use value::Value;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static DETAIL: AtomicBool = AtomicBool::new(false);

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Fetches (registering on first use) the named counter from the global
/// registry.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Fetches (registering on first use) the named gauge from the global
/// registry.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Fetches (registering on first use) the named histogram from the
/// global registry.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// Captures a point-in-time summary of every metric in the global
/// registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Registers a sink; events at `level` and above are delivered to it.
pub fn add_sink(level: Level, sink: Box<dyn Sink>) {
    sink::dispatcher().add(level, sink);
}

/// Removes every registered sink (flushing first). Used when
/// re-configuring and by tests.
pub fn clear_sinks() {
    sink::dispatcher().clear();
}

/// `true` if at least one sink would receive an event at `level`.
///
/// Check this before assembling expensive event fields.
pub fn enabled(level: Level) -> bool {
    sink::dispatcher().enabled(level)
}

/// Flushes every registered sink (call before process exit so buffered
/// JSONL/CSV lines reach disk).
pub fn flush() {
    sink::dispatcher().flush();
}

/// Turns detailed (per-solve) instrumentation on or off.
///
/// Hot paths that would otherwise pay real computation for telemetry —
/// design-matrix condition numbers, covariance-assembly timing — check
/// this flag (one relaxed atomic load) and skip the work when it is
/// off, so timing experiments stay undistorted by default.
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Relaxed);
}

/// Whether detailed (per-solve) instrumentation is enabled.
pub fn detail() -> bool {
    DETAIL.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_cumulative() {
        let a = counter("lib.shared");
        let b = counter("lib.shared");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
    }

    #[test]
    fn detail_flag_toggles() {
        assert!(!detail() || detail()); // whatever other tests left behind
        set_detail(true);
        assert!(detail());
        set_detail(false);
        assert!(!detail());
    }

    #[test]
    fn snapshot_sees_registered_metrics() {
        counter("lib.snap.counter").add(7);
        gauge("lib.snap.gauge").set(1.5);
        histogram("lib.snap.hist").record(3.0);
        let snap = snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .find(|c| c.name == "lib.snap.counter")
                .unwrap()
                .value,
            7
        );
        assert_eq!(
            snap.gauges
                .iter()
                .find(|g| g.name == "lib.snap.gauge")
                .unwrap()
                .value,
            1.5
        );
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "lib.snap.hist")
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.min, 3.0);
    }
}
