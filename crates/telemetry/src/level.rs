//! Event severity levels.

use std::fmt;
use std::str::FromStr;

/// Severity of an [`Event`](crate::Event), ordered `Trace < Debug <
/// Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Per-iteration detail (NR step residuals, span interiors).
    Trace = 0,
    /// Per-epoch / per-solve detail (spans, condition numbers).
    Debug = 1,
    /// Run-level progress (dataset generated, experiment finished).
    Info = 2,
    /// Degraded but recoverable behavior (non-convergence, RAIM
    /// exclusion).
    Warn = 3,
    /// Failures the caller will see as an error result.
    Error = 4,
}

impl Level {
    /// All levels, ascending.
    pub const ALL: [Level; 5] = [
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// Upper-case fixed-width name (for the human-readable sink).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    /// Lower-case name (for JSONL/CSV serialization).
    #[must_use]
    pub fn as_lower_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Ok(Level::Trace),
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" | "warning" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(format!(
                "unknown log level `{other}` (expected trace|debug|info|warn|error)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_ascending_severity() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn parses_case_insensitively() {
        assert_eq!("INFO".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn round_trips_through_lower_name() {
        for l in Level::ALL {
            assert_eq!(l.as_lower_str().parse::<Level>().unwrap(), l);
        }
    }
}
