//! Typed event field values.

use std::borrow::Cow;
use std::fmt;

/// A typed field value attached to an [`Event`](crate::Event).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Cow<'static, str>),
}

impl Value {
    /// Appends the JSON encoding of this value to `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) => crate::json::write_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => crate::json::write_string(out, s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_kind() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-2i32), Value::I64(-2));
        assert_eq!(Value::from(0.5f64), Value::F64(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str(Cow::Borrowed("x")));
    }

    #[test]
    fn json_encoding_matches_type() {
        let mut out = String::new();
        Value::from(7u64).write_json(&mut out);
        out.push(' ');
        Value::from("a\"b").write_json(&mut out);
        out.push(' ');
        Value::from(false).write_json(&mut out);
        assert_eq!(out, "7 \"a\\\"b\" false");
    }
}
