//! Structured events and the builder for emitting them.

use std::borrow::Cow;

use crate::{Level, Value};

/// One structured log record: severity, a dotted target naming the
/// subsystem (`core.nr`, `sim.runner`), a human message, and typed
/// key/value fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Dotted subsystem path, e.g. `core.dlg`.
    pub target: Cow<'static, str>,
    /// Short human-readable description.
    pub message: Cow<'static, str>,
    /// Typed fields, in insertion order.
    pub fields: Vec<(Cow<'static, str>, Value)>,
    /// Microseconds since the Unix epoch, stamped at dispatch.
    pub ts_us: u64,
}

impl Event {
    /// Starts building an event.
    pub fn new(
        level: Level,
        target: impl Into<Cow<'static, str>>,
        message: impl Into<Cow<'static, str>>,
    ) -> Self {
        Event {
            level,
            target: target.into(),
            message: message.into(),
            fields: Vec::new(),
            ts_us: 0,
        }
    }

    /// Attaches a typed field.
    #[must_use]
    pub fn with(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Sends the event to every sink registered at this level or below.
    ///
    /// Cheap when nothing is listening, but the builder itself
    /// allocates; guard hot paths with [`crate::enabled`] first.
    pub fn emit(self) {
        crate::sink::dispatcher().dispatch(self);
    }

    /// The event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_lower_str());
        out.push_str("\",\"target\":");
        crate::json::write_string(&mut out, &self.target);
        out.push_str(",\"message\":");
        crate::json::write_string(&mut out, &self.message);
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::json::write_string(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// The event as one CSV row: `ts_us,level,target,message,fields`
    /// with `k=v;k=v` packed fields (no trailing newline).
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        let mut fields = String::new();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                fields.push(';');
            }
            fields.push_str(k);
            fields.push('=');
            fields.push_str(&v.to_string());
        }
        format!(
            "{},{},{},{},{}",
            self.ts_us,
            self.level.as_lower_str(),
            csv_escape(&self.target),
            csv_escape(&self.message),
            csv_escape(&fields),
        )
    }

    /// The event as a human-readable line (the stderr sink format).
    #[must_use]
    pub fn to_human(&self) -> String {
        let mut out = format!(
            "[{:5} {}] {}",
            self.level.as_str(),
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

/// Quotes a CSV cell if it contains a comma, quote, or newline.
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        let mut e = Event::new(Level::Warn, "core.raim", "excluded satellite")
            .with("sat", 17u64)
            .with("residual_m", 42.5)
            .with("note", "w-test \"peak\"");
        e.ts_us = 1_700_000_000_000_000;
        e
    }

    #[test]
    fn json_shape_is_stable() {
        assert_eq!(
            sample().to_json(),
            "{\"ts_us\":1700000000000000,\"level\":\"warn\",\"target\":\"core.raim\",\
             \"message\":\"excluded satellite\",\"fields\":{\"sat\":17,\
             \"residual_m\":42.5,\"note\":\"w-test \\\"peak\\\"\"}}"
        );
    }

    #[test]
    fn csv_row_escapes_embedded_quotes() {
        let row = sample().to_csv_row();
        assert!(row.starts_with("1700000000000000,warn,core.raim,excluded satellite,"));
        assert!(row.contains("\"sat=17;residual_m=42.5;note=w-test \"\"peak\"\"\""));
    }

    #[test]
    fn human_line_lists_fields_in_order() {
        assert_eq!(
            sample().to_human(),
            "[WARN  core.raim] excluded satellite sat=17 residual_m=42.5 note=w-test \"peak\""
        );
    }
}
