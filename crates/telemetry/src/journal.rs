//! Crash-safe append-only binary journal (`GPSJRNL1`).
//!
//! The positioning service journals every epoch it processes so that a
//! killed process can rebuild its per-receiver session state by
//! replaying the log. The format follows the flight recorder's packing
//! discipline (little-endian `u64` words, fixed framing, no
//! variable-length text), but where the recorder is a lossy ring, the
//! journal is a durable stream with explicit torn-write recovery:
//!
//! ```text
//! file   := magic            8 bytes  b"GPSJRNL1"
//!           record*
//! record := len              u64   payload length in words
//!           seq              u64   record sequence number (0-based)
//!           payload          len × u64
//!           checksum         u64   FNV-1a over len, seq and payload
//! ```
//!
//! * **Append-only, fsync-batched.** [`JournalWriter::append`] writes
//!   the framed record immediately (so an OS-level crash loses at most
//!   the page cache) and issues `sync_data` every `fsync_every`
//!   records, amortizing durability cost across the batch.
//! * **Torn writes cannot poison a replay.** [`JournalReader`] walks
//!   the frames in one pass over a single read buffer (no per-record
//!   copies) and stops cleanly at the first incomplete or
//!   checksum-corrupt record — a process killed mid-`append` costs the
//!   tail record, never a panic and never a misparse of the bytes that
//!   follow.
//! * **Self-verifying.** The sequence word must increase by exactly one
//!   per record, so a seek into the middle of an unrelated file cannot
//!   masquerade as a valid journal suffix.
//!
//! ```
//! use gps_telemetry::journal::{JournalReader, JournalWriter};
//!
//! let path = std::env::temp_dir().join(format!("jrnl_doc_{}.bin", std::process::id()));
//! let mut w = JournalWriter::create(&path, 8).unwrap();
//! w.append(&[1, 2, 3]).unwrap();
//! w.append(&[4]).unwrap();
//! drop(w);
//! let read = JournalReader::open(&path).unwrap();
//! assert_eq!(read.records().len(), 2);
//! assert_eq!(read.records()[1], vec![4]);
//! assert!(!read.truncated());
//! std::fs::remove_file(&path).ok();
//! ```

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File magic of a version-1 journal.
pub const JOURNAL_MAGIC: &[u8; 8] = b"GPSJRNL1";

/// Largest accepted payload, in words — a plausibility bound so a
/// corrupt length word cannot make the reader attempt a giant slice.
const MAX_RECORD_WORDS: u64 = 1 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a word stream; the journal's frame checksum and the
/// digest primitive service sessions chain their outcomes with.
#[must_use]
pub fn fnv1a_words(seed: u64, words: &[u64]) -> u64 {
    let mut hash = if seed == 0 { FNV_OFFSET } else { seed };
    for w in words {
        for shift in (0..64).step_by(8) {
            hash ^= (w >> shift) & 0xff;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

fn frame_checksum(len: u64, seq: u64, payload: &[u64]) -> u64 {
    fnv1a_words(fnv1a_words(0, &[len, seq]), payload)
}

/// Appends framed records to a journal file with batched fsync.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    fsync_every: usize,
    unsynced: usize,
    bytes_written: u64,
    scratch: Vec<u8>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path`, writing the magic
    /// header. `fsync_every` is the durability batch: a `sync_data`
    /// is issued after every that-many appended records (clamped ≥ 1).
    ///
    /// # Errors
    ///
    /// Propagates file creation / header write errors.
    pub fn create(path: &Path, fsync_every: usize) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            seq: 0,
            fsync_every: fsync_every.max(1),
            unsynced: 0,
            bytes_written: JOURNAL_MAGIC.len() as u64,
            scratch: Vec::new(),
        })
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.seq
    }

    /// Bytes written so far (header included).
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Appends one record. The frame (length, sequence, payload,
    /// checksum) reaches the OS before this returns; it reaches the
    /// disk at the next fsync batch boundary or [`JournalWriter::sync`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying write / sync error; the journal is
    /// unusable for further appends after an error (the tail may be
    /// torn, which the reader tolerates).
    // lint: wire_format
    pub fn append(&mut self, payload: &[u64]) -> io::Result<()> {
        let len = payload.len() as u64;
        let seq = self.seq;
        let checksum = frame_checksum(len, seq, payload);
        self.scratch.clear();
        self.scratch
            .reserve(payload.len().saturating_add(3).saturating_mul(8));
        self.scratch.extend_from_slice(&len.to_le_bytes());
        self.scratch.extend_from_slice(&seq.to_le_bytes());
        for w in payload {
            self.scratch.extend_from_slice(&w.to_le_bytes());
        }
        self.scratch.extend_from_slice(&checksum.to_le_bytes());
        self.file.write_all(&self.scratch)?;
        self.bytes_written += self.scratch.len() as u64;
        self.seq += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Forces the outstanding batch to disk.
    ///
    /// # Errors
    ///
    /// Propagates the `sync_data` error.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

/// A decoded journal: every complete record, plus whether the file
/// ended in a torn (incomplete or corrupt) tail.
#[derive(Debug, Clone)]
pub struct JournalReader {
    records: Vec<Vec<u64>>,
    truncated: bool,
    bytes_read: u64,
}

impl JournalReader {
    /// Reads and verifies a journal file in one pass.
    ///
    /// Decoding stops cleanly at the first incomplete frame, checksum
    /// mismatch or out-of-order sequence number — everything before
    /// that point is returned and [`JournalReader::truncated`] reports
    /// that a tail was dropped. A torn write therefore costs exactly
    /// the records it tore, never the journal.
    ///
    /// # Errors
    ///
    /// Returns an error only for IO failures or a missing/forged magic
    /// header; tail corruption is *not* an error.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Like [`JournalReader::open`] over an in-memory image.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the magic header is absent.
    // lint: wire_format
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        if bytes.get(..JOURNAL_MAGIC.len()) != Some(JOURNAL_MAGIC.as_slice()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a GPSJRNL1 journal (bad magic)",
            ));
        }
        let mut cursor = JOURNAL_MAGIC.len();
        let word = |at: usize| -> Option<u64> {
            let end = at.checked_add(8)?;
            let chunk = bytes.get(at..end)?;
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            Some(u64::from_le_bytes(le))
        };
        let mut records = Vec::new();
        let mut truncated = false;
        let mut expect_seq = 0u64;
        while cursor < bytes.len() {
            let frame = (|| {
                let len = word(cursor)?;
                if len > MAX_RECORD_WORDS {
                    return None;
                }
                let seq = word(cursor.checked_add(8)?)?;
                if seq != expect_seq {
                    return None;
                }
                let words = len as usize;
                let mut payload = Vec::with_capacity(words);
                // Checked cursor walk: `at` steps one word at a time,
                // so a hostile length can never wrap the arithmetic.
                let mut at = cursor.checked_add(16)?;
                for _ in 0..words {
                    payload.push(word(at)?);
                    at = at.checked_add(8)?;
                }
                let checksum = word(at)?;
                if checksum != frame_checksum(len, seq, &payload) {
                    return None;
                }
                let advance = at.checked_add(8)?.checked_sub(cursor)?;
                Some((payload, advance))
            })();
            match frame {
                Some((payload, advance)) => {
                    records.push(payload);
                    cursor += advance;
                    expect_seq += 1;
                }
                None => {
                    // Torn or corrupt tail: stop at the last complete
                    // record rather than guessing at resynchronization.
                    truncated = true;
                    break;
                }
            }
        }
        Ok(JournalReader {
            records,
            truncated,
            bytes_read: cursor as u64,
        })
    }

    /// The complete records, in append order.
    #[must_use]
    pub fn records(&self) -> &[Vec<u64>] {
        &self.records
    }

    /// Whether a torn/corrupt tail was dropped during decoding.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Bytes consumed before decoding stopped (header included).
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gps_journal_{name}_{}.bin", std::process::id()))
    }

    fn write_sample(path: &Path, records: usize) -> u64 {
        let mut w = JournalWriter::create(path, 4).expect("create");
        for i in 0..records {
            let i = i as u64;
            w.append(&[i, i * 10, i * 100]).expect("append");
        }
        w.sync().expect("sync");
        w.bytes_written()
    }

    #[test]
    fn round_trips_records_in_order() {
        let path = temp("roundtrip");
        write_sample(&path, 17);
        let r = JournalReader::open(&path).expect("open");
        assert_eq!(r.records().len(), 17);
        assert!(!r.truncated());
        for (i, rec) in r.records().iter().enumerate() {
            let i = i as u64;
            assert_eq!(rec, &vec![i, i * 10, i * 100]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_journal_is_valid() {
        let path = temp("empty");
        drop(JournalWriter::create(&path, 1).expect("create"));
        let r = JournalReader::open(&path).expect("open");
        assert!(r.records().is_empty());
        assert!(!r.truncated());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_an_error() {
        assert!(JournalReader::from_bytes(b"NOTAJRNL....").is_err());
        assert!(JournalReader::from_bytes(b"").is_err());
    }

    #[test]
    fn truncation_at_every_byte_boundary_stops_cleanly() {
        // The torn-write contract, exhaustively: chop the file after
        // every possible byte count; decoding must never error, never
        // panic, and must return only records whose frames are intact.
        let path = temp("torn");
        let total = write_sample(&path, 6);
        let full = std::fs::read(&path).expect("read");
        assert_eq!(full.len() as u64, total);
        let intact = JournalReader::from_bytes(&full).expect("full decode");
        assert_eq!(intact.records().len(), 6);
        for cut in 0..full.len() {
            let Ok(r) = JournalReader::from_bytes(&full[..cut]) else {
                // Only header-less prefixes may error.
                assert!(cut < JOURNAL_MAGIC.len(), "cut {cut} errored past magic");
                continue;
            };
            assert!(r.records().len() <= 6);
            for (i, rec) in r.records().iter().enumerate() {
                assert_eq!(rec, &intact.records()[i], "cut {cut} record {i}");
            }
            // A cut exactly on a frame boundary yields a valid shorter
            // journal; anywhere else the torn tail must be reported.
            let frame_boundary = cut >= 8 && (cut - 8) % 48 == 0;
            if r.records().len() < 6 && !frame_boundary {
                assert!(r.truncated(), "cut {cut}: dropped tail not reported");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_byte_drops_the_tail() {
        let path = temp("corrupt");
        write_sample(&path, 5);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one byte inside record 2's payload (file header 8 + two
        // full 48-byte frames + frame header 16 + 3 bytes in).
        let offset = 8 + 2 * 48 + 16 + 3;
        bytes[offset] ^= 0xff;
        let r = JournalReader::from_bytes(&bytes).expect("decode");
        assert_eq!(r.records().len(), 2, "records before the corruption");
        assert!(r.truncated());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequence_discontinuity_is_rejected() {
        // Splice record 0's frame after itself: duplicated seq 0 must
        // terminate decoding rather than double-count.
        let path = temp("seq");
        write_sample(&path, 2);
        let bytes = std::fs::read(&path).expect("read");
        let frame0 = bytes[8..56].to_vec();
        let mut spliced = bytes[..56].to_vec();
        spliced.extend_from_slice(&frame0);
        let r = JournalReader::from_bytes(&spliced).expect("decode");
        assert_eq!(r.records().len(), 1);
        assert!(r.truncated());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        let a = fnv1a_words(0, &[1, 2, 3]);
        let b = fnv1a_words(0, &[3, 2, 1]);
        assert_ne!(a, b);
        // Chaining equals one-shot over the concatenation.
        let chained = fnv1a_words(fnv1a_words(0, &[1, 2]), &[3]);
        assert_eq!(chained, a);
    }

    #[test]
    fn writer_reports_byte_and_record_counts() {
        let path = temp("counts");
        let mut w = JournalWriter::create(&path, 100).expect("create");
        assert_eq!(w.records(), 0);
        w.append(&[7; 4]).expect("append");
        assert_eq!(w.records(), 1);
        // 8 magic + (8 len + 8 seq + 32 payload + 8 checksum).
        assert_eq!(w.bytes_written(), 8 + 56);
        w.sync().expect("sync");
        std::fs::remove_file(&path).ok();
    }
}
