//! The file-walking driver: discover workspace sources, run rules,
//! apply the allowlist, assemble the [`Report`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::allowlist::Allowlist;
use crate::file::FileView;
use crate::findings::{Finding, Report};
use crate::graph::{self, Workspace};
use crate::lexer;
use crate::rules::{self, Rule};

/// Driver configuration, normally built from CLI arguments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root: the directory holding `crates/`, `docs/` and
    /// `lint.allow`.
    pub root: PathBuf,
    /// Run only these rule ids; empty means all.
    pub rule_filter: Vec<String>,
    /// Allowlist path; defaults to `<root>/lint.allow`.
    pub allowlist: Option<PathBuf>,
}

impl Options {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Options {
            root: root.into(),
            rule_filter: Vec::new(),
            allowlist: None,
        }
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// One discovered source file: crate name (empty outside `crates/`),
/// path, and whether the whole file is test/example code.
struct Source {
    krate: String,
    path: PathBuf,
    is_test: bool,
}

/// Every workspace source under `root`, in stable order:
/// `crates/<name>/src/**/*.rs` (library code), then the root binary's
/// `src/**`, then `tests/**` and `examples/**` (whole-file test code —
/// the panic_freedom exemption applies throughout). Crate-level
/// `crates/*/tests` trees are deliberately *not* walked: the lint
/// crate's own fixture trees live there and must only be linted when a
/// fixture root is passed explicitly.
fn workspace_sources(root: &Path) -> Vec<Source> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("src").is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let mut files = Vec::new();
            rust_files(&dir.join("src"), &mut files);
            for f in files {
                out.push(Source {
                    krate: name.clone(),
                    path: f,
                    is_test: false,
                });
            }
        }
    }
    for (dir, is_test) in [("src", false), ("tests", true), ("examples", true)] {
        let mut files = Vec::new();
        rust_files(&root.join(dir), &mut files);
        for f in files {
            out.push(Source {
                krate: String::new(),
                path: f,
                is_test,
            });
        }
    }
    out
}

/// Workspace-relative path with forward slashes.
fn relativize(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run the lint pass. `Err` is reserved for unusable configuration
/// (unknown rule id, unreadable root); findings are data, not errors.
pub fn run(opts: &Options) -> Result<Report, String> {
    let known = rules::ids();
    for id in &opts.rule_filter {
        if !known.contains(&id.as_str()) {
            return Err(format!("unknown rule `{id}` (known: {})", known.join(", ")));
        }
    }
    let mut active: Vec<Box<dyn Rule>> = rules::all()
        .into_iter()
        .filter(|r| opts.rule_filter.is_empty() || opts.rule_filter.iter().any(|f| f == r.id()))
        .collect();
    if active.is_empty() {
        return Err("no rules selected".to_string());
    }

    let sources = workspace_sources(&opts.root);
    if sources.is_empty() {
        return Err(format!(
            "no crates/*/src/**/*.rs files under {}",
            opts.root.display()
        ));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut files_scanned = 0usize;
    let mut workspace = Workspace::default();
    for source in &sources {
        let Ok(src) = fs::read_to_string(&source.path) else {
            findings.push(Finding {
                rule: "driver",
                key: "unreadable",
                file: relativize(&opts.root, &source.path),
                line: 1,
                col: 1,
                message: "file could not be read as UTF-8".to_string(),
                snippet: String::new(),
            });
            continue;
        };
        files_scanned += 1;
        let tokens = lexer::lex(&src);
        let mut view = FileView::new(
            relativize(&opts.root, &source.path),
            source.krate.clone(),
            &src,
            &tokens,
        );
        if source.is_test {
            view = view.mark_test_file();
        }
        for rule in active.iter_mut() {
            findings.extend(rule.check_file(&view));
        }
        graph::summarise(&mut workspace, &view);
    }
    for rule in active.iter_mut() {
        findings.extend(rule.check_workspace(&workspace));
        findings.extend(rule.finish(&opts.root));
    }

    // Allowlist: absent file means an empty list.
    let allow_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.allow"));
    let origin = relativize(&opts.root, &allow_path);
    let allow = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text, &origin),
        Err(_) => Allowlist::default(),
    };
    let active_ids: Vec<&str> = active.iter().map(|r| r.id()).collect();
    let (mut surviving, suppressed) = allow.apply(findings, &origin, &active_ids);
    surviving.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    Ok(Report {
        rules: active.iter().map(|r| r.id()).collect(),
        files_scanned,
        findings: surviving,
        suppressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_rule_is_a_config_error() {
        let mut opts = Options::new("/nonexistent");
        opts.rule_filter = vec!["definitely_not_a_rule".into()];
        assert!(run(&opts).is_err());
    }

    #[test]
    fn missing_root_is_a_config_error() {
        let opts = Options::new("/nonexistent-gps-lint-root");
        assert!(run(&opts).is_err());
    }
}
