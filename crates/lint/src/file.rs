//! Per-file analysis context shared by all rules.

use crate::lexer::Token;

/// Rust keywords that may legitimately precede a `[` without the
/// bracket being an index expression (`let [a, b] = …`, `&mut [0; 4]`).
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Everything a rule gets to see about one source file: the raw text,
/// the token stream (comments included), a code-only index, and the
/// line ranges occupied by `#[cfg(test)]` / `#[test]` items.
#[derive(Debug)]
pub struct FileView<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate directory name (`linalg`, `core`, …); empty outside crates.
    pub krate: String,
    /// Raw source text.
    pub src: &'a str,
    /// Full token stream, comments included.
    pub tokens: &'a [Token<'a>],
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Inclusive line ranges of test-only items.
    pub test_regions: Vec<(u32, u32)>,
    /// Whole file is test/example code (`tests/**`, `examples/**`):
    /// every line counts as a test line, so the test-code exemptions
    /// (panic_freedom and friends) apply throughout.
    pub is_test_file: bool,
}

impl<'a> FileView<'a> {
    /// Build the view: derive the code-token index and test regions.
    pub fn new(rel: String, krate: String, src: &'a str, tokens: &'a [Token<'a>]) -> Self {
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let test_regions = find_test_regions(tokens);
        FileView {
            rel,
            krate,
            src,
            tokens,
            code,
            test_regions,
            is_test_file: false,
        }
    }

    /// Mark the whole file as test/example code (see
    /// [`FileView::is_test_file`]).
    pub fn mark_test_file(mut self) -> Self {
        self.is_test_file = true;
        self
    }

    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]` item,
    /// or the whole file is test/example code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(start, end)| line >= start && line <= end)
    }

    /// The text of 1-based `line`, trimmed, or empty when out of range.
    pub fn line_text(&self, line: u32) -> &str {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }

    /// The code token at code-index `ci` (i.e. skipping comments).
    pub fn code_token(&self, ci: usize) -> Option<&Token<'a>> {
        self.code.get(ci).and_then(|&i| self.tokens.get(i))
    }

    /// Text of the code token at `ci`, or `""` out of range.
    pub fn code_text(&self, ci: usize) -> &str {
        self.code_token(ci).map(|t| t.text).unwrap_or("")
    }

    /// Build a finding anchored at code token `ci`.
    pub fn finding(
        &self,
        rule: &'static str,
        key: &'static str,
        ci: usize,
        message: String,
    ) -> crate::findings::Finding {
        let (line, col) = self
            .code_token(ci)
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        crate::findings::Finding {
            rule,
            key,
            file: self.rel.clone(),
            line,
            col,
            message,
            snippet: self.line_text(line).to_string(),
        }
    }
}

/// Locate items marked `#[cfg(test)]` or `#[test]` (attribute through
/// the item's closing brace or semicolon) as inclusive line ranges.
///
/// This is attribute-driven, not scope-driven: a `mod tests` block gets
/// one big range, a `#[test]` fn outside a module gets its own. Nested
/// or overlapping ranges are harmless — membership is a line check.
fn find_test_regions(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code.get(i).map(|t| t.text) == Some("#") && code.get(i + 1).map(|t| t.text) == Some("[")
        {
            let attr_line = code.get(i).map(|t| t.line).unwrap_or(1);
            // Collect the attribute body up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut body: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match code.get(j).map(|t| t.text) {
                    Some("[") => depth += 1,
                    Some("]") => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    body.push(code.get(j).map(|t| t.text).unwrap_or(""));
                }
                j += 1;
            }
            if is_test_attribute(&body) {
                if let Some(end_line) = item_end_line(&code, j) {
                    regions.push((attr_line, end_line));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[tokio::test]`-
/// style attributes all mark test items; the heuristic is the presence
/// of a bare `test` identifier in the attribute body.
fn is_test_attribute(body: &[&str]) -> bool {
    body.contains(&"test")
}

/// The end line of the item starting at code index `start`: skip any
/// further attributes, then match braces from the first `{`, or stop at
/// a top-level `;` for brace-less items (`use`, `type`, `fn` in traits).
fn item_end_line(code: &[&Token<'_>], start: usize) -> Option<u32> {
    let mut i = start;
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod t { … }`).
    while code.get(i).map(|t| t.text) == Some("#") && code.get(i + 1).map(|t| t.text) == Some("[") {
        let mut depth = 0i32;
        i += 1;
        while let Some(t) = code.get(i) {
            match t.text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut depth = 0i32;
    while let Some(t) = code.get(i) {
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(t.line);
                }
            }
            ";" if depth == 0 => return Some(t.line),
            _ => {}
        }
        i += 1;
    }
    // Unterminated item: treat as running to the last token.
    code.last().map(|t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn view<'a>(src: &'a str, tokens: &'a [Token<'a>]) -> FileView<'a> {
        FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, tokens)
    }

    #[test]
    fn cfg_test_module_becomes_one_region() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn also_real() {}\n";
        let toks = lex(src);
        let v = view(src, &toks);
        assert!(!v.is_test_line(1));
        assert!(v.is_test_line(2));
        assert!(v.is_test_line(5));
        assert!(v.is_test_line(6));
        assert!(!v.is_test_line(7));
    }

    #[test]
    fn standalone_test_fn_is_a_region() {
        let src = "fn real() {}\n#[test]\nfn t() {\n  boom();\n}\nfn real2() {}\n";
        let toks = lex(src);
        let v = view(src, &toks);
        assert!(!v.is_test_line(1));
        assert!(v.is_test_line(3));
        assert!(v.is_test_line(4));
        assert!(!v.is_test_line(6));
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n  fn t() {}\n}\nfn real() {}\n";
        let toks = lex(src);
        let v = view(src, &toks);
        assert!(v.is_test_line(4));
        assert!(!v.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(feature = \"extra\")]\nfn gated() {}\n";
        let toks = lex(src);
        let v = view(src, &toks);
        assert!(!v.is_test_line(2));
    }

    #[test]
    fn line_text_and_code_tokens() {
        let src = "let a = 1; // trailing\n";
        let toks = lex(src);
        let v = view(src, &toks);
        assert_eq!(v.line_text(1), "let a = 1; // trailing");
        // Comment excluded from the code index.
        assert_eq!(v.code.len(), 5);
        assert_eq!(v.code_text(0), "let");
    }
}
