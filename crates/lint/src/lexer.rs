//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The lint rules never need a parse tree — they pattern-match short
//! token sequences (`.` `unwrap` `(`, `Vec` `::` `new`, `==` next to a
//! float literal). What they *do* need is for those sequences to never
//! fire inside string literals, comments, char literals or raw strings,
//! which is exactly where naive `grep`-style linting falls over. So
//! this module tokenizes real Rust source faithfully enough that every
//! downstream rule can treat the token stream as code-only:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments are kept as
//!   tokens — annotation markers like `// lint: no_alloc` live there;
//! * string, raw-string (`r#"…"#`), byte-string, char and byte literals
//!   are single tokens, so a `"foo.unwrap()"` message can never be
//!   mistaken for a call;
//! * `'a` lifetimes are distinguished from `'a'` char literals;
//! * multi-character operators (`==`, `!=`, `::`, `..=`, …) lex as one
//!   token so comparison rules see the operator, not its pieces.
//!
//! Every token carries a 1-based line/column span for diagnostics. The
//! lexer never panics: malformed input (unterminated strings, stray
//! bytes) degrades to best-effort tokens that simply run to end of
//! file, which is the right behavior for a linter that must keep
//! walking the rest of the workspace.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// Lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Integer literal, including hex/octal/binary forms.
    Int,
    /// Float literal (`1.0`, `2.5e-3`, `1f64`).
    Float,
    /// Ordinary string literal, quotes included.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`).
    RawStr,
    /// Byte-string literal (`b"…"`).
    ByteStr,
    /// Raw byte-string literal (`br#"…"#`).
    RawByteStr,
    /// Char literal (`'x'`, `'\''`, `'"'`).
    Char,
    /// Byte literal (`b'x'`).
    Byte,
    /// Line comment, `//…` to end of line (doc comments included).
    LineComment,
    /// Block comment, `/*…*/`, nesting-aware.
    BlockComment,
    /// Punctuation or operator; multi-char operators are one token.
    Punct,
}

/// One lexed token: classification, source text and 1-based position.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact source slice, delimiters included.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token<'_> {
    /// True for comment tokens (which rules usually skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True for string-ish literal tokens.
    pub fn is_string(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Str | TokenKind::RawStr | TokenKind::ByteStr | TokenKind::RawByteStr
        )
    }

    /// The payload of a string literal with delimiters stripped, or
    /// `None` for non-string tokens. `r#"x"#` yields `x`.
    pub fn str_contents(&self) -> Option<&str> {
        if !self.is_string() {
            return None;
        }
        let open = self.text.find('"')?;
        let body = self.text.get(open + 1..)?;
        let close = body.rfind('"')?;
        body.get(..close)
    }
}

/// Multi-character operators, longest first so greedy matching works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Byte at `pos + ahead`, or 0 past end of input.
    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advance one byte, tracking line/column.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn slice(&self, start: usize) -> &'a str {
        self.src.get(start..self.pos).unwrap_or("")
    }

    fn token(&self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token<'a> {
        Token {
            kind,
            text: self.slice(start),
            line,
            col,
        }
    }

    /// Consume `//…` to (but not including) the trailing newline.
    fn line_comment(&mut self) {
        while !self.at_end() && self.peek(0) != b'\n' {
            self.bump();
        }
    }

    /// Consume a nesting-aware `/* … */` comment.
    fn block_comment(&mut self) {
        self.bump_n(2); // opening /*
        let mut depth = 1usize;
        while depth > 0 && !self.at_end() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consume a `"…"` body (opening quote already pending), honoring
    /// backslash escapes. Stops after the closing quote or at EOF.
    fn quoted(&mut self, quote: u8) {
        self.bump(); // opening delimiter
        while !self.at_end() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                c if c == quote => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consume `r"…"` / `r#"…"#` with any number of hashes; `self.pos`
    /// sits on the first `#` or `"` after the `r`/`br` prefix.
    fn raw_quoted(&mut self) {
        let mut hashes = 0usize;
        while self.peek(hashes) == b'#' {
            hashes += 1;
        }
        self.bump_n(hashes + 1); // hashes plus opening quote
        while !self.at_end() {
            if self.peek(0) == b'"' {
                let mut n = 0usize;
                while n < hashes && self.peek(1 + n) == b'#' {
                    n += 1;
                }
                if n == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    fn ident_like(&mut self) {
        while !self.at_end() {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Number literal; returns the refined kind (Int or Float).
    fn number(&mut self) -> TokenKind {
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'X' | b'o' | b'O' | b'b' | b'B') {
            self.bump_n(2);
            self.ident_like(); // digits + suffix in one gulp
            return TokenKind::Int;
        }
        let mut kind = TokenKind::Int;
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        // Fractional part: `1.5`, `1.` — but not `1..3` or `1.max(2)`.
        if self.peek(0) == b'.' {
            let after = self.peek(1);
            let dotted = after.is_ascii_digit()
                || !(after == b'.'
                    || after == b'_'
                    || after.is_ascii_alphabetic()
                    || after >= 0x80);
            if dotted {
                kind = TokenKind::Float;
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
        }
        // Exponent: `1e9`, `2.5E-3`.
        if matches!(self.peek(0), b'e' | b'E') {
            let (a, b) = (self.peek(1), self.peek(2));
            if a.is_ascii_digit() || (matches!(a, b'+' | b'-') && b.is_ascii_digit()) {
                kind = TokenKind::Float;
                self.bump_n(2);
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
        }
        // Type suffix: `1u32`, `1.0f64`, `1f32` (float by suffix).
        if self.peek(0) == b'f' && (self.peek(1) == b'3' || self.peek(1) == b'6') {
            kind = TokenKind::Float;
        }
        if self.peek(0).is_ascii_alphabetic() || self.peek(0) == b'_' {
            self.ident_like();
        }
        kind
    }

    /// Decide whether a `'` starts a char literal or a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let c1 = self.peek(1);
        // `'\…'` is always a char literal; `'x'` (any single byte then a
        // quote) likewise. Otherwise an identifier-ish first char means
        // a lifetime: `'a`, `'static`, `'_`.
        if c1 == b'\\' || self.peek(2) == b'\'' {
            self.quoted(b'\'');
            TokenKind::Char
        } else if c1 == b'_' || c1.is_ascii_alphabetic() || c1 >= 0x80 {
            self.bump(); // the quote
            self.ident_like();
            TokenKind::Lifetime
        } else {
            // Degenerate (`'(` with no close) — treat as char-ish and
            // scan to the closing quote or EOF.
            self.quoted(b'\'');
            TokenKind::Char
        }
    }

    fn next_token(&mut self) -> Option<Token<'a>> {
        // Skip whitespace between tokens.
        while !self.at_end() && self.peek(0).is_ascii_whitespace() {
            self.bump();
        }
        if self.at_end() {
            return None;
        }
        let (start, line, col) = (self.pos, self.line, self.col);
        let c = self.peek(0);

        // Comments.
        if c == b'/' && self.peek(1) == b'/' {
            self.line_comment();
            return Some(self.token(TokenKind::LineComment, start, line, col));
        }
        if c == b'/' && self.peek(1) == b'*' {
            self.block_comment();
            return Some(self.token(TokenKind::BlockComment, start, line, col));
        }

        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident.
        if c == b'r' && (self.peek(1) == b'"' || self.peek(1) == b'#') {
            let mut h = 1;
            while self.peek(h) == b'#' {
                h += 1;
            }
            if self.peek(h) == b'"' {
                self.bump(); // r
                self.raw_quoted();
                return Some(self.token(TokenKind::RawStr, start, line, col));
            }
            if self.peek(1) == b'#' {
                self.bump_n(2); // r#
                self.ident_like();
                return Some(self.token(TokenKind::Ident, start, line, col));
            }
        }

        // Byte strings and byte chars: b"…", br#"…"#, b'x'.
        if c == b'b' {
            if self.peek(1) == b'"' {
                self.bump(); // b
                self.quoted(b'"');
                return Some(self.token(TokenKind::ByteStr, start, line, col));
            }
            if self.peek(1) == b'\'' {
                self.bump(); // b
                self.quoted(b'\'');
                return Some(self.token(TokenKind::Byte, start, line, col));
            }
            if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') {
                let mut h = 2;
                while self.peek(h) == b'#' {
                    h += 1;
                }
                if self.peek(h) == b'"' {
                    self.bump_n(2); // br
                    self.raw_quoted();
                    return Some(self.token(TokenKind::RawByteStr, start, line, col));
                }
            }
        }

        // Ordinary strings, chars and lifetimes.
        if c == b'"' {
            self.quoted(b'"');
            return Some(self.token(TokenKind::Str, start, line, col));
        }
        if c == b'\'' {
            let kind = self.char_or_lifetime();
            return Some(self.token(kind, start, line, col));
        }

        // Numbers.
        if c.is_ascii_digit() {
            let kind = self.number();
            return Some(self.token(kind, start, line, col));
        }

        // Identifiers and keywords.
        if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 {
            self.ident_like();
            return Some(self.token(TokenKind::Ident, start, line, col));
        }

        // Multi-char operators, then single punctuation.
        let rest = self.src.get(self.pos..).unwrap_or("");
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                self.bump_n(op.len());
                return Some(self.token(TokenKind::Punct, start, line, col));
            }
        }
        self.bump();
        Some(self.token(TokenKind::Punct, start, line, col))
    }
}

/// Tokenize `src`, comments included. Never panics; malformed input
/// produces best-effort tokens that run to end of file.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token() {
        out.push(tok);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text.to_string()).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn main() { a.unwrap(); }");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["fn", "main", "a", "unwrap"]);
    }

    #[test]
    fn multi_char_operators_lex_as_one_token() {
        assert_eq!(
            texts("a == b != c :: d ..= e"),
            ["a", "==", "b", "!=", "c", "::", "d", "..=", "e"]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "a.unwrap() // not a comment";"#);
        assert!(toks.iter().all(|t| t.kind != TokenKind::LineComment));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].str_contents(), Some("a.unwrap() // not a comment"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = lex(r#"("a\"b", c)"#);
        let s: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, r#""a\"b""#);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"contains "quotes" and // slashes"#;"###);
        let raw: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::RawStr)
            .collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(
            raw[0].str_contents(),
            Some(r#"contains "quotes" and // slashes"#)
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            kinds("a /* outer /* inner */ still outer */ b"),
            [TokenKind::Ident, TokenKind::BlockComment, TokenKind::Ident]
        );
        assert_eq!(toks[2].text, "b");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(kinds("'a'"), [TokenKind::Char]);
        assert_eq!(kinds("'a"), [TokenKind::Lifetime]);
        assert_eq!(kinds("'static"), [TokenKind::Lifetime]);
        assert_eq!(kinds("'_"), [TokenKind::Lifetime]);
        assert_eq!(kinds("'_'"), [TokenKind::Char]);
        assert_eq!(kinds(r"'\''"), [TokenKind::Char]);
        assert_eq!(kinds(r#"'"'"#), [TokenKind::Char]);
        // A char literal holding a quote or comment-opener swallows it.
        let toks = lex(r#"let c = '"'; let d = '/';"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn byte_literals() {
        assert_eq!(kinds(r#"b"bytes""#), [TokenKind::ByteStr]);
        assert_eq!(kinds("b'x'"), [TokenKind::Byte]);
        assert_eq!(
            kinds(r##"br#"raw bytes "q" here"#"##),
            [TokenKind::RawByteStr]
        );
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#match = 1;");
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[1].text, "r#match");
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(kinds("1"), [TokenKind::Int]);
        assert_eq!(kinds("1.0"), [TokenKind::Float]);
        assert_eq!(kinds("2.5e-3"), [TokenKind::Float]);
        assert_eq!(kinds("1e9"), [TokenKind::Float]);
        assert_eq!(kinds("1f64"), [TokenKind::Float]);
        assert_eq!(kinds("0xff_u64"), [TokenKind::Int]);
        assert_eq!(kinds("1_000"), [TokenKind::Int]);
        // `1..3` is Int Punct Int, and `1.max(2)` keeps the dot a Punct.
        assert_eq!(
            kinds("1..3"),
            [TokenKind::Int, TokenKind::Punct, TokenKind::Int]
        );
        assert_eq!(
            kinds("1.max(2)")[..3],
            [TokenKind::Int, TokenKind::Punct, TokenKind::Ident]
        );
    }

    #[test]
    fn positions_are_one_based_and_track_lines() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_reaches_eof_without_panic() {
        let toks = lex(r#"let s = "never closed"#);
        assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::Str));
    }

    #[test]
    fn line_comment_token_keeps_text() {
        let toks = lex("x // lint: no_alloc\ny");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[1].text, "// lint: no_alloc");
    }
}
