//! `gps-lint` — the workspace's own static-analysis pass.
//!
//! Zero dependencies, like everything else in this repo: a hand-rolled
//! [`lexer`] tokenizes every workspace `.rs` file (comment-, string-,
//! raw-string- and char-literal-aware, so rules never fire on text
//! that is not code), a recursive-descent [`parser`] recovers the item
//! tree (fns, impls, mods with spans), and a [`graph`] pass distils
//! per-function summaries — calls, lock acquisitions, atomic ops,
//! allocation sites — into an approximate intra-crate call graph. The
//! repo-specific [`rules`] consume both layers:
//!
//! | rule id | invariant |
//! |---|---|
//! | `panic_freedom` | no `unwrap`/`expect`/panicking macros/bare indexing in non-test library code |
//! | `no_alloc` | no allocating constructs inside `// lint: no_alloc` regions — including transitively through callees |
//! | `telemetry_sync` | metric/span names in code ⇔ `docs/TELEMETRY.md` inventory |
//! | `float_cmp` | no exact float `==`/`!=` in `crates/linalg` + `crates/core` |
//! | `lock_discipline` | poison-tolerant locking in `gps-telemetry`/`gps-pool` |
//! | `lock_order` | no cycles in the Mutex/RwLock acquisition-order graph |
//! | `atomic_discipline` | coherent store/load `Ordering` pairs per atomic field |
//! | `cast_truncation` | no silent narrowing casts / unchecked length arithmetic in `// lint: wire_format` paths |
//! | `bounded_loop` | loops in `no_alloc`/`wire_format` regions have a derivable bound |
//!
//! Pre-existing violations are triaged through the checked-in
//! [`allowlist`] (`lint.allow`), every entry of which carries an
//! occurrence budget and a mandatory justification. The
//! [`driver`] assembles everything into a [`findings::Report`] that the
//! `gps-lint` binary renders as human-readable text and machine-readable
//! `lint-report.json`; `scripts/ci.sh` fails the gate on any finding.
//! See `docs/STATIC_ANALYSIS.md` for the workflow.

pub mod allowlist;
pub mod driver;
pub mod file;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
