//! `telemetry_sync`: code and `docs/TELEMETRY.md` must agree on names.
//!
//! The metric inventory in TELEMETRY.md is the operator's contract:
//! dashboards and alerts are built against it. This rule extracts every
//! metric/span name constructed in `crates/*/src` and diffs it *both
//! ways* against the inventory table:
//!
//! * a name recorded in code but missing from the docs is
//!   `undocumented` (anchored at the call site);
//! * a documented name no code records any more is `stale` (anchored
//!   at the table row).
//!
//! Extraction understands three shapes:
//!
//! * direct literals — `gps_telemetry::counter("pool.submitted")`,
//!   `span("epoch")` (span literals are prefixed `span.`);
//! * formatted names — `counter(&format!("faults.injected.{}", k))`
//!   normalizes `{…}` to a `*` wildcard segment;
//! * the `cached_metric!(fn_name, Kind, "name")` macro in
//!   `gps-core::instrument`.
//!
//! Dynamically assembled names the lexer cannot see (a name built far
//! from its `histogram(…)` call) are declared next to the call with a
//! `// lint: metric <name>` marker comment.
//!
//! Doc-side wildcards `<kind>` and `*` match one trailing segment (or
//! all remaining segments in last position), so `faults.injected.<kind>`
//! covers `faults.injected.dropout` and `span.*` covers every span path.

use std::path::Path;

use crate::file::FileView;
use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug, Default)]
pub struct TelemetrySync {
    /// (normalized name, file, line, col) for every recorded name.
    seen: Vec<(String, String, u32, u32)>,
}

const RECORDERS: &[&str] = &["counter", "gauge", "histogram", "span"];

/// Replace `{…}` format captures with `*` wildcard markers.
fn normalize_code_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut depth = 0usize;
    for c in raw.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Replace `<…>` doc placeholders with `*` wildcard markers.
fn normalize_doc_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut depth = 0usize;
    for c in raw.chars() {
        match c {
            '<' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '>' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Segment-wise wildcard match. A `*` segment matches one segment, or
/// any remainder when it is the pattern's last segment; a `*` on either
/// side matches. Trailing `/`-joined span paths count as one segment.
fn name_matches(pattern: &str, name: &str) -> bool {
    let pat: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    let mut pi = 0usize;
    let mut si = 0usize;
    loop {
        match (pat.get(pi), segs.get(si)) {
            (None, None) => return true,
            (Some(&"*"), _) if pi + 1 == pat.len() => return si < segs.len(),
            (Some(&p), Some(&s)) => {
                if p != s && p != "*" && s != "*" {
                    return false;
                }
                pi += 1;
                si += 1;
            }
            _ => return false,
        }
    }
}

/// Whether a candidate string looks like a metric name at all (dotted,
/// lowercase-ish) — filters out messages accidentally passed through.
fn plausible_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '*' | '/' | '-'))
}

impl TelemetrySync {
    fn record(&mut self, file: &FileView<'_>, name: String, line: u32, col: u32) {
        if plausible_name(&name) {
            self.seen.push((name, file.rel.clone(), line, col));
        }
    }

    /// First string literal inside the call whose `(` sits at code
    /// index `open`, or None if the call has no literal argument.
    fn literal_arg<'a>(file: &FileView<'a>, open: usize) -> Option<(String, u32, u32)> {
        let mut depth = 0i32;
        let mut ci = open;
        loop {
            let tok = file.code_token(ci)?;
            match tok.text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                _ => {}
            }
            if tok.kind == TokenKind::Str {
                let contents = tok.str_contents().unwrap_or("").to_string();
                return Some((contents, tok.line, tok.col));
            }
            ci += 1;
        }
    }
}

impl Rule for TelemetrySync {
    fn id(&self) -> &'static str {
        "telemetry_sync"
    }

    fn description(&self) -> &'static str {
        "metric/span names in code and docs/TELEMETRY.md must match both ways"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        // The linter's own sources mention recorder idents in rule
        // logic; they record nothing.
        if file.krate == "lint" {
            return Vec::new();
        }
        // `// lint: metric <name>` declarations.
        for tok in file.tokens.iter().filter(|t| t.is_comment()) {
            if let Some(("metric", Some(name))) = super::no_alloc::lint_directive(tok.text) {
                if !file.is_test_line(tok.line) {
                    self.record(file, name.to_string(), tok.line, tok.col);
                }
            }
        }
        for ci in 0..file.code.len() {
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
                continue;
            }
            let prev = file.code_text(ci.wrapping_sub(1));
            let next = file.code_text(ci + 1);
            if RECORDERS.contains(&tok.text) && next == "(" && prev != "fn" {
                if let Some((raw, line, col)) = Self::literal_arg(file, ci + 1) {
                    let name = normalize_code_name(&raw);
                    let name = if tok.text == "span" {
                        format!("span.{name}")
                    } else {
                        name
                    };
                    self.record(file, name, line, col);
                }
            }
            if tok.text == "cached_metric" && next == "!" && file.code_text(ci + 2) == "(" {
                if let Some((raw, line, col)) = Self::literal_arg(file, ci + 2) {
                    self.record(file, normalize_code_name(&raw), line, col);
                }
            }
        }
        Vec::new()
    }

    fn finish(&mut self, root: &Path) -> Vec<Finding> {
        let docs_rel = "docs/TELEMETRY.md";
        let docs_path = root.join(docs_rel);
        let text = match std::fs::read_to_string(&docs_path) {
            Ok(t) => t,
            Err(e) => {
                return vec![Finding {
                    rule: self.id(),
                    key: "missing_docs",
                    file: docs_rel.to_string(),
                    line: 1,
                    col: 1,
                    message: format!("cannot read {docs_rel}: {e}"),
                    snippet: String::new(),
                }]
            }
        };
        let doc_names = inventory_names(&text);
        let mut out = Vec::new();

        // Code → docs: every recorded name must be documented.
        let mut reported = std::collections::HashSet::new();
        for (name, file, line, col) in &self.seen {
            let documented = doc_names
                .iter()
                .any(|(d, _)| name_matches(d, name) || d == name);
            if !documented && reported.insert(name.clone()) {
                out.push(Finding {
                    rule: self.id(),
                    key: "undocumented",
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "metric `{name}` is recorded here but missing from {docs_rel}"
                    ),
                    snippet: String::new(),
                });
            }
        }

        // Docs → code: every documented name must still be recorded.
        for (doc, line) in &doc_names {
            let recorded = self
                .seen
                .iter()
                .any(|(n, _, _, _)| name_matches(doc, n) || name_matches(n, doc));
            if !recorded {
                out.push(Finding {
                    rule: self.id(),
                    key: "stale",
                    file: docs_rel.to_string(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "documented metric `{doc}` is no longer recorded anywhere in crates/*/src"
                    ),
                    snippet: String::new(),
                });
            }
        }
        out
    }
}

/// Parse the `## Metric inventory` table: every backticked span in the
/// first column is a documented name. Returns (normalized name, line).
fn inventory_names(docs: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in docs.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if line.starts_with("## ") {
            in_section = line.trim() == "## Metric inventory";
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let first_cell = line.trim_start().trim_start_matches('|');
        let first_cell = first_cell.split('|').next().unwrap_or("");
        if first_cell.trim_start().starts_with('-') || first_cell.contains("Name") {
            continue;
        }
        let mut rest = first_cell;
        while let Some(open) = rest.find('`') {
            let Some(tail) = rest.get(open + 1..) else {
                break;
            };
            let Some(close) = tail.find('`') else { break };
            let raw = tail.get(..close).unwrap_or("");
            if plausible_name(&normalize_doc_name(raw)) {
                out.push((normalize_doc_name(raw), line_no));
            }
            rest = tail.get(close + 1..).unwrap_or("");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn collect(src: &str) -> Vec<String> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        let mut rule = TelemetrySync::default();
        rule.check_file(&view);
        rule.seen.into_iter().map(|(n, _, _, _)| n).collect()
    }

    #[test]
    fn extracts_direct_and_formatted_and_macro_names() {
        let src = r#"
            fn f() {
                let c = gps_telemetry::counter("app.solves");
                let g = reg.gauge("app.depth");
                let h = gps_telemetry::histogram(&format!("app.kind.{}", k));
                let _s = gps_telemetry::span("epoch");
            }
            cached_metric!(nr_solves, Counter, "core.nr.solves");
        "#;
        assert_eq!(
            collect(src),
            [
                "app.solves",
                "app.depth",
                "app.kind.*",
                "span.epoch",
                "core.nr.solves"
            ]
        );
    }

    #[test]
    fn declaration_comments_and_fn_defs() {
        let src = "
            // lint: metric bench.*
            fn record(metric: &str) { gps_telemetry::histogram(metric).record(1.0); }
            pub fn counter(name: &str) -> Counter { registry().counter(name) }
        ";
        // The declaration registers; the literal-less calls do not.
        assert_eq!(collect(src), ["bench.*"]);
    }

    #[test]
    fn test_regions_do_not_register_names() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn t() { gps_telemetry::counter(\"test.only\"); }
            }
        ";
        assert!(collect(src).is_empty());
    }

    #[test]
    fn wildcard_matching() {
        assert!(name_matches("span.*", "span.epoch"));
        assert!(name_matches("span.*", "span.fig51/epoch"));
        assert!(name_matches("faults.injected.*", "faults.injected.dropout"));
        assert!(!name_matches("faults.injected.*", "faults.injected"));
        assert!(name_matches("core.nr.solves", "core.nr.solves"));
        assert!(!name_matches("core.nr.solves", "core.nr.iterations"));
        assert!(name_matches("faults.injected.*", "faults.injected.*"));
        assert!(!name_matches("pool.*", "core.nr.solves"));
    }

    #[test]
    fn doc_table_parsing_normalizes_placeholders() {
        let docs = "\
# Telemetry

## Metric inventory

| Name | Kind | Meaning |
|---|---|---|
| `core.nr.solves` | counter | NR outcomes |
| `faults.injected.<kind>` | counter | injections |
| `span.*` | histogram | spans |

## CLI
| `not.in.inventory` | x | y |
";
        let names: Vec<String> = inventory_names(docs).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["core.nr.solves", "faults.injected.*", "span.*"]);
    }

    #[test]
    fn finish_reports_both_directions() {
        let dir = std::env::temp_dir().join(format!(
            "gps-lint-sync-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::create_dir_all(dir.join("docs"));
        let docs = "## Metric inventory\n\n| Name | Kind |\n|---|---|\n| `app.known` | counter |\n| `app.ghost` | counter |\n";
        std::fs::write(dir.join("docs/TELEMETRY.md"), docs).ok();

        let src = "fn f() { gps_telemetry::counter(\"app.known\"); gps_telemetry::counter(\"app.rogue\"); }";
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        let mut rule = TelemetrySync::default();
        rule.check_file(&view);
        let findings = rule.finish(&dir);
        let _ = std::fs::remove_dir_all(&dir);

        let keys: Vec<_> = findings
            .iter()
            .map(|f| (f.key, f.message.clone()))
            .collect();
        assert_eq!(findings.len(), 2, "{keys:?}");
        assert!(findings
            .iter()
            .any(|f| f.key == "undocumented" && f.message.contains("app.rogue")));
        assert!(findings
            .iter()
            .any(|f| f.key == "stale" && f.message.contains("app.ghost")));
    }
}
