//! `bounded_loop`: every loop in a hot region must have a visible
//! bound.
//!
//! A `no_alloc` region is a promise about the record path: it runs to
//! completion without touching the allocator — and, implicitly, that
//! it *runs to completion*. An unbounded `loop`/`while` inside one
//! (or inside a `wire_format` decode path fed by untrusted bytes)
//! turns a corrupt input or a logic slip into a hang instead of a
//! degraded fix. This rule demands a bound that is derivable from the
//! loop header itself:
//!
//! * `for` loops are bounded by their iterator (finite in this
//!   codebase: ranges, slices, `chunks`, …) — never flagged;
//! * `while let` drains an iterator/queue — treated as bounded;
//! * `while cond` is bounded when the condition compares against a
//!   literal, an `UPPER_CASE` const, or a `.len()`/`.rows()`/
//!   `.cols()`/`.capacity()` of something in scope;
//! * bare `loop { … }` has no derivable bound — always flagged
//!   (a CAS retry loop that is lock-free by argument, not by bound,
//!   belongs in `lint.allow` with that argument written down).

use crate::file::FileView;
use crate::findings::Finding;
use crate::rules::no_alloc_facts;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug, Default)]
pub struct BoundedLoop;

/// Does the `while` condition starting after code index `ci` (the
/// `while` token) contain a comparison against something bounded?
fn while_condition_bounded(file: &FileView<'_>, ci: usize) -> bool {
    let mut has_cmp = false;
    let mut has_bound = false;
    let mut depth = 0i32;
    let mut k = ci + 1;
    loop {
        let t = file.code_text(k);
        match t {
            "" => break,
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            "<" | "<=" | ">" | ">=" | "==" | "!=" => has_cmp = true,
            "len" | "rows" | "cols" | "capacity" | "is_empty" => has_bound = true,
            _ => {
                let numeric = t.chars().next().map(char::is_numeric) == Some(true);
                let upper_const = t.len() > 1
                    && t.chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit());
                if numeric || upper_const {
                    has_bound = true;
                }
            }
        }
        k += 1;
    }
    has_cmp && has_bound
}

impl Rule for BoundedLoop {
    fn id(&self) -> &'static str {
        "bounded_loop"
    }

    fn description(&self) -> &'static str {
        "loops in `no_alloc`/`wire_format` regions need a derivable bound"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        let mut regions = no_alloc_facts::regions(file);
        regions.extend(no_alloc_facts::regions_for(file, "wire_format"));
        if regions.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ci in 0..file.code.len() {
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            let line = tok.line;
            if !regions.iter().any(|&(s, e)| line >= s && line <= e) || file.is_test_line(line) {
                continue;
            }
            match tok.text {
                "loop" if file.code_text(ci + 1) == "{" => {
                    out.push(
                        file.finding(
                            self.id(),
                            "bare_loop",
                            ci,
                            "bare `loop` in a hot region has no derivable bound; restructure as a \
                         bounded `while`/`for`, or allowlist it with a termination argument"
                                .to_string(),
                        ),
                    );
                }
                "while" => {
                    if file.code_text(ci + 1) == "let" {
                        continue; // draining an iterator/queue
                    }
                    if while_condition_bounded(file, ci) {
                        continue;
                    }
                    out.push(
                        file.finding(
                            self.id(),
                            "unbounded_while",
                            ci,
                            "`while` condition in a hot region compares against nothing bounded \
                         (literal, UPPER_CASE const, or `.len()`-like); derive a bound or \
                         allowlist with a termination argument"
                                .to_string(),
                        ),
                    );
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        BoundedLoop.check_file(&view)
    }

    #[test]
    fn bare_loop_in_region_is_flagged() {
        let src = "// lint: no_alloc\n\
                   fn hot(&self) {\n\
                       loop {\n\
                           if self.try_once() { break; }\n\
                       }\n\
                   }\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "bare_loop");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn bounded_while_and_for_are_clean() {
        let src = "// lint: no_alloc\n\
                   fn hot(xs: &[f64]) {\n\
                       let mut i = 0;\n\
                       while i < xs.len() {\n\
                           i += 1;\n\
                       }\n\
                       for x in xs { let _ = x; }\n\
                       let mut k = 0;\n\
                       while k < MAX_ITERS { k += 1; }\n\
                       let mut j = 0;\n\
                       while j < 40 { j += 1; }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn while_let_is_treated_as_bounded() {
        let src = "// lint: no_alloc\n\
                   fn hot(mut rest: &[u8]) {\n\
                       while let Some((block, tail)) = split_first(rest) {\n\
                           rest = tail;\n\
                       }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unbounded_while_is_flagged() {
        let src = "// lint: no_alloc\n\
                   fn hot(&self) {\n\
                       while self.running() {\n\
                           self.step();\n\
                       }\n\
                   }\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "unbounded_while");
    }

    #[test]
    fn wire_format_regions_are_covered_too() {
        let src = "// lint: wire_format\n\
                   fn decode(&self) {\n\
                       loop {\n\
                           if self.next_frame().is_none() { break; }\n\
                       }\n\
                   }\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "bare_loop");
    }

    #[test]
    fn loops_outside_regions_are_ignored() {
        assert!(run("fn cold() { loop { break; } }\n").is_empty());
    }
}
