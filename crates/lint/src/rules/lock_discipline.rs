//! `lock_discipline`: poison-tolerant locking in shared-state crates.
//!
//! `gps-telemetry` and `gps-pool` are the two crates whose mutexes are
//! reachable from worker threads that catch job panics (PR 4's
//! per-job panic isolation). A panic caught *while a lock was held*
//! poisons the mutex; the repo's rule since PR 2 is that observability
//! and pool bookkeeping must survive poisoning — a metrics registry
//! that panics on `lock().unwrap()` turns one caught job panic into a
//! process-wide outage on the next `counter()` call.
//!
//! So in those crates, `.lock()`, `.read()` or `.write()` immediately
//! followed by `.unwrap()`/`.expect(…)` is denied; the blessed idiom is
//!
//! ```text
//! mutex.lock().unwrap_or_else(PoisonError::into_inner)
//! ```
//!
//! which takes the guard whether or not a previous holder panicked.

use crate::file::FileView;
use crate::findings::Finding;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug)]
pub struct LockDiscipline;

/// Crates whose locks must tolerate poisoning.
const SCOPED_CRATES: &[&str] = &["telemetry", "pool"];

const ACQUIRERS: &[&str] = &["lock", "read", "write"];

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock_discipline"
    }

    fn description(&self) -> &'static str {
        "deny .lock().unwrap() in gps-telemetry/gps-pool; poison-tolerant helper required"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        if !SCOPED_CRATES.contains(&file.krate.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ci in 0..file.code.len() {
            // `.` acquirer `(` `)` `.` (`unwrap`|`expect`)
            if file.code_text(ci) != "." {
                continue;
            }
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            if file.is_test_line(tok.line) {
                continue;
            }
            if !ACQUIRERS.contains(&file.code_text(ci + 1))
                || file.code_text(ci + 2) != "("
                || file.code_text(ci + 3) != ")"
                || file.code_text(ci + 4) != "."
            {
                continue;
            }
            let follow = file.code_text(ci + 5);
            if follow == "unwrap" || follow == "expect" {
                out.push(file.finding(
                    self.id(),
                    "lock_unwrap",
                    ci + 5,
                    format!(
                        "`.{}().{}(…)` panics on a poisoned lock; use \
                         `.{}().unwrap_or_else(PoisonError::into_inner)`",
                        file.code_text(ci + 1),
                        follow,
                        file.code_text(ci + 1),
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_in(krate: &str, src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new(
            format!("crates/{krate}/src/lib.rs"),
            krate.into(),
            src,
            &toks,
        );
        LockDiscipline.check_file(&view)
    }

    #[test]
    fn flags_lock_unwrap_and_expect() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   let a = m.lock().unwrap();\n\
                   let b = m.lock().expect(\"poisoned\");\n\
                   let c = rw.read().unwrap();\n\
                   }\n";
        let found = run_in("telemetry", src);
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.key == "lock_unwrap"));
    }

    #[test]
    fn poison_tolerant_idiom_passes() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   let a = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   let b = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n";
        assert!(run_in("pool", src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        assert!(run_in("core", "fn f() { m.lock().unwrap(); }").is_empty());
    }

    #[test]
    fn unrelated_unwraps_are_left_to_panic_freedom() {
        assert!(run_in("pool", "fn f() { opt.unwrap(); }").is_empty());
    }
}
