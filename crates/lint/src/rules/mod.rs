//! The rule registry: every repo invariant the linter enforces.
//!
//! A rule is a small state machine fed one [`FileView`] per workspace
//! source file, then given a chance to emit cross-file findings in
//! [`Rule::finish`] (the telemetry-sync rule diffs code against docs
//! there). Adding a rule is one file implementing this trait plus a
//! line in [`all`].

use std::path::Path;

use crate::file::FileView;
use crate::findings::Finding;
use crate::graph::Workspace;

mod atomic_discipline;
mod bounded_loop;
mod cast_truncation;
mod float_cmp;
mod lock_discipline;
mod lock_order;
mod no_alloc;
mod panic_freedom;
mod telemetry_sync;

pub use atomic_discipline::AtomicDiscipline;
pub use bounded_loop::BoundedLoop;
pub use cast_truncation::CastTruncation;
pub use float_cmp::FloatCmp;
pub use lock_discipline::LockDiscipline;
pub use lock_order::LockOrder;
pub use no_alloc::NoAlloc;
pub use panic_freedom::PanicFreedom;
pub use telemetry_sync::TelemetrySync;

/// Region/allocation facts shared between the `no_alloc` rule, the
/// workspace call graph and the region-scoped v2 rules.
pub(crate) mod no_alloc_facts {
    pub(crate) use super::no_alloc::{alloc_site, regions, regions_for};
}

/// One invariant checker.
pub trait Rule {
    /// Stable rule id used in findings, `--rule` filters and allowlist
    /// entries.
    fn id(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Inspect one file; return any findings anchored in it.
    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding>;

    /// Called once after every file has been seen, with the parsed
    /// workspace summaries. The interprocedural rules (transitive
    /// `no_alloc`, `lock_order`, `atomic_discipline`) live here.
    fn check_workspace(&mut self, ws: &Workspace) -> Vec<Finding> {
        let _ = ws;
        Vec::new()
    }

    /// Called once after every file has been seen; cross-file rules
    /// emit their diff findings here. `root` is the workspace root.
    fn finish(&mut self, root: &Path) -> Vec<Finding> {
        let _ = root;
        Vec::new()
    }
}

/// All rules, in execution order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(PanicFreedom),
        Box::new(NoAlloc),
        Box::new(TelemetrySync::default()),
        Box::new(FloatCmp),
        Box::new(LockDiscipline),
        Box::new(LockOrder),
        Box::new(AtomicDiscipline),
        Box::new(CastTruncation),
        Box::new(BoundedLoop),
    ]
}

/// The ids of every registered rule.
pub fn ids() -> Vec<&'static str> {
    all().iter().map(|r| r.id()).collect()
}
