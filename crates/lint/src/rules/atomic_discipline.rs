//! `atomic_discipline`: coherent publish patterns per atomic field.
//!
//! The flight-recorder rings and the pool's cursors/flags communicate
//! across threads through individual atomic fields. Each field's
//! store/load `Ordering` pairs must form one coherent pattern:
//!
//! * a `load(Acquire)` is only meaningful when some write side uses
//!   `Release` (or `AcqRel`/`SeqCst`) — an Acquire that can only ever
//!   observe `Relaxed` writes synchronises with nothing and usually
//!   marks a misunderstood protocol;
//! * a `store(Release)` publish is wasted when every observer loads
//!   `Relaxed` — either the loads need upgrading or the store is
//!   over-synchronised;
//! * `SeqCst` is banned outright in the scoped crates: the rings are
//!   single-writer by construction and the pool uses paired
//!   Release/Acquire — `SeqCst` here is a red flag that someone is
//!   papering over a protocol they cannot articulate.
//!
//! Attribution is by receiver name (`self.cursor.load(…)` → field
//! `cursor` of the same crate), matched against struct fields whose
//! type mentions `Atomic`. Ops through local bindings (`slot.store`)
//! are invisible — a documented approximation; the fields that carry
//! cross-thread protocols are addressed directly in this codebase.

use std::path::Path;

use crate::file::FileView;
use crate::findings::Finding;
use crate::graph::{AtomicUse, Workspace};
use crate::rules::Rule;

/// Crates whose atomics are held to the discipline.
const SCOPED_CRATES: &[&str] = &["pool", "telemetry", "core"];

/// Write-side operations: anything that can publish a value.
const STORE_OPS: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// See module docs.
#[derive(Debug, Default)]
pub struct AtomicDiscipline;

fn has(op: &AtomicUse, ordering: &str) -> bool {
    op.orderings.iter().any(|o| o == ordering)
}

fn releases(op: &AtomicUse) -> bool {
    has(op, "Release") || has(op, "AcqRel") || has(op, "SeqCst")
}

impl Rule for AtomicDiscipline {
    fn id(&self) -> &'static str {
        "atomic_discipline"
    }

    fn description(&self) -> &'static str {
        "store/load Ordering pairs per atomic field must form a coherent publish pattern"
    }

    fn check_file(&mut self, _file: &FileView<'_>) -> Vec<Finding> {
        Vec::new()
    }

    fn check_workspace(&mut self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for field in &ws.atomic_fields {
            if !SCOPED_CRATES.contains(&field.krate.as_str()) {
                continue;
            }
            let ops: Vec<&AtomicUse> = ws
                .atomic_ops
                .iter()
                .filter(|op| op.krate == field.krate && op.field == field.name && !op.is_test)
                .collect();
            if ops.is_empty() {
                continue;
            }
            // SeqCst anywhere on a scoped field.
            for op in &ops {
                if has(op, "SeqCst") {
                    out.push(Finding {
                        rule: self.id(),
                        key: "seqcst",
                        file: op.site.rel.clone(),
                        line: op.site.line,
                        col: op.site.col,
                        message: format!(
                            "`SeqCst` on `{}.{}`: the {} protocols use paired Release/Acquire \
                             (single-writer rings, shutdown flags); SeqCst hides a protocol bug",
                            field.struct_name, field.name, field.krate
                        ),
                        snippet: op.site.snippet.clone(),
                    });
                }
            }
            let stores: Vec<&AtomicUse> = ops
                .iter()
                .copied()
                .filter(|op| STORE_OPS.contains(&op.op.as_str()))
                .collect();
            let loads: Vec<&AtomicUse> = ops.iter().copied().filter(|op| op.op == "load").collect();

            // Acquire load with no releasing write side.
            if !stores.is_empty() && !stores.iter().any(|op| releases(op)) {
                if let Some(acq) = loads
                    .iter()
                    .find(|op| has(op, "Acquire") || has(op, "SeqCst"))
                {
                    out.push(Finding {
                        rule: self.id(),
                        key: "acquire_without_release",
                        file: acq.site.rel.clone(),
                        line: acq.site.line,
                        col: acq.site.col,
                        message: format!(
                            "`{}.{}` is loaded with Acquire but every write side is Relaxed \
                             (e.g. {}:{}); the load synchronises with nothing — pair it with a \
                             Release write or make the load Relaxed and document the external \
                             happens-before",
                            field.struct_name, field.name, stores[0].site.rel, stores[0].site.line,
                        ),
                        snippet: acq.site.snippet.clone(),
                    });
                }
            }

            // Release store that every observer reads Relaxed.
            if !loads.is_empty()
                && loads.iter().all(|op| has(op, "Relaxed"))
                && stores.iter().any(|op| releases(op))
            {
                if let Some(rel) = stores.iter().find(|op| releases(op)) {
                    out.push(Finding {
                        rule: self.id(),
                        key: "release_without_acquire",
                        file: rel.site.rel.clone(),
                        line: rel.site.line,
                        col: rel.site.col,
                        message: format!(
                            "`{}.{}` is published with Release but every load is Relaxed \
                             (e.g. {}:{}); the publish is unobserved — upgrade a load to \
                             Acquire or relax the store",
                            field.struct_name, field.name, loads[0].site.rel, loads[0].site.line,
                        ),
                        snippet: rel.site.snippet.clone(),
                    });
                }
            }
        }
        out
    }

    fn finish(&mut self, _root: &Path) -> Vec<Finding> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::lexer::lex;

    fn run(krate: &str, src: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        let toks = lex(src);
        let rel = format!("crates/{krate}/src/lib.rs");
        let view = FileView::new(rel, krate.to_string(), src, &toks);
        graph::summarise(&mut ws, &view);
        AtomicDiscipline.check_workspace(&ws)
    }

    #[test]
    fn relaxed_store_observed_by_acquire_load_is_flagged() {
        let src = "struct Ring { cursor: AtomicU64 }\n\
                   impl Ring {\n\
                       fn bump(&self) { self.cursor.fetch_add(1, Ordering::Relaxed); }\n\
                       fn snap(&self) -> u64 { self.cursor.load(Ordering::Acquire) }\n\
                   }\n";
        let found = run("telemetry", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "acquire_without_release");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let src = "struct Flag { done: AtomicBool }\n\
                   impl Flag {\n\
                       fn set(&self) { self.done.store(true, Ordering::Release); }\n\
                       fn get(&self) -> bool { self.done.load(Ordering::Acquire) }\n\
                   }\n";
        assert!(run("pool", src).is_empty());
    }

    #[test]
    fn all_relaxed_counter_is_clean() {
        let src = "struct C { hits: AtomicU64 }\n\
                   impl C {\n\
                       fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
                       fn get(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n\
                   }\n";
        assert!(run("telemetry", src).is_empty());
    }

    #[test]
    fn seqcst_is_flagged() {
        let src = "struct Ring { head: AtomicU64 }\n\
                   impl Ring {\n\
                       fn push(&self) { self.head.store(1, Ordering::SeqCst); }\n\
                       fn get(&self) -> u64 { self.head.load(Ordering::Acquire) }\n\
                   }\n";
        let keys: Vec<_> = run("telemetry", src).iter().map(|f| f.key).collect();
        assert!(keys.contains(&"seqcst"));
    }

    #[test]
    fn release_store_with_only_relaxed_loads_is_flagged() {
        let src = "struct F { ready: AtomicBool }\n\
                   impl F {\n\
                       fn set(&self) { self.ready.store(true, Ordering::Release); }\n\
                       fn get(&self) -> bool { self.ready.load(Ordering::Relaxed) }\n\
                   }\n";
        let found = run("core", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "release_without_acquire");
    }

    #[test]
    fn out_of_scope_crate_is_ignored() {
        let src = "struct Ring { cursor: AtomicU64 }\n\
                   impl Ring {\n\
                       fn bump(&self) { self.cursor.fetch_add(1, Ordering::SeqCst); }\n\
                   }\n";
        assert!(run("linalg", src).is_empty());
    }

    #[test]
    fn test_code_ops_are_ignored() {
        let src = "struct Ring { cursor: AtomicU64 }\n\
                   impl Ring {\n\
                       fn bump(&self) { self.cursor.fetch_add(1, Ordering::Relaxed); }\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn probe(r: &super::Ring) { r.cursor.load(Ordering::Acquire); }\n\
                   }\n";
        assert!(run("telemetry", src).is_empty());
    }
}
