//! `panic_freedom`: no panicking constructs in non-test library code.
//!
//! The positioning service's availability contract (ROBUSTNESS.md) is
//! that degraded geometry degrades the *fix quality*, never the
//! process. A stray `unwrap()` deep in a linear-algebra kernel converts
//! a recoverable `SolveError` into an outage, so panicking constructs
//! are denied outside tests and must be either converted to `Result`
//! propagation or allowlisted with a proof of infallibility:
//!
//! * `.unwrap()` / `.expect(…)` method calls (keys `unwrap`, `expect`);
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macro
//!   invocations (key = the macro name);
//! * bare slice/array indexing `a[i]` (key `index`) — `Index` panics on
//!   out-of-range, so hot kernels must justify their bounds reasoning.
//!
//! The index heuristic is token-shaped: a `[` directly after an
//! identifier, `)` or `]` is an index expression; after a keyword
//! (`let [a, b] = …`), `#`, or other punctuation it is a pattern,
//! attribute, array literal or type and is ignored.

use crate::file::{FileView, KEYWORDS};
use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug)]
pub struct PanicFreedom;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic_freedom"
    }

    fn description(&self) -> &'static str {
        "deny unwrap/expect, panicking macros and bare indexing in non-test library code"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for ci in 0..file.code.len() {
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            if file.is_test_line(tok.line) {
                continue;
            }
            match tok.kind {
                TokenKind::Ident => {
                    let prev = file.code_text(ci.wrapping_sub(1));
                    let next = file.code_text(ci + 1);
                    // `.unwrap()` / `.expect(` method calls only — a
                    // field or fn named `unwrap` without the leading
                    // dot is not a panic site.
                    if (tok.text == "unwrap" || tok.text == "expect") && prev == "." && next == "("
                    {
                        let key = if tok.text == "unwrap" {
                            "unwrap"
                        } else {
                            "expect"
                        };
                        out.push(file.finding(
                            self.id(),
                            key,
                            ci,
                            format!("call to `.{}()` can panic; propagate an error instead", key),
                        ));
                    } else if PANIC_MACROS.contains(&tok.text) && next == "!" {
                        let key = PANIC_MACROS
                            .iter()
                            .find(|&&m| m == tok.text)
                            .copied()
                            .unwrap_or("panic");
                        out.push(file.finding(
                            self.id(),
                            key,
                            ci,
                            format!("`{}!` in library code; return an error instead", tok.text),
                        ));
                    }
                }
                TokenKind::Punct if tok.text == "[" => {
                    let Some(prev) = (ci > 0).then(|| file.code_token(ci - 1)).flatten() else {
                        continue;
                    };
                    let indexes = match prev.kind {
                        TokenKind::Ident => !KEYWORDS.contains(&prev.text),
                        TokenKind::Punct => prev.text == ")" || prev.text == "]",
                        _ => false,
                    };
                    if indexes {
                        out.push(
                            file.finding(
                                self.id(),
                                "index",
                                ci,
                                "bare indexing can panic; use `.get()` or justify the bound"
                                    .to_string(),
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileView;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        PanicFreedom.check_file(&view)
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n\
                   let a = x.unwrap();\n\
                   let b = y.expect(\"msg\");\n\
                   panic!(\"boom\");\n\
                   unreachable!();\n\
                   todo!();\n\
                   }\n";
        let keys: Vec<_> = run(src).iter().map(|f| f.key).collect();
        assert_eq!(keys, ["unwrap", "expect", "panic", "unreachable", "todo"]);
    }

    #[test]
    fn flags_bare_indexing_but_not_patterns_or_attrs() {
        let src = "#[derive(Debug)]\n\
                   fn f(v: &[f64]) -> f64 {\n\
                   let [a, b] = [1.0, 2.0];\n\
                   let arr = [0u8; 4];\n\
                   v[3] + a + b + arr.len() as f64\n\
                   }\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "index");
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn chained_and_call_result_indexing_is_flagged() {
        let found = run("fn f() { let x = g()[0]; let y = m[0][1]; }");
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn test_code_and_strings_and_comments_are_ignored() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // a[0].unwrap()\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { x.unwrap(); v[0]; panic!(); }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unwrap_without_dot_or_call_is_ignored() {
        // A fn named unwrap, or a path mention, is not a call site.
        assert!(run("fn unwrap() {} fn g() { let f = Self::unwrap; }").is_empty());
    }
}
