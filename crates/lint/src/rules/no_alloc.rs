//! `no_alloc`: statically deny heap allocation in marked hot regions.
//!
//! The zero-alloc solve paths (PR 3) are guarded at runtime by a
//! counting global allocator in `crates/bench/tests/zero_alloc.rs`, but
//! that probe only sees the code paths the test happens to drive. This
//! rule is the static complement: a region annotated
//!
//! ```text
//! // lint: no_alloc
//! pub fn solve_into(&self, ctx: &mut SolveContext) -> … { … }
//! ```
//!
//! extends from the marker comment through the end of the next item
//! (brace-matched, attributes skipped; for brace-less items, through
//! the terminating `;`). Inside it, any token sequence that allocates —
//! `Vec::new`/`with_capacity`/`from`, `vec![…]`, `.to_vec()`,
//! `Box::new`, `format!`, `String::from`/`new`/`with_capacity`,
//! `.to_string()`, `.to_owned()`, `.clone()`, `.collect()` — is a
//! finding. `.clone()` is included deliberately: on the hot structs it
//! means a deep copy, and a `Copy` type should be copied, not cloned.

use crate::file::FileView;
use crate::findings::Finding;
use crate::graph::{AllocVerdict, Workspace};
use crate::rules::Rule;

/// See module docs.
#[derive(Debug)]
pub struct NoAlloc;

/// Parse a `// lint: <directive> [arg]` marker comment.
pub(crate) fn lint_directive(comment: &str) -> Option<(&str, Option<&str>)> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim();
    let mut parts = rest.splitn(2, char::is_whitespace);
    let directive = parts.next()?;
    Some((directive, parts.next().map(str::trim)))
}

/// Inclusive line range of the item following code index `start`:
/// brace-matched, stacked attributes skipped, `;` ends brace-less items.
fn item_end_line(file: &FileView<'_>, start: usize) -> Option<u32> {
    let mut i = start;
    while file.code_text(i) == "#" && file.code_text(i + 1) == "[" {
        let mut depth = 0i32;
        i += 1;
        loop {
            match file.code_text(i) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                "" => return None,
                _ => {}
            }
            i += 1;
        }
    }
    let mut depth = 0i32;
    loop {
        let tok = file.code_token(i)?;
        match tok.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(tok.line);
                }
            }
            ";" if depth == 0 => return Some(tok.line),
            _ => {}
        }
        i += 1;
    }
}

/// The `no_alloc` regions of a file, as inclusive line ranges.
pub(crate) fn regions(file: &FileView<'_>) -> Vec<(u32, u32)> {
    regions_for(file, "no_alloc")
}

/// The regions marked `// lint: <directive>`, as inclusive line ranges
/// (marker comment through the end of the next item). Shared by
/// `no_alloc`, `cast_truncation` (`wire_format`) and `bounded_loop`.
pub(crate) fn regions_for(file: &FileView<'_>, directive: &str) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for tok in file.tokens.iter().filter(|t| t.is_comment()) {
        let matches = lint_directive(tok.text).map(|(d, _)| d == directive) == Some(true);
        if !matches {
            continue;
        };
        // First code token positioned after the marker.
        let start = file
            .code
            .iter()
            .position(|&i| {
                file.tokens
                    .get(i)
                    .map(|t| (t.line, t.col) > (tok.line, tok.col))
                    .unwrap_or(false)
            })
            .unwrap_or(file.code.len());
        if let Some(end) = item_end_line(file, start) {
            out.push((tok.line, end));
        }
    }
    out
}

/// (key, message) when the code token at `ci` starts an allocating
/// construct. Shared with the workspace call graph, which records the
/// direct allocation sites of *every* function so the transitive check
/// can chase them through calls.
pub(crate) fn alloc_site(file: &FileView<'_>, ci: usize) -> Option<(&'static str, &'static str)> {
    let text = file.code_text(ci);
    let prev = file.code_text(ci.wrapping_sub(1));
    let next = file.code_text(ci + 1);
    let next2 = file.code_text(ci + 2);
    match text {
        "Vec" if next == "::" && matches!(next2, "new" | "with_capacity" | "from") => {
            Some(("vec_alloc", "`Vec` construction allocates"))
        }
        "String" if next == "::" && matches!(next2, "new" | "with_capacity" | "from") => {
            Some(("string_alloc", "`String` construction allocates"))
        }
        "Box" if next == "::" && matches!(next2, "new" | "leak") => {
            Some(("box_new", "`Box` construction allocates"))
        }
        "vec" if next == "!" => Some(("vec_macro", "`vec![…]` allocates")),
        "format" if next == "!" => Some(("format", "`format!` allocates a `String`")),
        "to_vec" | "to_string" | "to_owned" | "clone" | "collect" if prev == "." && next == "(" => {
            match text {
                "to_vec" => Some(("to_vec", "`.to_vec()` allocates")),
                "to_string" => Some(("to_string", "`.to_string()` allocates")),
                "to_owned" => Some(("to_owned", "`.to_owned()` allocates")),
                "collect" => Some(("collect", "`.collect()` usually allocates")),
                _ => Some(("clone", "`.clone()` deep-copies; hot paths reuse buffers")),
            }
        }
        _ => None,
    }
}

impl Rule for NoAlloc {
    fn id(&self) -> &'static str {
        "no_alloc"
    }

    fn description(&self) -> &'static str {
        "deny allocating constructs inside `// lint: no_alloc` regions"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        let regions = regions(file);
        if regions.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ci in 0..file.code.len() {
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            let in_region = regions.iter().any(|&(s, e)| tok.line >= s && tok.line <= e);
            if !in_region || file.is_test_line(tok.line) {
                continue;
            }
            if let Some((key, message)) = alloc_site(file, ci) {
                out.push(file.finding(
                    self.id(),
                    key,
                    ci,
                    format!("{message} inside a `// lint: no_alloc` region"),
                ));
            }
        }
        out
    }

    /// The transitive obligation: a call *from* a `no_alloc` region
    /// must not reach an allocating function, however many hops away.
    /// Direct allocations in the region itself are already reported by
    /// [`Rule::check_file`]; this pass only chases calls.
    fn check_workspace(&mut self, ws: &Workspace) -> Vec<Finding> {
        let mut memo = vec![AllocVerdict::Unknown; ws.fns.len()];
        let mut out = Vec::new();
        for (idx, f) in ws.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for call in &f.calls {
                if !call.in_no_alloc {
                    continue;
                }
                for callee in ws.resolve(idx, call) {
                    if callee == idx {
                        continue;
                    }
                    if let Some(reason) = ws.may_alloc(callee, &mut memo) {
                        out.push(Finding {
                            rule: self.id(),
                            key: "transitive",
                            file: call.site.rel.clone(),
                            line: call.site.line,
                            col: call.site.col,
                            message: format!(
                                "call to `{}` inside a `// lint: no_alloc` region may \
                                 allocate: {reason}",
                                call.name
                            ),
                            snippet: call.site.snippet.clone(),
                        });
                        break; // one finding per call site
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        NoAlloc.check_file(&view)
    }

    #[test]
    fn directive_parsing() {
        assert_eq!(
            lint_directive("// lint: no_alloc"),
            Some(("no_alloc", None))
        );
        assert_eq!(
            lint_directive("//lint: metric bench.*"),
            Some(("metric", Some("bench.*")))
        );
        assert_eq!(lint_directive("// just a comment"), None);
    }

    #[test]
    fn allocations_inside_region_are_flagged() {
        let src = "// lint: no_alloc\n\
                   fn hot(&self) {\n\
                   let v = Vec::new();\n\
                   let w = vec![1, 2];\n\
                   let s = format!(\"x\");\n\
                   let t = other.clone();\n\
                   let u = slice.to_vec();\n\
                   }\n";
        let keys: Vec<_> = run(src).iter().map(|f| f.key).collect();
        assert_eq!(
            keys,
            ["vec_alloc", "vec_macro", "format", "clone", "to_vec"]
        );
    }

    #[test]
    fn region_ends_at_item_close() {
        let src = "// lint: no_alloc\n\
                   fn hot() { let x = 1; }\n\
                   fn cold() { let v = Vec::new(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn attributes_between_marker_and_item_are_skipped() {
        let src = "// lint: no_alloc\n\
                   #[inline]\n\
                   fn hot() { buf.push(x.clone()); }\n\
                   fn cold() { y.clone(); }\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn unannotated_files_report_nothing() {
        assert!(run("fn f() { let v = vec![1]; }").is_empty());
    }

    #[test]
    fn clone_in_string_or_comment_is_ignored() {
        let src = "// lint: no_alloc\n\
                   fn hot() { let m = \"x.clone()\"; /* y.clone() */ }\n";
        assert!(run(src).is_empty());
    }

    fn run_transitive(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        let mut ws = Workspace::default();
        crate::graph::summarise(&mut ws, &view);
        NoAlloc.check_workspace(&ws)
    }

    #[test]
    fn one_call_deep_allocation_is_flagged_transitively() {
        let src = "// lint: no_alloc\n\
                   fn hot() { helper(); }\n\
                   fn helper() { let v = Vec::new(); }\n";
        let found = run_transitive(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "transitive");
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("`helper`"));
    }

    #[test]
    fn two_calls_deep_reports_the_chain() {
        let src = "// lint: no_alloc\n\
                   fn hot() { mid(); }\n\
                   fn mid() { deep(); }\n\
                   fn deep() { let s = format!(\"x\"); }\n";
        let found = run_transitive(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`mid`"));
        assert!(found[0].message.contains("format!"));
    }

    #[test]
    fn clean_callees_stay_clean() {
        let src = "// lint: no_alloc\n\
                   fn hot() { helper(3); }\n\
                   fn helper(n: u32) -> u32 { n * 2 }\n";
        assert!(run_transitive(src).is_empty());
    }

    #[test]
    fn calls_outside_regions_are_not_chased() {
        let src = "fn cold() { helper(); }\n\
                   fn helper() { let v = Vec::new(); }\n";
        assert!(run_transitive(src).is_empty());
    }
}
