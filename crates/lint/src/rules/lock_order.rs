//! `lock_order`: deadlock detection via the acquisition-order graph.
//!
//! The fleet service (PR 6) holds a shard mutex while producing work,
//! the pool holds its queue mutex around the condvar, and the metric
//! sinks take registry `RwLock`s from inside worker code. A deadlock
//! needs two threads acquiring the same two locks in opposite orders —
//! invisible to the per-file `lock_discipline` rule, which only checks
//! poison handling.
//!
//! This rule builds a global digraph over *lock names* (the receiver
//! field/binding a `.lock()` / `.read()` / `.write()` is invoked on):
//! an edge `a → b` means some function acquires `b` while a guard for
//! `a` is live — directly, or by calling (transitively) a function
//! that acquires `b`. Guard liveness follows the workspace summaries:
//! bound guards live to the end of their block unless `drop(guard)`
//! releases them early; chained temporaries die at their statement.
//! Any cycle in the graph (including a self-edge, i.e. re-acquiring a
//! lock of the same name while holding one) is a finding.
//!
//! Names are merged across the workspace, so two unrelated `state`
//! mutexes in different crates would share a node. That
//! over-approximates — acceptable for a deadlock check, and the repo's
//! lock names are distinct in practice.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::file::FileView;
use crate::findings::Finding;
use crate::graph::{Site, Workspace};
use crate::rules::Rule;

/// Crates whose locks participate in the graph (the concurrent core;
/// linalg and bench hold no locks worth modelling).
const SCOPED_CRATES: &[&str] = &["pool", "telemetry", "core"];

/// See module docs.
#[derive(Debug, Default)]
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock_order"
    }

    fn description(&self) -> &'static str {
        "fail on cycles in the Mutex/RwLock acquisition-order graph"
    }

    fn check_file(&mut self, _file: &FileView<'_>) -> Vec<Finding> {
        Vec::new()
    }

    fn check_workspace(&mut self, ws: &Workspace) -> Vec<Finding> {
        // Edge set with one representative site per edge.
        let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
        let mut lock_memo: Vec<Option<Vec<String>>> = vec![None; ws.fns.len()];
        for (idx, f) in ws.fns.iter().enumerate() {
            if f.is_test || !SCOPED_CRATES.contains(&f.krate.as_str()) {
                continue;
            }
            // Direct nesting: acquire `b` while holding `a`.
            for acq in &f.locks {
                for held in &acq.holding {
                    edges
                        .entry((held.clone(), acq.name.clone()))
                        .or_insert_with(|| acq.site.clone());
                }
            }
            // Interprocedural: call out while holding `a`; the callee
            // (transitively) acquires `b`.
            for call in &f.calls {
                if call.holding.is_empty() {
                    continue;
                }
                for callee in ws.resolve(idx, call) {
                    // A call resolving back to the caller itself is a
                    // resolution artefact (e.g. `.flush()` on a guard
                    // inside `fn flush`), not recursion evidence.
                    if callee == idx {
                        continue;
                    }
                    for target in ws.transitive_locks(callee, &mut lock_memo) {
                        for held in &call.holding {
                            edges
                                .entry((held.clone(), target.clone()))
                                .or_insert_with(|| call.site.clone());
                        }
                    }
                }
            }
        }

        // Cycle detection: iteratively strip nodes with no outgoing or
        // no incoming edges; whatever survives lies on a cycle.
        let mut live: BTreeSet<(String, String)> = edges.keys().cloned().collect();
        loop {
            let froms: BTreeSet<String> = live.iter().map(|(a, _)| a.clone()).collect();
            let tos: BTreeSet<String> = live.iter().map(|(_, b)| b.clone()).collect();
            let before = live.len();
            live.retain(|(a, b)| tos.contains(a) && froms.contains(b));
            if live.len() == before {
                break;
            }
        }
        if live.is_empty() {
            return Vec::new();
        }

        // Group the surviving edges into one finding per connected
        // cluster (a cheap stand-in for per-SCC grouping: clusters
        // share lock names).
        let mut clusters: Vec<BTreeSet<(String, String)>> = Vec::new();
        for edge in &live {
            let mut joined = false;
            for cluster in clusters.iter_mut() {
                if cluster
                    .iter()
                    .any(|(a, b)| *a == edge.0 || *b == edge.0 || *a == edge.1 || *b == edge.1)
                {
                    cluster.insert(edge.clone());
                    joined = true;
                    break;
                }
            }
            if !joined {
                clusters.push([edge.clone()].into_iter().collect());
            }
        }

        let mut out = Vec::new();
        for cluster in clusters {
            let parts: Vec<String> = cluster
                .iter()
                .map(|e| {
                    let s = &edges[e];
                    format!("`{}` → `{}` ({}:{})", e.0, e.1, s.rel, s.line)
                })
                .collect();
            let anchor = cluster
                .iter()
                .next()
                .map(|e| edges[e].clone())
                .unwrap_or(Site {
                    rel: String::new(),
                    line: 0,
                    col: 0,
                    snippet: String::new(),
                });
            out.push(Finding {
                rule: self.id(),
                key: "cycle",
                file: anchor.rel,
                line: anchor.line,
                col: anchor.col,
                message: format!(
                    "lock acquisition-order cycle (potential deadlock): {}",
                    parts.join(", ")
                ),
                snippet: anchor.snippet,
            });
        }
        out
    }

    fn finish(&mut self, _root: &Path) -> Vec<Finding> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::lexer::lex;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Finding> {
        let mut ws = Workspace::default();
        for (rel, krate, src) in files {
            let toks = lex(src);
            let view = FileView::new(rel.to_string(), krate.to_string(), src, &toks);
            graph::summarise(&mut ws, &view);
        }
        LockOrder.check_workspace(&ws)
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn ab(&self) {\n\
                       let g = self.alpha.lock().unwrap();\n\
                       let h = self.beta.lock().unwrap();\n\
                   }\n\
                   fn ba(&self) {\n\
                       let h = self.beta.lock().unwrap();\n\
                       let g = self.alpha.lock().unwrap();\n\
                   }\n\
                   }\n";
        let found = run(&[("crates/pool/src/lib.rs", "pool", src)]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "cycle");
        assert!(found[0].message.contains("`alpha` → `beta`"));
        assert!(found[0].message.contains("`beta` → `alpha`"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn ab(&self) {\n\
                       let g = self.alpha.lock().unwrap();\n\
                       let h = self.beta.lock().unwrap();\n\
                   }\n\
                   fn ab2(&self) {\n\
                       let g = self.alpha.lock().unwrap();\n\
                       let h = self.beta.lock().unwrap();\n\
                   }\n\
                   }\n";
        assert!(run(&[("crates/pool/src/lib.rs", "pool", src)]).is_empty());
    }

    #[test]
    fn interprocedural_cycle_is_found() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn ab(&self) {\n\
                       let g = self.alpha.lock().unwrap();\n\
                       self.take_beta();\n\
                   }\n\
                   fn take_beta(&self) {\n\
                       let h = self.beta.lock().unwrap();\n\
                   }\n\
                   fn ba(&self) {\n\
                       let h = self.beta.lock().unwrap();\n\
                       let g = self.alpha.lock().unwrap();\n\
                   }\n\
                   }\n";
        let found = run(&[("crates/core/src/service.rs", "core", src)]);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn drop_breaks_the_nesting() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn ab(&self) {\n\
                       let g = self.alpha.lock().unwrap();\n\
                       drop(g);\n\
                       let h = self.beta.lock().unwrap();\n\
                   }\n\
                   fn ba(&self) {\n\
                       let h = self.beta.lock().unwrap();\n\
                       drop(h);\n\
                       let g = self.alpha.lock().unwrap();\n\
                   }\n\
                   }\n";
        assert!(run(&[("crates/pool/src/lib.rs", "pool", src)]).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn ab(&self) {\n\
                       let g = self.alpha.lock().unwrap();\n\
                       let h = self.beta.lock().unwrap();\n\
                   }\n\
                   fn ba(&self) {\n\
                       let h = self.beta.lock().unwrap();\n\
                       let g = self.alpha.lock().unwrap();\n\
                   }\n\
                   }\n";
        assert!(run(&[("crates/linalg/src/lib.rs", "linalg", src)]).is_empty());
    }
}
