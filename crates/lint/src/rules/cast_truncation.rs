//! `cast_truncation`: audit the binary wire-format paths.
//!
//! The `GPSFREC1` flight-recorder dump and the `GPSJRNL1` journal are
//! length-prefixed binary formats. A silently truncating `as` cast on
//! a length or an overflowing `cursor + …` offset computation corrupts
//! the stream in a way that only surfaces as a torn-tail or checksum
//! mismatch much later. Encode/decode functions are annotated
//!
//! ```text
//! // lint: wire_format
//! fn to_bytes(&self) -> Vec<u8> { … }
//! ```
//!
//! (same region semantics as `no_alloc`: marker through the end of the
//! next item). Inside a region this rule flags
//!
//! * `expr as u8|u16|u32|i8|i16|i32` — narrowing casts that drop high
//!   bits silently. Exempt when the source is visibly masked
//!   (`(x & 0xffff) as u16` with a mask that fits the target) or
//!   shifted down from a u64 so only target-width bits remain
//!   (`(meta >> 48) as u16`). Everything else needs `try_from` or an
//!   allowlist entry arguing the value's range.
//! * `+`/`-`/`*` on length/offset-ish operands (`len`, `count`,
//!   `words`, `cursor`, `offset`, `at`, or `*_len`-style names) —
//!   unchecked arithmetic that can overflow on adversarial input;
//!   decode paths must use `checked_*`/`saturating_*` instead.

use crate::file::FileView;
use crate::findings::Finding;
use crate::rules::no_alloc_facts;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug, Default)]
pub struct CastTruncation;

/// Max value representable by each flagged narrow target.
fn target_bits(ty: &str) -> Option<u32> {
    match ty {
        "u8" | "i8" => Some(8),
        "u16" | "i16" => Some(16),
        "u32" | "i32" => Some(32),
        _ => None,
    }
}

/// Parse an integer literal token (`255`, `0xffff`, `0xffff_ffff`).
fn int_literal(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = clean.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else {
        clean.parse().ok()
    }
}

/// Identifier names that mark a value as a length/offset in the wire
/// paths.
fn lengthish(name: &str) -> bool {
    matches!(
        name,
        "len" | "count" | "words" | "cursor" | "offset" | "at" | "pos" | "idx"
    ) || name.ends_with("_len")
        || name.ends_with("_count")
        || name.ends_with("_words")
        || name.ends_with("_offset")
}

/// True when the expression feeding `as` (ending at code index
/// `ci - 1`, where `ci` is the `as` token) is visibly range-limited
/// for a `bits`-wide target: a `& mask` with `mask < 2^bits`, or a
/// `>> shift` leaving at most `bits` live bits of a 64-bit source.
fn masked_or_shifted(file: &FileView<'_>, ci: usize, bits: u32) -> bool {
    // Window to inspect: either the parenthesised group just before
    // `as`, or a handful of preceding tokens.
    let (lo, hi) = if file.code_text(ci.wrapping_sub(1)) == ")" {
        let mut depth = 0i32;
        let mut k = ci - 1;
        loop {
            match file.code_text(k) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                break;
            }
            k -= 1;
        }
        (k, ci - 1)
    } else {
        (ci.saturating_sub(4), ci)
    };
    let mut k = lo;
    while k + 1 < hi {
        let t = file.code_text(k);
        if t == "&" {
            if let Some(mask) = int_literal(file.code_text(k + 1)) {
                if bits >= 128 || mask < (1u128 << bits) {
                    return true;
                }
            }
        }
        if t == ">>" {
            if let Some(shift) = int_literal(file.code_text(k + 1)) {
                if shift as u32 >= 64u32.saturating_sub(bits) {
                    return true;
                }
            }
        }
        k += 1;
    }
    false
}

/// True when `ci` sits on a binary `+`/`-`/`*` (not unary/deref).
fn is_binary_op(file: &FileView<'_>, ci: usize) -> bool {
    let prev = file.code_text(ci.wrapping_sub(1));
    let next = file.code_text(ci + 1);
    let operand = |t: &str| -> bool {
        !t.is_empty()
            && (t.chars().next().map(|c| c.is_alphanumeric() || c == '_') == Some(true)
                || t == ")"
                || t == "]")
    };
    let next_operand = |t: &str| -> bool {
        !t.is_empty()
            && (t.chars().next().map(|c| c.is_alphanumeric() || c == '_') == Some(true) || t == "(")
    };
    operand(prev) && next_operand(next)
}

/// Identifiers adjacent to the operator at `ci` (a few tokens each
/// way, stopping at statement-ish boundaries).
fn nearby_idents<'a>(file: &'a FileView<'_>, ci: usize) -> Vec<&'a str> {
    let mut out = Vec::new();
    let stop = |t: &str| matches!(t, ";" | "{" | "}" | "," | "=" | "let");
    let mut k = ci;
    for _ in 0..6 {
        if k == 0 {
            break;
        }
        k -= 1;
        let t = file.code_text(k);
        if stop(t) {
            break;
        }
        out.push(t);
    }
    for k in ci + 1..ci + 7 {
        let t = file.code_text(k);
        if t.is_empty() || stop(t) {
            break;
        }
        out.push(t);
    }
    out
}

impl Rule for CastTruncation {
    fn id(&self) -> &'static str {
        "cast_truncation"
    }

    fn description(&self) -> &'static str {
        "no silent narrowing casts or unchecked length arithmetic in `// lint: wire_format` paths"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        let regions = no_alloc_facts::regions_for(file, "wire_format");
        if regions.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ci in 0..file.code.len() {
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            let line = tok.line;
            if !regions.iter().any(|&(s, e)| line >= s && line <= e) || file.is_test_line(line) {
                continue;
            }
            match tok.text {
                "as" => {
                    let ty = file.code_text(ci + 1);
                    let Some(bits) = target_bits(ty) else {
                        continue;
                    };
                    if masked_or_shifted(file, ci, bits) {
                        continue;
                    }
                    out.push(file.finding(
                        self.id(),
                        "truncating_cast",
                        ci,
                        format!(
                            "`as {ty}` silently drops high bits in a wire-format path; mask the \
                             source (`& 0x…`), shift it into range, or use `try_from` with an \
                             explicit failure"
                        ),
                    ));
                }
                "+" | "-" | "*" => {
                    if !is_binary_op(file, ci) {
                        continue;
                    }
                    if !nearby_idents(file, ci).iter().any(|t| lengthish(t)) {
                        continue;
                    }
                    out.push(file.finding(
                        self.id(),
                        "unchecked_arith",
                        ci,
                        format!(
                            "unchecked `{}` on a length/offset in a wire-format path can \
                             overflow on adversarial input; use `checked_{}` or bound the \
                             operands first",
                            tok.text,
                            match tok.text {
                                "+" => "add",
                                "-" => "sub",
                                _ => "mul",
                            },
                        ),
                    ));
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        CastTruncation.check_file(&view)
    }

    #[test]
    fn unannotated_file_is_ignored() {
        assert!(run("fn f(len: usize) -> u32 { len as u32 }\n").is_empty());
    }

    #[test]
    fn truncating_length_cast_is_flagged() {
        let src = "// lint: wire_format\n\
                   fn encode(len: usize) -> u32 {\n\
                       len as u32\n\
                   }\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "truncating_cast");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn masked_and_shifted_casts_are_exempt() {
        let src = "// lint: wire_format\n\
                   fn decode(meta: u64) -> (u16, u16, u32) {\n\
                       let a = (meta & 0xffff) as u16;\n\
                       let b = (meta >> 48) as u16;\n\
                       let c = (meta >> 32) as u32;\n\
                       (a, b, c)\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn widening_casts_are_fine() {
        let src = "// lint: wire_format\n\
                   fn encode(n: u16) -> u64 { n as u64 }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unchecked_offset_arithmetic_is_flagged() {
        let src = "// lint: wire_format\n\
                   fn frame(cursor: usize, words: usize) -> usize {\n\
                       cursor + 16 + 8 * words\n\
                   }\n";
        let found = run(src);
        assert!(found.iter().all(|f| f.key == "unchecked_arith"));
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn arithmetic_without_lengthish_operands_is_fine() {
        let src = "// lint: wire_format\n\
                   fn mix(a: u64, b: u64) -> u64 { a * 31 + b }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn region_ends_at_item_close() {
        let src = "// lint: wire_format\n\
                   fn encode(len: usize) -> u64 { len as u64 }\n\
                   fn unrelated(len: usize) -> u32 { len as u32 }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn literal_parsing_handles_underscores_and_hex() {
        assert_eq!(int_literal("0xffff_ffff"), Some(0xffff_ffff));
        assert_eq!(int_literal("255"), Some(255));
        assert_eq!(int_literal("0b1111"), Some(15));
        assert_eq!(int_literal("abc"), None);
    }
}
