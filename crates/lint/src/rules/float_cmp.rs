//! `float_cmp`: no exact float equality in solver-critical crates.
//!
//! Boutin & Kemper's solvability analysis (PAPERS.md) shows the GPS
//! algebraic solution set collapsing near degenerate geometry — exactly
//! where accumulated rounding makes `==` on an `f64` a coin flip. In
//! `crates/linalg` and `crates/core`, `==`/`!=` where either operand is
//! visibly a float (a float literal, possibly negated, or an `f64::`/
//! `f32::` associated constant) is denied outside tests; comparisons
//! must use a tolerance (`(a - b).abs() < EPS`) or be allowlisted with
//! a justification (e.g. comparing against an exact sentinel that was
//! stored, never computed).
//!
//! The check is token-local and typeless: `a == b` between two float
//! *variables* is invisible to it. That is the accepted trade-off for a
//! lexer-level pass; the rule documents the floor, clippy's
//! `float_cmp` (type-aware) would be the ceiling.

use crate::file::FileView;
use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug)]
pub struct FloatCmp;

/// Crates whose solver kernels get the exact-comparison ban.
const SCOPED_CRATES: &[&str] = &["linalg", "core"];

const FLOAT_CONSTS: &[&str] = &[
    "INFINITY",
    "NEG_INFINITY",
    "NAN",
    "EPSILON",
    "MAX",
    "MIN",
    "MIN_POSITIVE",
];

fn is_float_ty(text: &str) -> bool {
    text == "f64" || text == "f32"
}

impl Rule for FloatCmp {
    fn id(&self) -> &'static str {
        "float_cmp"
    }

    fn description(&self) -> &'static str {
        "deny ==/!= against float operands in crates/linalg and crates/core"
    }

    fn check_file(&mut self, file: &FileView<'_>) -> Vec<Finding> {
        if !SCOPED_CRATES.contains(&file.krate.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ci in 0..file.code.len() {
            let Some(tok) = file.code_token(ci) else {
                continue;
            };
            if tok.kind != TokenKind::Punct || (tok.text != "==" && tok.text != "!=") {
                continue;
            }
            if file.is_test_line(tok.line) {
                continue;
            }

            // Right operand: `== 1.0`, `== -1.0`, `== f64::INFINITY`.
            let next = file.code_token(ci + 1);
            let right_float = match next.map(|t| (t.kind, t.text)) {
                Some((TokenKind::Float, _)) => true,
                Some((TokenKind::Punct, "-")) => file
                    .code_token(ci + 2)
                    .map(|t| t.kind == TokenKind::Float)
                    .unwrap_or(false),
                Some((TokenKind::Ident, t)) if is_float_ty(t) => file.code_text(ci + 2) == "::",
                _ => false,
            };

            // Left operand: `1.0 ==`, `f64::NAN ==`.
            let prev = file.code_token(ci.wrapping_sub(1));
            let left_float = match prev.map(|t| (t.kind, t.text)) {
                Some((TokenKind::Float, _)) => true,
                Some((TokenKind::Ident, t)) if FLOAT_CONSTS.contains(&t) => {
                    file.code_text(ci.wrapping_sub(2)) == "::"
                        && is_float_ty(file.code_text(ci.wrapping_sub(3)))
                }
                _ => false,
            };

            if right_float || left_float {
                out.push(file.finding(
                    self.id(),
                    "float_eq",
                    ci,
                    format!(
                        "exact `{}` against a float; compare with a tolerance instead",
                        tok.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_in(krate: &str, src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let view = FileView::new(
            format!("crates/{krate}/src/lib.rs"),
            krate.into(),
            src,
            &toks,
        );
        FloatCmp.check_file(&view)
    }

    #[test]
    fn flags_literal_and_const_comparisons() {
        let src = "fn f(x: f64) -> bool {\n\
                   if x == 0.0 { return true; }\n\
                   if 1.5 != x { return true; }\n\
                   if x == -2.5 { return true; }\n\
                   if x == f64::INFINITY { return true; }\n\
                   if f64::NAN == x { return true; }\n\
                   false\n\
                   }\n";
        let found = run_in("linalg", src);
        assert_eq!(found.len(), 5);
        assert!(found.iter().all(|f| f.key == "float_eq"));
    }

    #[test]
    fn integer_comparisons_are_fine() {
        let src = "fn f(n: usize) -> bool { n == 0 || n != 3 }";
        assert!(run_in("core", src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        assert!(run_in("sim", src).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(x: f64) -> bool { x == 1.0 }\n}\n";
        assert!(run_in("linalg", src).is_empty());
    }

    #[test]
    fn tolerance_comparison_passes() {
        let src = "fn close(a: f64, b: f64) -> bool { (a - b).abs() < 1e-9 }";
        assert!(run_in("linalg", src).is_empty());
    }
}
