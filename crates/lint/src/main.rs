//! `gps-lint` binary: run the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p gps-lint                      # all rules, text output
//! cargo run -p gps-lint -- --rule no_alloc   # one rule
//! cargo run -p gps-lint -- --format json     # JSON report on stdout
//! cargo run -p gps-lint -- --root <dir>      # lint another tree (fixtures)
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 configuration error. Unless
//! `--no-report` is given, the full report is also written to
//! `<root>/lint-report.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use gps_lint::driver::{self, Options};
use gps_lint::rules;

const USAGE: &str = "\
gps-lint: static analysis for the gps-repro workspace

USAGE:
    gps-lint [--root <dir>] [--rule <id>[,<id>…]] [--format text|json]
             [--report <path>] [--no-report] [--allowlist <path>]
             [--list-rules] [--help]

Exit codes: 0 clean, 1 findings, 2 configuration error.";

#[derive(Debug)]
struct Cli {
    opts: Options,
    format_json: bool,
    report_path: Option<PathBuf>,
    no_report: bool,
}

fn default_root() -> PathBuf {
    // The binary lives in crates/lint; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        opts: Options::new(default_root()),
        format_json: false,
        report_path: None,
        no_report: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-rules" => {
                for rule in rules::all() {
                    println!("{:<16} {}", rule.id(), rule.description());
                }
                return Ok(None);
            }
            "--root" => cli.opts.root = PathBuf::from(value("--root")?),
            "--rule" => {
                let ids = value("--rule")?;
                cli.opts
                    .rule_filter
                    .extend(ids.split(',').map(|s| s.trim().to_string()));
            }
            "--format" => match value("--format")?.as_str() {
                "json" => cli.format_json = true,
                "text" => cli.format_json = false,
                other => return Err(format!("unknown format `{other}` (text|json)")),
            },
            "--report" => cli.report_path = Some(PathBuf::from(value("--report")?)),
            "--no-report" => cli.no_report = true,
            "--allowlist" => cli.opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(cli))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gps-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let report = match driver::run(&cli.opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("gps-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.format_json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "gps-lint: {} finding(s), {} suppressed by allowlist, {} file(s) scanned, rules: {}",
            report.findings.len(),
            report.suppressed,
            report.files_scanned,
            report.rules.join(",")
        );
    }

    if !cli.no_report {
        let path = cli
            .report_path
            .clone()
            .unwrap_or_else(|| cli.opts.root.join("lint-report.json"));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("gps-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
