//! A hand-rolled recursive-descent *item* parser on top of the lexer.
//!
//! gps-lint v1 worked purely on token patterns; the interprocedural
//! rules (transitive `no_alloc`, `lock_order`, `atomic_discipline`)
//! need to know where functions begin and end, which impl a method
//! belongs to, and which struct fields hold atomics. This parser
//! recovers exactly that: an item tree with line spans and code-index
//! body ranges. It is *approximate* by design — expressions are never
//! parsed, unknown constructs are skipped token-by-token, and a parse
//! hiccup degrades coverage instead of failing the lint pass.
//!
//! Grammar subset recognised (everything else is tolerated and
//! skipped): `mod` (inline and file-level), `fn` with modifier
//! prefixes (`pub(…)`, `const`, `async`, `unsafe`, `extern "C"`),
//! `impl Type` / `impl Trait for Type` blocks, `struct` with named
//! fields, `trait` blocks, and brace-less items terminated by `;`.

use crate::file::{FileView, KEYWORDS};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Impl,
    Struct,
    Trait,
}

/// One named field of a struct (used by `atomic_discipline` to find
/// `AtomicU64`-typed fields).
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// The field's type as space-joined tokens, e.g. `Atomic U64` is
    /// never split — tokens join to `AtomicU64`-adjacent text like
    /// `Arc < AtomicU64 >`.
    pub ty: String,
    pub line: u32,
}

/// One parsed item with its span and (for braced items) the
/// code-index range of its body.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name; for `impl` blocks this is the self type head.
    pub name: String,
    /// For `fn` items inside an `impl`: the impl's self-type head
    /// (`WorkerRing` for `impl WorkerRing { … }` and
    /// `impl Drop for WorkerRing { … }` alike).
    pub self_ty: Option<String>,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// 1-based line of the closing brace / terminating `;`.
    pub end_line: u32,
    /// Code-token indices of the `{` and `}` delimiting the body.
    pub body: Option<(usize, usize)>,
    /// Nested items (mod/impl/trait contents; fns nested in fns).
    pub children: Vec<Item>,
    /// Named struct fields (empty for everything but `struct`).
    pub fields: Vec<Field>,
}

impl Item {
    /// Depth-first walk over this item and all children.
    pub fn walk<'s>(&'s self, f: &mut impl FnMut(&'s Item)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// Parse the item tree of one file. Never fails: unparseable stretches
/// are skipped a token at a time.
pub fn parse_items(file: &FileView<'_>) -> Vec<Item> {
    let mut p = Parser { file, i: 0 };
    p.items(file.code.len(), None)
}

/// Every `fn` item in the tree, flattened depth-first.
pub fn all_fns(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    for item in items {
        item.walk(&mut |it| {
            if it.kind == ItemKind::Fn {
                out.push(it);
            }
        });
    }
    out
}

struct Parser<'a, 'b> {
    file: &'b FileView<'a>,
    i: usize,
}

impl Parser<'_, '_> {
    fn text(&self, k: usize) -> &str {
        self.file.code_text(k)
    }

    fn line(&self, k: usize) -> u32 {
        self.file
            .code_token(k)
            .map(|t| t.line)
            .unwrap_or_else(|| self.file.src.lines().count().max(1) as u32)
    }

    fn is_ident(&self, k: usize) -> bool {
        let t = self.text(k);
        !t.is_empty()
            && t.chars()
                .next()
                .map(|c| c.is_alphabetic() || c == '_')
                .unwrap_or(false)
            && !KEYWORDS.contains(&t)
    }

    /// Skip `#[…]` / `#![…]` attribute groups at `self.i`.
    fn skip_attrs(&mut self) {
        loop {
            let j = if self.text(self.i) == "#" && self.text(self.i + 1) == "[" {
                self.i + 1
            } else if self.text(self.i) == "#"
                && self.text(self.i + 1) == "!"
                && self.text(self.i + 2) == "["
            {
                self.i + 2
            } else {
                return;
            };
            let mut depth = 0i32;
            let mut k = j;
            loop {
                match self.text(k) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    "" => {
                        self.i = k;
                        return;
                    }
                    _ => {}
                }
                k += 1;
            }
            self.i = k;
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in …)`.
    fn skip_visibility(&mut self) {
        if self.text(self.i) == "pub" {
            self.i += 1;
            if self.text(self.i) == "(" {
                self.skip_balanced("(", ")");
            }
        }
    }

    /// Skip a balanced `open … close` group starting at `self.i`
    /// (which must sit on `open`).
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        while self.i < self.file.code.len() {
            let t = self.text(self.i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip a generics group `<…>` if present. `<<`/`>>` lex as one
    /// token, so depth is counted per angle character; `->` is not an
    /// angle.
    fn skip_generics(&mut self) {
        if self.text(self.i) != "<" && self.text(self.i) != "<<" {
            return;
        }
        let mut depth = 0i32;
        while self.i < self.file.code.len() {
            match self.text(self.i) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            self.i += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Advance to the first `{` or terminating `;` at the current
    /// nesting, then consume the braced body. Returns the body range
    /// and the item's end line.
    fn finish_item(&mut self) -> (Option<(usize, usize)>, u32) {
        while self.i < self.file.code.len() {
            match self.text(self.i) {
                "{" => {
                    let open = self.i;
                    self.skip_balanced("{", "}");
                    let close = self.i.saturating_sub(1);
                    return (Some((open, close)), self.line(close));
                }
                ";" => {
                    let end = self.line(self.i);
                    self.i += 1;
                    return (None, end);
                }
                // `impl Iterator<Item = …>` in a return type.
                "<" | "<<" => self.skip_generics(),
                "" => break,
                _ => self.i += 1,
            }
        }
        (None, self.line(self.i.saturating_sub(1)))
    }

    /// Parse items until `limit` (exclusive code index).
    fn items(&mut self, limit: usize, self_ty: Option<&str>) -> Vec<Item> {
        let mut out = Vec::new();
        while self.i < limit && self.i < self.file.code.len() {
            let before = self.i;
            self.skip_attrs();
            self.skip_visibility();
            if let Some(item) = self.item(self_ty) {
                out.push(item);
            }
            if self.i <= before {
                // Error tolerance: always make progress.
                self.i = before + 1;
            }
        }
        out
    }

    /// Try to parse one item at `self.i`; `None` skips a construct we
    /// do not model (advancing past it).
    fn item(&mut self, self_ty: Option<&str>) -> Option<Item> {
        let start = self.i;
        let line = self.line(start);
        match self.text(self.i) {
            "mod" => {
                let name = self.text(self.i + 1).to_string();
                self.i += 2;
                if self.text(self.i) == ";" {
                    let end = self.line(self.i);
                    self.i += 1;
                    return Some(self.node(ItemKind::Mod, name, None, line, end, None));
                }
                if self.text(self.i) != "{" {
                    return None;
                }
                let open = self.i;
                self.skip_balanced("{", "}");
                let close = self.i.saturating_sub(1);
                let save = self.i;
                self.i = open + 1;
                let children = self.items(close, None);
                self.i = save;
                let mut item = self.node(
                    ItemKind::Mod,
                    name,
                    None,
                    line,
                    self.line(close),
                    Some((open, close)),
                );
                item.children = children;
                Some(item)
            }
            "const" if self.text(self.i + 1) != "fn" => {
                // `const NAME: T = …;` — skip to `;` outside braces.
                self.skip_to_semi();
                None
            }
            "static" | "use" | "type" => {
                self.skip_to_semi();
                None
            }
            "extern" if self.text(self.i + 1) == "crate" => {
                self.skip_to_semi();
                None
            }
            "macro_rules" => {
                // `macro_rules ! name { … }`
                self.i += 3;
                if self.text(self.i) == "{" || self.text(self.i) == "(" || self.text(self.i) == "["
                {
                    let close = match self.text(self.i) {
                        "{" => "}",
                        "(" => ")",
                        _ => "]",
                    };
                    let open = self.text(self.i).to_string();
                    self.skip_balanced(&open, close);
                }
                None
            }
            "const" | "async" | "unsafe" | "extern" if self.sees_fn_ahead() => {
                self.skip_fn_modifiers();
                self.fn_item(self_ty, line)
            }
            "fn" => self.fn_item(self_ty, line),
            "impl" => {
                self.i += 1;
                self.skip_generics();
                // Path until `{` / `for` / `where`; on `for`, re-read
                // the self type after it.
                let mut head = self.path_head();
                while self.i < self.file.code.len()
                    && !matches!(self.text(self.i), "{" | "for" | "where" | "")
                {
                    if self.text(self.i) == "<" || self.text(self.i) == "<<" {
                        self.skip_generics();
                    } else {
                        self.i += 1;
                    }
                }
                if self.text(self.i) == "for" {
                    self.i += 1;
                    head = self.path_head();
                }
                while self.i < self.file.code.len() && self.text(self.i) != "{" {
                    if self.text(self.i).is_empty() {
                        return None;
                    }
                    if self.text(self.i) == "<" || self.text(self.i) == "<<" {
                        self.skip_generics();
                    } else {
                        self.i += 1;
                    }
                }
                if self.text(self.i) != "{" {
                    return None;
                }
                let open = self.i;
                self.skip_balanced("{", "}");
                let close = self.i.saturating_sub(1);
                let save = self.i;
                self.i = open + 1;
                let children = self.items(close, Some(&head));
                self.i = save;
                let mut item = self.node(
                    ItemKind::Impl,
                    head,
                    None,
                    line,
                    self.line(close),
                    Some((open, close)),
                );
                item.children = children;
                Some(item)
            }
            "struct" => {
                let name = self.text(self.i + 1).to_string();
                self.i += 2;
                self.skip_generics();
                if self.text(self.i) == "where" {
                    while self.i < self.file.code.len()
                        && !matches!(self.text(self.i), "{" | ";" | "")
                    {
                        if self.text(self.i) == "<" || self.text(self.i) == "<<" {
                            self.skip_generics();
                        } else {
                            self.i += 1;
                        }
                    }
                }
                if self.text(self.i) == "(" {
                    // Tuple struct: no named fields to record.
                    self.skip_balanced("(", ")");
                    self.skip_to_semi();
                    let end = self.line(self.i.saturating_sub(1));
                    return Some(self.node(ItemKind::Struct, name, None, line, end, None));
                }
                if self.text(self.i) != "{" {
                    self.skip_to_semi();
                    let end = self.line(self.i.saturating_sub(1));
                    return Some(self.node(ItemKind::Struct, name, None, line, end, None));
                }
                let open = self.i;
                self.skip_balanced("{", "}");
                let close = self.i.saturating_sub(1);
                let mut item = self.node(
                    ItemKind::Struct,
                    name,
                    None,
                    line,
                    self.line(close),
                    Some((open, close)),
                );
                item.fields = self.struct_fields(open, close);
                Some(item)
            }
            "trait" => {
                let name = self.text(self.i + 1).to_string();
                self.i += 2;
                self.skip_generics();
                while self.i < self.file.code.len() && !matches!(self.text(self.i), "{" | ";" | "")
                {
                    if self.text(self.i) == "<" || self.text(self.i) == "<<" {
                        self.skip_generics();
                    } else {
                        self.i += 1;
                    }
                }
                if self.text(self.i) != "{" {
                    self.skip_to_semi();
                    return None;
                }
                let open = self.i;
                self.skip_balanced("{", "}");
                let close = self.i.saturating_sub(1);
                let save = self.i;
                self.i = open + 1;
                let children = self.items(close, Some(&name));
                self.i = save;
                let mut item = self.node(
                    ItemKind::Trait,
                    name,
                    None,
                    line,
                    self.line(close),
                    Some((open, close)),
                );
                item.children = children;
                Some(item)
            }
            _ => None,
        }
    }

    /// True when a `fn` keyword follows the modifier run starting at
    /// `self.i` (`const`, `async`, `unsafe`, `extern "C"` in any
    /// plausible order).
    fn sees_fn_ahead(&self) -> bool {
        let mut k = self.i;
        for _ in 0..5 {
            match self.text(k) {
                "fn" => return true,
                "const" | "async" | "unsafe" => k += 1,
                "extern" => {
                    k += 1;
                    if self.file.code_token(k).map(|t| t.text.starts_with('"')) == Some(true) {
                        k += 1;
                    }
                }
                _ => return false,
            }
        }
        false
    }

    fn skip_fn_modifiers(&mut self) {
        while matches!(self.text(self.i), "const" | "async" | "unsafe" | "extern") {
            if self.text(self.i) == "extern" {
                self.i += 1;
                if self
                    .file
                    .code_token(self.i)
                    .map(|t| t.text.starts_with('"'))
                    == Some(true)
                {
                    self.i += 1;
                }
            } else {
                self.i += 1;
            }
        }
    }

    /// Parse a `fn` item; `self.i` sits on the `fn` keyword.
    fn fn_item(&mut self, self_ty: Option<&str>, line: u32) -> Option<Item> {
        debug_assert_eq!(self.text(self.i), "fn");
        let name = self.text(self.i + 1).to_string();
        if name.is_empty() {
            return None;
        }
        self.i += 2;
        self.skip_generics();
        if self.text(self.i) == "(" {
            self.skip_balanced("(", ")");
        }
        let (body, end) = self.finish_item();
        let mut item = self.node(
            ItemKind::Fn,
            name,
            self_ty.map(str::to_string),
            line,
            end,
            body,
        );
        if let Some((open, close)) = body {
            // Nested fns (closures are not items; `fn` inside a body
            // is rare but real in test helpers).
            let save = self.i;
            self.i = open + 1;
            item.children = self.nested_fns(close, self_ty);
            self.i = save;
        }
        Some(item)
    }

    /// Scan a fn body for nested `fn` items only (no full item parse:
    /// statements would confuse the item grammar).
    fn nested_fns(&mut self, limit: usize, self_ty: Option<&str>) -> Vec<Item> {
        let mut out = Vec::new();
        while self.i < limit {
            if self.text(self.i) == "fn" && self.is_ident(self.i + 1) {
                let line = self.line(self.i);
                if let Some(f) = self.fn_item(self_ty, line) {
                    out.push(f);
                    continue;
                }
            }
            self.i += 1;
        }
        out
    }

    /// The head identifier of a type path at `self.i`
    /// (`telemetry :: recorder :: WorkerRing < T >` → `WorkerRing`):
    /// the last identifier before generics/end-of-path.
    fn path_head(&mut self) -> String {
        let mut head = String::new();
        while self.i < self.file.code.len() {
            let t = self.text(self.i);
            if self.is_ident(self.i) {
                head = t.to_string();
                self.i += 1;
            } else if t == "::" || t == "&" || t == "'" || t.starts_with('\'') || t == "dyn" {
                self.i += 1;
            } else if t == "<" || t == "<<" {
                self.skip_generics();
                break;
            } else {
                break;
            }
        }
        head
    }

    /// Skip to just past the next `;` at brace depth 0 (handles
    /// `use x::{a, b};` and `const X: [u8; 4] = […];`).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while self.i < self.file.code.len() {
            match self.text(self.i) {
                "{" | "[" | "(" => depth += 1,
                "}" | "]" | ")" => depth -= 1,
                ";" if depth <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Named fields between the struct braces `open..close`.
    fn struct_fields(&self, open: usize, close: usize) -> Vec<Field> {
        let mut out = Vec::new();
        let mut k = open + 1;
        while k < close {
            // Skip attributes and visibility on the field.
            while self.text(k) == "#" && self.text(k + 1) == "[" {
                let mut depth = 0i32;
                k += 1;
                while k < close {
                    match self.text(k) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            if self.text(k) == "pub" {
                k += 1;
                if self.text(k) == "(" {
                    let mut depth = 0i32;
                    while k < close {
                        match self.text(k) {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            if !self.is_ident(k) || self.text(k + 1) != ":" {
                k += 1;
                continue;
            }
            let name = self.text(k).to_string();
            let field_line = self.line(k);
            k += 2;
            // Type runs to the next `,` at bracket depth 0.
            let mut ty = String::new();
            let mut depth = 0i32;
            while k < close {
                match self.text(k) {
                    "<" | "(" | "[" => depth += 1,
                    "<<" => depth += 2,
                    ">" | ")" | "]" => depth -= 1,
                    ">>" => depth -= 2,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(self.text(k));
                k += 1;
            }
            out.push(Field {
                name,
                ty,
                line: field_line,
            });
            k += 1; // past the comma
        }
        out
    }

    fn node(
        &self,
        kind: ItemKind,
        name: String,
        self_ty: Option<String>,
        line: u32,
        end_line: u32,
        body: Option<(usize, usize)>,
    ) -> Item {
        Item {
            kind,
            name,
            self_ty,
            line,
            end_line,
            body,
            children: Vec::new(),
            fields: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        let toks = lex(src);
        let view = FileView::new("crates/x/src/lib.rs".into(), "x".into(), src, &toks);
        parse_items(&view)
    }

    #[test]
    fn free_fn_span_and_body() {
        let src = "pub fn solve(a: u32) -> u32 {\n    a + 1\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        let f = &items[0];
        assert_eq!(f.kind, ItemKind::Fn);
        assert_eq!(f.name, "solve");
        assert_eq!((f.line, f.end_line), (1, 3));
        assert!(f.body.is_some());
        assert!(f.self_ty.is_none());
    }

    #[test]
    fn impl_methods_carry_self_ty() {
        let src = "struct Ring;\n\
                   impl Ring {\n\
                       pub fn record(&self) {}\n\
                       const fn cap() -> usize { 8 }\n\
                   }\n\
                   impl Drop for Ring {\n\
                       fn drop(&mut self) {}\n\
                   }\n";
        let items = parse(src);
        assert_eq!(items.len(), 3);
        let inherent = &items[1];
        assert_eq!(inherent.kind, ItemKind::Impl);
        assert_eq!(inherent.name, "Ring");
        assert_eq!(inherent.children.len(), 2);
        assert_eq!(inherent.children[0].name, "record");
        assert_eq!(inherent.children[0].self_ty.as_deref(), Some("Ring"));
        assert_eq!(inherent.children[1].name, "cap");
        let trait_impl = &items[2];
        assert_eq!(trait_impl.name, "Ring");
        assert_eq!(trait_impl.children[0].name, "drop");
        assert_eq!(trait_impl.children[0].self_ty.as_deref(), Some("Ring"));
    }

    #[test]
    fn generic_impl_and_fn_are_parsed() {
        let src = "impl<const N: usize> Kernel<N> {\n\
                       pub fn solve_into<T: Copy>(&self, out: &mut [T; N]) -> Option<u32> {\n\
                           None\n\
                       }\n\
                   }\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "Kernel");
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].name, "solve_into");
        assert_eq!(items[0].children[0].end_line, 4);
    }

    #[test]
    fn mod_nesting_and_fn_spans() {
        let src = "mod outer {\n\
                       pub mod inner {\n\
                           pub fn leaf() {}\n\
                       }\n\
                       fn side() {\n\
                           let x = 1;\n\
                       }\n\
                   }\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        let outer = &items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].children[0].name, "leaf");
        assert_eq!(outer.children[1].name, "side");
        assert_eq!((outer.children[1].line, outer.children[1].end_line), (5, 7));
    }

    #[test]
    fn struct_fields_with_types() {
        let src = "pub struct Ring {\n\
                       #[allow(dead_code)]\n\
                       pub cursor: AtomicU64,\n\
                       slots: Vec<Slot<u64>>,\n\
                       pub(crate) dropped: AtomicU32,\n\
                   }\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        let fields = &items[0].fields;
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].name, "cursor");
        assert_eq!(fields[0].ty, "AtomicU64");
        assert_eq!(fields[1].name, "slots");
        assert!(fields[1].ty.contains("Vec"));
        assert_eq!(fields[2].name, "dropped");
        assert_eq!(fields[2].ty, "AtomicU32");
    }

    #[test]
    fn tuple_struct_and_const_are_tolerated() {
        let src = "const CAP: usize = 1 << 20;\n\
                   struct Pair(u32, u32);\n\
                   pub fn after() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "Pair");
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn shift_in_const_generic_default_does_not_derail() {
        let src = "pub fn next(cap: usize) -> usize { cap << 1 }\n\
                   pub fn also() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name, "also");
    }

    #[test]
    fn trait_with_default_and_required_methods() {
        let src = "pub trait Rule {\n\
                       fn id(&self) -> &'static str;\n\
                       fn run(&self) -> u32 { 0 }\n\
                   }\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Trait);
        let kids = &items[0].children;
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].name, "id");
        assert!(kids[0].body.is_none());
        assert_eq!(kids[1].name, "run");
        assert!(kids[1].body.is_some());
    }

    #[test]
    fn nested_fn_inside_fn_body() {
        let src = "fn outer() {\n\
                       fn helper(v: u32) -> u32 { v }\n\
                       let _ = helper(1);\n\
                   }\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].name, "helper");
    }

    #[test]
    fn all_fns_flattens_depth_first() {
        let src = "mod m {\n\
                       impl T {\n\
                           fn a(&self) {}\n\
                       }\n\
                       fn b() {}\n\
                   }\n\
                   fn c() {}\n";
        let items = parse(src);
        let fns = all_fns(&items);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn macro_rules_and_use_do_not_confuse_the_parser() {
        let src = "use std::sync::{Arc, Mutex};\n\
                   macro_rules! boom {\n\
                       ($x:expr) => { fn not_an_item() {} };\n\
                   }\n\
                   pub fn real() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }
}
