//! The checked-in allowlist (`lint.allow`) and its application.
//!
//! Every pre-existing violation in the tree is *triaged*, not ignored:
//! an allowlist entry names the rule, file and sub-pattern it suppresses,
//! an explicit occurrence budget, and a mandatory justification. The
//! budget is an upper bound — the file may have fewer occurrences (code
//! shrinks under refactors) but never more, so any *new* violation in an
//! allowlisted file still fails the gate. An entry whose file has zero
//! remaining occurrences is reported as stale so the list cannot rot.
//!
//! Format, one entry per line (`#` starts a comment):
//!
//! ```text
//! <rule_id> <path> <key> count=<n> -- <justification>
//! panic_freedom crates/linalg/src/lu.rs index count=40 -- loop indices bounded by n
//! ```

use std::collections::HashMap;

use crate::findings::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Finding key within the rule (`unwrap`, `index`, …).
    pub key: String,
    /// Maximum number of occurrences this entry may absorb.
    pub count: usize,
    /// Why these occurrences are acceptable. Never empty.
    pub justification: String,
    /// 1-based line in `lint.allow`, for stale-entry diagnostics.
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
    /// Parse errors, reported as findings against the allowlist itself.
    errors: Vec<Finding>,
}

impl Allowlist {
    /// Parse allowlist text. Malformed lines become `allowlist/invalid`
    /// findings rather than aborting the run — the gate should fail
    /// loudly on a bad entry, not silently skip it.
    pub fn parse(text: &str, origin: &str) -> Allowlist {
        let mut list = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_entry(line, line_no) {
                Ok(entry) => list.entries.push(entry),
                Err(why) => list.errors.push(Finding {
                    rule: "allowlist",
                    key: "invalid",
                    file: origin.to_string(),
                    line: line_no,
                    col: 1,
                    message: why,
                    snippet: line.to_string(),
                }),
            }
        }
        list
    }

    /// Number of well-formed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply the allowlist to raw findings. Returns the surviving
    /// violations (excess occurrences, stale entries, parse errors) and
    /// the number of findings suppressed. Staleness is only judged for
    /// entries whose rule is in `active_rules` — under a `--rule` filter
    /// the other rules produced no findings, which proves nothing.
    pub fn apply(
        &self,
        findings: Vec<Finding>,
        origin: &str,
        active_rules: &[&str],
    ) -> (Vec<Finding>, usize) {
        let mut budget: HashMap<(String, String, String), (usize, u32)> = HashMap::new();
        for e in &self.entries {
            budget.insert(
                (e.rule.clone(), e.file.clone(), e.key.clone()),
                (e.count, e.line),
            );
        }

        let mut used: HashMap<(String, String, String), usize> = HashMap::new();
        let mut surviving = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let coord = (f.rule.to_string(), f.file.clone(), f.key.to_string());
            match budget.get(&coord) {
                Some((count, entry_line)) => {
                    let seen = used.entry(coord).or_insert(0);
                    *seen += 1;
                    if *seen <= *count {
                        suppressed += 1;
                    } else {
                        let mut f = f;
                        f.message = format!(
                            "{} (exceeds allowlist budget count={} from {}:{})",
                            f.message, count, origin, entry_line
                        );
                        surviving.push(f);
                    }
                }
                None => surviving.push(f),
            }
        }

        // Entries that matched nothing are stale: the code they excused
        // is gone, so the entry must go too.
        for e in &self.entries {
            if !active_rules.contains(&e.rule.as_str()) {
                continue;
            }
            let coord = (e.rule.clone(), e.file.clone(), e.key.clone());
            if !used.contains_key(&coord) {
                surviving.push(Finding {
                    rule: "allowlist",
                    key: "stale",
                    file: origin.to_string(),
                    line: e.line,
                    col: 1,
                    message: format!(
                        "stale allowlist entry: no `{}/{}` findings remain in {}",
                        e.rule, e.key, e.file
                    ),
                    snippet: format!("{} {} {} count={}", e.rule, e.file, e.key, e.count),
                });
            }
        }

        surviving.extend(self.errors.iter().cloned());
        (surviving, suppressed)
    }
}

fn parse_entry(line: &str, line_no: u32) -> Result<Entry, String> {
    let (head, justification) = match line.split_once(" -- ") {
        Some((h, j)) if !j.trim().is_empty() => (h.trim(), j.trim().to_string()),
        _ => {
            return Err(
                "entry needs a justification: `<rule> <path> <key> count=<n> -- <why>`".into(),
            )
        }
    };
    let mut parts = head.split_whitespace();
    let rule = parts.next().unwrap_or_default().to_string();
    let file = parts.next().unwrap_or_default().to_string();
    let key = parts.next().unwrap_or_default().to_string();
    if rule.is_empty() || file.is_empty() || key.is_empty() {
        return Err("entry needs `<rule> <path> <key>` before ` -- `".into());
    }
    let mut count = 1usize;
    for extra in parts {
        match extra.strip_prefix("count=").map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => count = n,
            _ => return Err(format!("unrecognized field `{extra}` (expected count=<n>)")),
        }
    }
    Ok(Entry {
        rule,
        file,
        key,
        count,
        justification,
        line: line_no,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, key: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            key,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".into(),
            snippet: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_requires_justification() {
        let list = Allowlist::parse(
            "# comment\n\
             panic_freedom crates/a/src/lib.rs unwrap count=2 -- provably infallible\n\
             panic_freedom crates/b/src/lib.rs index -- bounded\n\
             bad_line_without_dashes\n",
            "lint.allow",
        );
        assert_eq!(list.len(), 2);
        let (out, _) = list.apply(Vec::new(), "lint.allow", &["panic_freedom"]);
        // Two stale entries plus one parse error.
        assert_eq!(out.iter().filter(|f| f.key == "stale").count(), 2);
        assert_eq!(out.iter().filter(|f| f.key == "invalid").count(), 1);
    }

    #[test]
    fn inactive_rules_are_not_stale_checked() {
        let list = Allowlist::parse(
            "panic_freedom crates/a/src/lib.rs unwrap count=2 -- fine\n\
             no_alloc crates/a/src/lib.rs clone count=1 -- fine\n",
            "lint.allow",
        );
        // Only no_alloc ran; the panic_freedom entry matched nothing,
        // but that proves nothing — it must not be reported stale.
        let raw = vec![finding("no_alloc", "clone", "crates/a/src/lib.rs", 1)];
        let (out, suppressed) = list.apply(raw, "lint.allow", &["no_alloc"]);
        assert_eq!(suppressed, 1);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn budget_suppresses_up_to_count_then_fails() {
        let list = Allowlist::parse(
            "panic_freedom crates/a/src/lib.rs unwrap count=2 -- fine\n",
            "lint.allow",
        );
        let raw = vec![
            finding("panic_freedom", "unwrap", "crates/a/src/lib.rs", 1),
            finding("panic_freedom", "unwrap", "crates/a/src/lib.rs", 2),
            finding("panic_freedom", "unwrap", "crates/a/src/lib.rs", 3),
        ];
        let (out, suppressed) = list.apply(raw, "lint.allow", &["panic_freedom"]);
        assert_eq!(suppressed, 2);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("exceeds allowlist budget"));
    }

    #[test]
    fn under_budget_is_fine_but_zero_is_stale() {
        let list = Allowlist::parse(
            "panic_freedom crates/a/src/lib.rs unwrap count=5 -- fine\n\
             panic_freedom crates/gone/src/lib.rs unwrap count=1 -- was removed\n",
            "lint.allow",
        );
        let raw = vec![finding("panic_freedom", "unwrap", "crates/a/src/lib.rs", 1)];
        let (out, suppressed) = list.apply(raw, "lint.allow", &["panic_freedom"]);
        assert_eq!(suppressed, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, "stale");
        assert!(out[0].message.contains("crates/gone/src/lib.rs"));
    }

    #[test]
    fn different_key_is_not_absorbed() {
        let list = Allowlist::parse(
            "panic_freedom crates/a/src/lib.rs unwrap count=9 -- fine\n",
            "lint.allow",
        );
        let raw = vec![finding("panic_freedom", "expect", "crates/a/src/lib.rs", 1)];
        let (out, suppressed) = list.apply(raw, "lint.allow", &["panic_freedom"]);
        assert_eq!(suppressed, 0);
        // The expect finding survives and the unwrap entry is stale.
        assert_eq!(out.len(), 2);
    }
}
