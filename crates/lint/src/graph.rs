//! Workspace-level summaries: the approximate intra-crate call graph
//! plus the lock, atomic and allocation facts the interprocedural
//! rules consume.
//!
//! The driver builds one [`Workspace`] during its per-file pass (while
//! each [`FileView`] is alive) and hands it to
//! [`crate::rules::Rule::check_workspace`] afterwards. Everything in
//! here is *owned* — no borrows into file contents survive.
//!
//! Resolution is name-based and deliberately approximate, biased so
//! that a missed edge (weaker check) is preferred over a false edge
//! (false positive on a clean tree):
//!
//! * `Type::name(…)` resolves to impls of `Type`, any crate.
//! * `module::name(…)` resolves to free fns in the named crate
//!   (`gps_linalg::solve`) or the file whose stem matches the module
//!   (`lstsq::gls`), preferring the caller's crate.
//! * `.name(…)` resolves within the caller's own impl type first,
//!   then to same-crate methods only; names that collide with
//!   ubiquitous std methods are not chased at all.
//! * `name(…)` resolves to free fns in the caller's own file first,
//!   then via the file's `use` imports (std/core/alloc imports
//!   resolve to nothing), then to the caller's crate.

use std::collections::{BTreeSet, HashMap};

use crate::file::{FileView, KEYWORDS};
use crate::parser::{self, Item, ItemKind};
use crate::rules::no_alloc_facts;

/// An owned source location, usable after the per-file pass.
#[derive(Debug, Clone)]
pub struct Site {
    pub rel: String,
    pub line: u32,
    pub col: u32,
    pub snippet: String,
}

/// A direct allocation inside a function body.
#[derive(Debug, Clone)]
pub struct AllocSite {
    pub site: Site,
    pub message: &'static str,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// `Foo::bar(…)` → `Some("Foo")`; `bar(…)` and `.bar(…)` → `None`.
    pub qualifier: Option<String>,
    /// `.bar(…)` — a method call on some receiver.
    pub is_method: bool,
    /// For method calls, the receiver name when it is a simple ident
    /// (`self.bar(…)` → `Some("self")`, `sink.bar(…)` →
    /// `Some("sink")`, `foo().bar(…)` → `None`).
    pub receiver: Option<String>,
    pub site: Site,
    /// Lock names held at the call site (for interprocedural
    /// acquisition-order edges).
    pub holding: Vec<String>,
    /// The call sits on a non-test line inside a `// lint: no_alloc`
    /// region.
    pub in_no_alloc: bool,
}

/// One `.lock()` / `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Receiver name: `self.journal.lock()` → `journal`.
    pub name: String,
    pub site: Site,
    /// Lock names already held here.
    pub holding: Vec<String>,
}

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub krate: String,
    pub rel: String,
    /// File stem (`lstsq` for `crates/linalg/src/lstsq.rs`) — the
    /// module-name hint used to disambiguate free-fn calls.
    pub stem: String,
    pub name: String,
    /// Impl self-type head for methods.
    pub self_ty: Option<String>,
    pub line: u32,
    pub is_test: bool,
    /// The fn starts inside a `// lint: no_alloc` region.
    pub no_alloc: bool,
    pub allocs: Vec<AllocSite>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockAcquire>,
}

/// A struct field whose type mentions an atomic.
#[derive(Debug, Clone)]
pub struct AtomicField {
    pub krate: String,
    pub struct_name: String,
    pub name: String,
    pub ty: String,
    pub site: Site,
}

/// One atomic operation (`receiver.load(Ordering::…)`, …).
#[derive(Debug, Clone)]
pub struct AtomicUse {
    pub krate: String,
    /// Receiver name the op was invoked on (field name for
    /// `self.cursor.load(…)`).
    pub field: String,
    pub op: String,
    pub orderings: Vec<String>,
    pub site: Site,
    pub is_test: bool,
}

/// Where a `use` statement says an in-scope name comes from.
#[derive(Debug, Clone)]
pub struct ImportHint {
    /// First path segment (`crate`, `super`, `std`, `gps_linalg`, …).
    pub root: String,
    /// Penultimate segment — the defining module's name, if any.
    pub module: Option<String>,
}

/// Everything the workspace-level rules see.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnNode>,
    pub atomic_fields: Vec<AtomicField>,
    pub atomic_ops: Vec<AtomicUse>,
    /// `(self_ty, fn name)` → fn indices.
    by_method: HashMap<(String, String), Vec<usize>>,
    /// method name → fn indices (fns with a self type).
    methods_by_name: HashMap<String, Vec<usize>>,
    /// free fn name → fn indices.
    free_by_name: HashMap<String, Vec<usize>>,
    /// `(file rel, in-scope name)` → where the `use` brought it from.
    imports: HashMap<(String, String), ImportHint>,
    /// Crate directory names seen so far.
    krates: BTreeSet<String>,
}

/// Methods so ubiquitous on std types that chasing a same-named
/// workspace method would mostly produce false edges.
const STD_METHODS: &[&str] = &[
    "abs",
    "and_then",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "clear",
    "clone",
    "cmp",
    "contains",
    "copy_from_slice",
    "default",
    "drain",
    "drop",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "partial_cmp",
    "pop",
    "powi",
    "push",
    "read",
    "recv",
    "remove",
    "rev",
    "send",
    "spawn",
    "sqrt",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "write",
    "zip",
];

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

impl Workspace {
    /// Fold one parsed file into the workspace summaries.
    pub fn add_file(&mut self, file: &FileView<'_>, items: &[Item]) {
        let no_alloc_regions = no_alloc_facts::regions(file);
        for item in items {
            self.add_items(file, item, &no_alloc_regions);
        }
        self.collect_atomic_ops(file);
        self.collect_imports(file);
    }

    fn add_items(&mut self, file: &FileView<'_>, item: &Item, regions: &[(u32, u32)]) {
        match item.kind {
            ItemKind::Fn => {
                self.add_fn(file, item, regions);
            }
            ItemKind::Struct => {
                for f in &item.fields {
                    if f.ty.contains("Atomic") {
                        self.atomic_fields.push(AtomicField {
                            krate: file.krate.clone(),
                            struct_name: item.name.clone(),
                            name: f.name.clone(),
                            ty: f.ty.clone(),
                            site: site_at(file, f.line, 1),
                        });
                    }
                }
            }
            _ => {}
        }
        for child in &item.children {
            self.add_items(file, child, regions);
        }
    }

    fn add_fn(&mut self, file: &FileView<'_>, item: &Item, regions: &[(u32, u32)]) {
        let idx = self.fns.len();
        let is_test = file.is_test_line(item.line);
        let no_alloc = regions
            .iter()
            .any(|&(s, e)| item.line >= s && item.line <= e);
        if !file.krate.is_empty() {
            self.krates.insert(file.krate.clone());
        }
        let stem = file
            .rel
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or_default()
            .to_string();
        let mut node = FnNode {
            krate: file.krate.clone(),
            rel: file.rel.clone(),
            stem,
            name: item.name.clone(),
            self_ty: item.self_ty.clone(),
            line: item.line,
            is_test,
            no_alloc,
            allocs: Vec::new(),
            calls: Vec::new(),
            locks: Vec::new(),
        };
        if let Some((open, close)) = item.body {
            extract_body(file, open, close, regions, &mut node);
        }
        if let Some(ty) = &node.self_ty {
            self.by_method
                .entry((ty.clone(), node.name.clone()))
                .or_default()
                .push(idx);
            self.methods_by_name
                .entry(node.name.clone())
                .or_default()
                .push(idx);
        } else {
            self.free_by_name
                .entry(node.name.clone())
                .or_default()
                .push(idx);
        }
        self.fns.push(node);
    }

    /// Scan the whole file for atomic operations (they always live in
    /// fn bodies; a flat scan keeps receiver attribution uniform).
    fn collect_atomic_ops(&mut self, file: &FileView<'_>) {
        for ci in 2..file.code.len() {
            let text = file.code_text(ci);
            if !ATOMIC_OPS.contains(&text)
                || file.code_text(ci.wrapping_sub(1)) != "."
                || file.code_text(ci + 1) != "("
            {
                continue;
            }
            let recv = file.code_text(ci - 2);
            if !is_ident(recv) {
                continue;
            }
            // Collect `Ordering::X` idents inside the call's parens.
            let mut orderings = Vec::new();
            let mut depth = 0i32;
            let mut k = ci + 1;
            loop {
                match file.code_text(k) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "" => break,
                    t if depth > 0
                        && file.code_text(k.wrapping_sub(2)) == "Ordering"
                        && file.code_text(k.wrapping_sub(1)) == "::" =>
                    {
                        orderings.push(t.to_string());
                    }
                    _ => {}
                }
                k += 1;
            }
            let tok = file.code_token(ci);
            let (line, col) = tok.map(|t| (t.line, t.col)).unwrap_or((0, 0));
            self.atomic_ops.push(AtomicUse {
                krate: file.krate.clone(),
                field: recv.to_string(),
                op: text.to_string(),
                orderings,
                site: site_at(file, line, col),
                is_test: file.is_test_line(line),
            });
        }
    }

    /// Record every `use` declaration's leaf names for this file.
    fn collect_imports(&mut self, file: &FileView<'_>) {
        let mut ci = 0usize;
        while ci < file.code.len() {
            if file.code_text(ci) == "use" {
                ci = self.parse_use_tree(file, ci + 1, &mut Vec::new());
            } else {
                ci += 1;
            }
        }
    }

    /// Parse one `use` tree starting at code index `ci`, recording
    /// leaf names into [`Workspace::imports`]; returns the index just
    /// past the tree. Globs record nothing; malformed input stops.
    fn parse_use_tree(
        &mut self,
        file: &FileView<'_>,
        mut ci: usize,
        path: &mut Vec<String>,
    ) -> usize {
        let base = path.len();
        loop {
            let t = file.code_text(ci);
            if t == "{" {
                ci += 1;
                loop {
                    ci = self.parse_use_tree(file, ci, path);
                    match file.code_text(ci) {
                        "," => ci += 1,
                        "}" => {
                            ci += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                break;
            }
            if t == "*" {
                ci += 1;
                break;
            }
            if is_ident(t) || matches!(t, "crate" | "super" | "self") {
                path.push(t.to_string());
                ci += 1;
                if file.code_text(ci) == "::" {
                    ci += 1;
                    continue;
                }
                let mut name = path.last().cloned().unwrap_or_default();
                if file.code_text(ci) == "as" {
                    name = file.code_text(ci + 1).to_string();
                    ci += 2;
                }
                self.record_import(file, name, path);
                break;
            }
            break;
        }
        path.truncate(base);
        ci
    }

    fn record_import(&mut self, file: &FileView<'_>, name: String, segs: &[String]) {
        let mut segs = segs.to_vec();
        let mut name = name;
        if name == "self" {
            // `use crate::sink::{self, …}` imports the module itself.
            segs.pop();
            name = match segs.last() {
                Some(s) => s.clone(),
                None => return,
            };
        }
        if segs.is_empty() || name.is_empty() {
            return;
        }
        let root = segs[0].clone();
        let module = (segs.len() >= 3).then(|| segs[segs.len() - 2].clone());
        self.imports
            .insert((file.rel.clone(), name), ImportHint { root, module });
    }

    /// Resolve a call site to candidate workspace functions. Test
    /// functions are never candidates (`#[test]` fns are not callable
    /// from real code). See the module docs for the resolution policy.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let live = |ids: Option<&Vec<usize>>| -> Vec<usize> {
            ids.map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| !self.fns[i].is_test)
                    .collect()
            })
            .unwrap_or_default()
        };
        let me = &self.fns[caller];
        if let Some(q) = &call.qualifier {
            let ty = if q == "Self" {
                me.self_ty.clone().unwrap_or_default()
            } else {
                q.clone()
            };
            if ty.chars().next().map(char::is_uppercase) == Some(true) {
                return live(self.by_method.get(&(ty, call.name.clone())));
            }
            // Lowercase qualifier: a module path. Narrow to the named
            // crate or the file whose stem matches the module.
            let mut out = live(self.free_by_name.get(&call.name));
            if matches!(q.as_str(), "crate" | "self" | "super") {
                out.retain(|&i| self.fns[i].krate == me.krate);
                return out;
            }
            let kq = q.strip_prefix("gps_").unwrap_or(q);
            if self.krates.contains(kq) {
                out.retain(|&i| self.fns[i].krate == kq);
                return out;
            }
            out.retain(|&i| self.fns[i].stem == *q);
            let same: Vec<usize> = out
                .iter()
                .copied()
                .filter(|&i| self.fns[i].krate == me.krate)
                .collect();
            return if same.is_empty() { out } else { same };
        }
        if call.is_method {
            // A `self.name(…)` call resolves within the caller's own
            // impl type; otherwise chase same-crate methods by name
            // unless the name is a std staple. Cross-crate
            // method-name matching produced more false edges than
            // real ones.
            if call.receiver.as_deref() == Some("self") {
                if let Some(ty) = &me.self_ty {
                    let own = live(self.by_method.get(&(ty.clone(), call.name.clone())));
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            if STD_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            let mut out = live(self.methods_by_name.get(&call.name));
            out.retain(|&i| self.fns[i].krate == me.krate);
            return out;
        }
        // Bare call: same file first, then the file's `use` imports,
        // then the caller's crate.
        let mut out = live(self.free_by_name.get(&call.name));
        let same_file: Vec<usize> = out
            .iter()
            .copied()
            .filter(|&i| self.fns[i].rel == me.rel)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        if let Some(hint) = self.imports.get(&(me.rel.clone(), call.name.clone())) {
            if matches!(hint.root.as_str(), "std" | "core" | "alloc") {
                return Vec::new();
            }
            let hk = match hint.root.as_str() {
                "crate" | "self" | "super" => me.krate.clone(),
                s => s.strip_prefix("gps_").unwrap_or(s).to_string(),
            };
            out.retain(|&i| self.fns[i].krate == hk);
            if let Some(module) = &hint.module {
                let in_module: Vec<usize> = out
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].stem == *module)
                    .collect();
                if !in_module.is_empty() {
                    return in_module;
                }
            }
            return out;
        }
        out.retain(|&i| self.fns[i].krate == me.krate);
        out
    }

    /// `Some(reason)` when calling `fns[idx]` may allocate, where the
    /// reason chain names the first allocation found depth-first.
    /// Memoised; cycles resolve to "no evidence of allocation".
    pub fn may_alloc(&self, idx: usize, memo: &mut Vec<AllocVerdict>) -> Option<String> {
        match &memo[idx] {
            AllocVerdict::Known(r) => return r.clone(),
            AllocVerdict::Visiting => return None,
            AllocVerdict::Unknown => {}
        }
        memo[idx] = AllocVerdict::Visiting;
        let node = &self.fns[idx];
        let mut verdict = None;
        if let Some(a) = node.allocs.first() {
            verdict = Some(format!("{} at {}:{}", a.message, a.site.rel, a.site.line));
        } else {
            'calls: for call in &node.calls {
                for callee in self.resolve(idx, call) {
                    if callee == idx {
                        continue;
                    }
                    if let Some(inner) = self.may_alloc(callee, memo) {
                        verdict = Some(format!(
                            "calls `{}` ({}:{}), which {}",
                            call.name, call.site.rel, call.site.line, inner
                        ));
                        break 'calls;
                    }
                }
            }
        }
        memo[idx] = AllocVerdict::Known(verdict.clone());
        verdict
    }

    /// All lock names transitively acquired by `fns[idx]`.
    pub fn transitive_locks(&self, idx: usize, memo: &mut Vec<Option<Vec<String>>>) -> Vec<String> {
        if let Some(cached) = &memo[idx] {
            return cached.clone();
        }
        // Cycle guard: mark with the direct set first.
        let mut out: Vec<String> = self.fns[idx].locks.iter().map(|l| l.name.clone()).collect();
        memo[idx] = Some(out.clone());
        for call in &self.fns[idx].calls {
            for callee in self.resolve(idx, call) {
                if callee == idx {
                    continue;
                }
                for name in self.transitive_locks(callee, memo) {
                    if !out.contains(&name) {
                        out.push(name);
                    }
                }
            }
        }
        memo[idx] = Some(out.clone());
        out
    }
}

/// Memo cell for [`Workspace::may_alloc`].
#[derive(Debug, Clone, Default)]
pub enum AllocVerdict {
    #[default]
    Unknown,
    Visiting,
    Known(Option<String>),
}

fn is_ident(t: &str) -> bool {
    !t.is_empty()
        && t.chars()
            .next()
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false)
        && !KEYWORDS.contains(&t)
}

fn site_at(file: &FileView<'_>, line: u32, col: u32) -> Site {
    Site {
        rel: file.rel.clone(),
        line,
        col,
        snippet: file.line_text(line).to_string(),
    }
}

fn site_of(file: &FileView<'_>, ci: usize) -> Site {
    let (line, col) = file
        .code_token(ci)
        .map(|t| (t.line, t.col))
        .unwrap_or((0, 0));
    site_at(file, line, col)
}

/// A lock-guard hold range inside one body, in code indices.
struct Hold {
    name: String,
    start: usize,
    end: usize,
}

/// Extract calls, direct allocations and lock acquisitions from one fn
/// body (code indices `open..=close`, the braces included).
fn extract_body(
    file: &FileView<'_>,
    open: usize,
    close: usize,
    no_alloc_regions: &[(u32, u32)],
    node: &mut FnNode,
) {
    // Brace depth before each token, relative to the body.
    let mut depth_at = vec![0i32; close + 1 - open];
    {
        let mut depth = 0i32;
        for k in open..=close {
            let t = file.code_text(k);
            if t == "}" {
                depth -= 1;
            }
            depth_at[k - open] = depth;
            if t == "{" {
                depth += 1;
            }
        }
    }
    let depth = |k: usize| -> i32 {
        if (open..=close).contains(&k) {
            depth_at[k - open]
        } else {
            0
        }
    };

    // Pass 1: lock acquisitions and their hold ranges.
    let mut holds: Vec<Hold> = Vec::new();
    let mut acquires: Vec<(usize, String)> = Vec::new();
    for ci in open + 1..close {
        let text = file.code_text(ci);
        if !matches!(text, "lock" | "read" | "write")
            || file.code_text(ci.wrapping_sub(1)) != "."
            || file.code_text(ci + 1) != "("
            || file.code_text(ci + 2) != ")"
        {
            continue;
        }
        let recv = file.code_text(ci.wrapping_sub(2));
        if !is_ident(recv) {
            continue;
        }
        acquires.push((ci, recv.to_string()));
        holds.push(hold_range(file, ci, close, recv, &depth));
    }

    for (ci, name) in &acquires {
        let holding = holding_at(&holds, *ci);
        node.locks.push(LockAcquire {
            name: name.clone(),
            site: site_of(file, *ci),
            holding,
        });
    }

    // Pass 2: calls and allocations.
    for ci in open + 1..close {
        let tok = match file.code_token(ci) {
            Some(t) => t,
            None => continue,
        };
        let line = tok.line;
        let in_test = file.is_test_line(line);
        if !in_test {
            if let Some((_key, message)) = no_alloc_facts::alloc_site(file, ci) {
                node.allocs.push(AllocSite {
                    site: site_of(file, ci),
                    message,
                });
            }
        }
        let text = tok.text;
        if !is_ident(text) || file.code_text(ci + 1) != "(" {
            continue;
        }
        let prev = file.code_text(ci.wrapping_sub(1));
        if prev == "fn" {
            continue; // declaration, not a call
        }
        let (qualifier, is_method, receiver) = match prev {
            "." => {
                let r = file.code_text(ci.wrapping_sub(2));
                let receiver = (is_ident(r) || r == "self").then(|| r.to_string());
                (None, true, receiver)
            }
            "::" => {
                let q = file.code_text(ci.wrapping_sub(2));
                if is_ident(q) || q == "Self" {
                    (Some(q.to_string()), false, None)
                } else {
                    (None, false, None)
                }
            }
            _ => (None, false, None),
        };
        // Skip obvious non-calls: enum-variant style constructors are
        // harmless (they resolve to nothing), but macro bangs never
        // reach here (`name !` fails the `(` check).
        let in_no_alloc = !in_test
            && no_alloc_regions
                .iter()
                .any(|&(s, e)| line >= s && line <= e);
        node.calls.push(CallSite {
            name: text.to_string(),
            qualifier,
            is_method,
            receiver,
            site: site_of(file, ci),
            holding: holding_at(&holds, ci),
            in_no_alloc,
        });
    }
}

/// Compute the hold range for the lock call at `ci`.
///
/// The guard is *bound* (held to the end of the enclosing block) only
/// when the statement is `let name = recv.lock()<poison-chain>;` where
/// the chain is at most `?` / `.unwrap()` / `.expect(…)` /
/// `.unwrap_or_else(…)`. Anything else chained on the guard makes it a
/// temporary, dropped at the statement's `;`. An explicit
/// `drop(binding)` inside the range releases early.
fn hold_range(
    file: &FileView<'_>,
    ci: usize,
    close: usize,
    name: &str,
    depth: &dyn Fn(usize) -> i32,
) -> Hold {
    let d = depth(ci);
    // Walk the poison-handler chain after `lock()`.
    let mut j = ci + 3;
    loop {
        match file.code_text(j) {
            "?" => j += 1,
            "." if matches!(
                file.code_text(j + 1),
                "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default"
            ) =>
            {
                j += 2;
                if file.code_text(j) == "(" {
                    let mut pd = 0i32;
                    loop {
                        match file.code_text(j) {
                            "(" => pd += 1,
                            ")" => {
                                pd -= 1;
                                if pd == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            "" => break,
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let clean_chain = file.code_text(j) == ";";

    // Statement start: walk back to the previous `;` / `{` / `}`.
    let mut s = ci.saturating_sub(2);
    while s > 0 && !matches!(file.code_text(s - 1), ";" | "{" | "}") {
        s -= 1;
    }
    let binding = if clean_chain && file.code_text(s) == "let" {
        let b = if file.code_text(s + 1) == "mut" {
            file.code_text(s + 2)
        } else {
            file.code_text(s + 1)
        };
        is_ident(b).then(|| b.to_string())
    } else {
        None
    };

    let mut end = close;
    if binding.is_some() {
        // Held to the end of the enclosing block.
        for k in ci..=close {
            if file.code_text(k) == "}" && depth(k) == d - 1 {
                end = k;
                break;
            }
        }
        // … unless released early by `drop(binding)`.
        let b = binding.as_deref().unwrap_or("");
        for k in ci..end {
            if file.code_text(k) == "drop"
                && file.code_text(k + 1) == "("
                && file.code_text(k + 2) == b
                && file.code_text(k + 3) == ")"
            {
                end = k;
                break;
            }
        }
    } else {
        // Temporary guard: dropped at the statement's `;` — except a
        // scrutinee temporary (`if let … = x.lock()… {`, `match`,
        // `for … in x.read()…`), which lives through the block it
        // introduces and is dropped at that block's `}`.
        for k in ci..=close {
            let t = file.code_text(k);
            if t == ";" && depth(k) == d {
                end = k;
                break;
            }
            if t == "{" && depth(k) == d {
                end = close;
                for k2 in k + 1..=close {
                    if file.code_text(k2) == "}" && depth(k2) == d {
                        end = k2;
                        break;
                    }
                }
                break;
            }
        }
    }
    Hold {
        name: name.to_string(),
        start: ci,
        end,
    }
}

/// Lock names held at code index `ci`. An acquisition's own hold
/// starts *at* its `ci`, so `h.start < ci` excludes it naturally.
fn holding_at(holds: &[Hold], ci: usize) -> Vec<String> {
    let mut out = Vec::new();
    for h in holds {
        if h.start < ci && ci <= h.end && !out.contains(&h.name) {
            out.push(h.name.clone());
        }
    }
    out
}

/// Convenience for the driver: parse + summarise one file.
pub fn summarise(ws: &mut Workspace, file: &FileView<'_>) {
    let items = parser::parse_items(file);
    ws.add_file(file, &items);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn workspace(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, krate, src) in files {
            let toks = lex(src);
            let view = FileView::new(rel.to_string(), krate.to_string(), src, &toks);
            summarise(&mut ws, &view);
        }
        ws
    }

    #[test]
    fn calls_and_allocs_are_extracted() {
        let ws = workspace(&[(
            "crates/x/src/lib.rs",
            "x",
            "// lint: no_alloc\n\
             fn hot() { helper(3); }\n\
             fn helper(n: u32) -> Vec<u32> { Vec::new() }\n",
        )]);
        assert_eq!(ws.fns.len(), 2);
        let hot = &ws.fns[0];
        assert!(hot.no_alloc);
        assert_eq!(hot.calls.len(), 1);
        assert_eq!(hot.calls[0].name, "helper");
        assert!(hot.calls[0].in_no_alloc);
        let helper = &ws.fns[1];
        assert!(!helper.no_alloc);
        assert_eq!(helper.allocs.len(), 1);
    }

    #[test]
    fn one_call_deep_allocation_is_found() {
        let ws = workspace(&[(
            "crates/x/src/lib.rs",
            "x",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { let v = vec![1]; }\n",
        )]);
        let mut memo = vec![AllocVerdict::Unknown; ws.fns.len()];
        let reason = ws.may_alloc(0, &mut memo).expect("a() allocates via c()");
        assert!(reason.contains("`b`"), "chain mentions b: {reason}");
        let mut memo2 = vec![AllocVerdict::Unknown; ws.fns.len()];
        assert!(ws.may_alloc(2, &mut memo2).is_some());
    }

    #[test]
    fn recursion_terminates() {
        let ws = workspace(&[(
            "crates/x/src/lib.rs",
            "x",
            "fn a() { b(); }\nfn b() { a(); }\n",
        )]);
        let mut memo = vec![AllocVerdict::Unknown; ws.fns.len()];
        assert!(ws.may_alloc(0, &mut memo).is_none());
    }

    #[test]
    fn bound_guard_holds_to_block_end_and_drop_releases() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn f(&self) {\n\
                       let mut g = self.queue.lock().unwrap_or_else(|e| e.into_inner());\n\
                       g.push(1);\n\
                       drop(g);\n\
                       let h = self.journal.lock().unwrap();\n\
                   }\n\
                   }\n";
        let ws = workspace(&[("crates/x/src/lib.rs", "x", src)]);
        let f = &ws.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].name, "queue");
        assert!(f.locks[0].holding.is_empty());
        // `drop(g)` released the queue guard before journal.lock().
        assert_eq!(f.locks[1].name, "journal");
        assert!(f.locks[1].holding.is_empty());
    }

    #[test]
    fn nested_bound_guards_produce_holding_sets() {
        let src = "fn f(a: &M, b: &M) {\n\
                       let g = a.lock().unwrap();\n\
                       let h = b.lock().unwrap();\n\
                   }\n";
        let ws = workspace(&[("crates/x/src/lib.rs", "x", src)]);
        let f = &ws.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert!(f.locks[0].holding.is_empty());
        assert_eq!(f.locks[1].holding, vec!["a".to_string()]);
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        let src = "fn f(a: &M, b: &M) {\n\
                       let empty = a.lock().unwrap().is_empty();\n\
                       let h = b.lock().unwrap();\n\
                   }\n";
        let ws = workspace(&[("crates/x/src/lib.rs", "x", src)]);
        let f = &ws.fns[0];
        assert_eq!(f.locks.len(), 2);
        // The `a` guard was a temporary inside the first statement.
        assert!(f.locks[1].holding.is_empty());
    }

    #[test]
    fn scrutinee_temporary_holds_through_the_block_only() {
        // Double-checked locking: the `read()` temporary in the if-let
        // scrutinee dies at the if-block's `}`, so the later `write()`
        // is NOT nested inside it.
        let src = "struct S;\n\
                   impl S {\n\
                   fn get_or_insert(&self) -> u32 {\n\
                       if let Some(v) = self.map.read().unwrap().get(0) {\n\
                           return *v;\n\
                       }\n\
                       let mut w = self.map.write().unwrap();\n\
                       w.insert(0)\n\
                   }\n\
                   }\n";
        let ws = workspace(&[("crates/x/src/lib.rs", "x", src)]);
        let f = &ws.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert!(
            f.locks[1].holding.is_empty(),
            "write() must not see the read() guard held: {:?}",
            f.locks[1].holding
        );
    }

    #[test]
    fn bare_calls_prefer_the_same_file() {
        let ws = workspace(&[
            (
                "crates/x/src/a.rs",
                "x",
                "fn go() { helper(); }\nfn helper() {}\n",
            ),
            (
                "crates/x/src/b.rs",
                "x",
                "fn helper() { let v = vec![1]; }\n",
            ),
        ]);
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        let callees = ws.resolve(go, &ws.fns[go].calls[0]);
        assert_eq!(callees.len(), 1);
        assert_eq!(ws.fns[callees[0]].rel, "crates/x/src/a.rs");
    }

    #[test]
    fn bare_calls_follow_use_imports() {
        let ws = workspace(&[
            (
                "crates/x/src/a.rs",
                "x",
                "use crate::good::helper;\nfn go() { helper(); }\n",
            ),
            ("crates/x/src/good.rs", "x", "fn helper() {}\n"),
            (
                "crates/x/src/bad.rs",
                "x",
                "fn helper() { let v = vec![1]; }\n",
            ),
        ]);
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        let callees = ws.resolve(go, &ws.fns[go].calls[0]);
        assert_eq!(callees.len(), 1);
        assert_eq!(ws.fns[callees[0]].rel, "crates/x/src/good.rs");
    }

    #[test]
    fn std_imports_resolve_to_nothing() {
        let ws = workspace(&[
            (
                "crates/x/src/a.rs",
                "x",
                "use std::mem::take;\nfn go() { take(); }\n",
            ),
            ("crates/x/src/b.rs", "x", "fn take() { let v = vec![1]; }\n"),
        ]);
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert!(ws.resolve(go, &ws.fns[go].calls[0]).is_empty());
    }

    #[test]
    fn crate_qualified_calls_resolve_cross_crate() {
        let ws = workspace(&[
            (
                "crates/core/src/a.rs",
                "core",
                "fn go() { gps_telemetry::enabled(); }\n",
            ),
            (
                "crates/telemetry/src/lib.rs",
                "telemetry",
                "fn enabled() {}\n",
            ),
            ("crates/lint/src/x.rs", "lint", "fn enabled() {}\n"),
        ]);
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        let callees = ws.resolve(go, &ws.fns[go].calls[0]);
        assert_eq!(callees.len(), 1);
        assert_eq!(ws.fns[callees[0]].krate, "telemetry");
    }

    #[test]
    fn methods_do_not_resolve_cross_crate() {
        let ws = workspace(&[
            (
                "crates/core/src/a.rs",
                "core",
                "struct A;\nimpl A { fn go(&self, r: &R) { r.record(1); } }\n",
            ),
            (
                "crates/telemetry/src/r.rs",
                "telemetry",
                "struct R;\nimpl R { fn record(&self, x: u32) {} }\n",
            ),
        ]);
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert!(ws.resolve(go, &ws.fns[go].calls[0]).is_empty());
    }

    #[test]
    fn atomic_fields_and_ops_are_collected() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   struct Ring { cursor: AtomicU64 }\n\
                   impl Ring {\n\
                       fn bump(&self) { self.cursor.fetch_add(1, Ordering::Relaxed); }\n\
                       fn read(&self) -> u64 { self.cursor.load(Ordering::Acquire) }\n\
                   }\n";
        let ws = workspace(&[("crates/x/src/lib.rs", "x", src)]);
        assert_eq!(ws.atomic_fields.len(), 1);
        assert_eq!(ws.atomic_fields[0].name, "cursor");
        assert_eq!(ws.atomic_ops.len(), 2);
        assert_eq!(ws.atomic_ops[0].op, "fetch_add");
        assert_eq!(ws.atomic_ops[0].orderings, vec!["Relaxed".to_string()]);
        assert_eq!(ws.atomic_ops[1].op, "load");
        assert_eq!(ws.atomic_ops[1].orderings, vec!["Acquire".to_string()]);
    }

    #[test]
    fn transitive_locks_cross_functions() {
        let src = "struct S;\n\
                   impl S {\n\
                   fn outer(&self) {\n\
                       let g = self.a.lock().unwrap();\n\
                       self.inner_locker();\n\
                   }\n\
                   fn inner_locker(&self) {\n\
                       let h = self.b.lock().unwrap();\n\
                   }\n\
                   }\n";
        let ws = workspace(&[("crates/x/src/lib.rs", "x", src)]);
        let outer = ws
            .fns
            .iter()
            .position(|f| f.name == "outer")
            .expect("outer exists");
        let mut memo = vec![None; ws.fns.len()];
        let locks = ws.transitive_locks(outer, &mut memo);
        assert!(locks.contains(&"a".to_string()));
        assert!(locks.contains(&"b".to_string()));
        // And the call site records that `a` was held.
        let call = ws.fns[outer]
            .calls
            .iter()
            .find(|c| c.name == "inner_locker")
            .expect("call recorded");
        assert_eq!(call.holding, vec!["a".to_string()]);
    }
}
