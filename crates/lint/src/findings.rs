//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;

/// One diagnostic produced by a rule.
///
/// `rule` and `key` together form the allowlist coordinate: an entry
/// `panic_freedom crates/linalg/src/lu.rs index …` suppresses findings
/// whose `(rule, file, key)` triple matches, up to the entry's count.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `panic_freedom`.
    pub rule: &'static str,
    /// Sub-pattern within the rule, e.g. `unwrap` or `index`.
    pub key: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}/{}] {}",
            self.file, self.line, self.col, self.rule, self.key, self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "    {}", self.snippet)?;
        }
        Ok(())
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// Render this finding as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"key\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(self.key),
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.snippet),
        )
    }
}

/// The full machine-readable report written to `lint-report.json`.
#[derive(Debug)]
pub struct Report {
    /// Rule ids that ran, in execution order.
    pub rules: Vec<&'static str>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that survived the allowlist (violations).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by allowlist entries.
    pub suppressed: usize,
}

impl Report {
    /// True when the tree is clean (no surviving findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the whole report as a JSON document.
    pub fn to_json(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect();
        let findings: Vec<String> = self.findings.iter().map(|f| f.to_json()).collect();
        format!(
            "{{\n  \"clean\": {},\n  \"rules\": [{}],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"findings\": [\n    {}\n  ]\n}}\n",
            self.clean(),
            rules.join(", "),
            self.files_scanned,
            self.suppressed,
            findings.join(",\n    "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = Report {
            rules: vec!["panic_freedom"],
            files_scanned: 3,
            findings: vec![Finding {
                rule: "panic_freedom",
                key: "unwrap",
                file: "crates/x/src/lib.rs".into(),
                line: 10,
                col: 5,
                message: "call to unwrap()".into(),
                snippet: "let v = x.unwrap();".into(),
            }],
            suppressed: 2,
        };
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"rule\":\"panic_freedom\""));
    }
}
