//! Drive the full lint pass over the checked-in fixture trees: the
//! violating tree must trigger every rule (with the expected keys), the
//! clean tree must produce zero findings, and the fixture allowlist must
//! suppress the violating tree completely without going stale.

use std::collections::HashSet;
use std::path::PathBuf;

use gps_lint::driver::{run, Options};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

#[test]
fn violating_tree_triggers_every_rule() {
    let report = run(&Options::new(fixture_root("violating"))).unwrap();
    assert!(!report.clean());
    assert_eq!(report.suppressed, 0);

    let keys: HashSet<(&str, &str)> = report.findings.iter().map(|f| (f.rule, f.key)).collect();
    for expected in [
        ("panic_freedom", "unwrap"),
        ("panic_freedom", "expect"),
        ("panic_freedom", "panic"),
        ("panic_freedom", "index"),
        ("no_alloc", "vec_macro"),
        ("no_alloc", "to_vec"),
        ("no_alloc", "clone"),
        ("float_cmp", "float_eq"),
        ("telemetry_sync", "undocumented"),
        ("telemetry_sync", "stale"),
        ("lock_discipline", "lock_unwrap"),
    ] {
        assert!(keys.contains(&expected), "missing {expected:?} in {keys:?}");
    }

    // Test-module code must not be reported: the fixture's #[cfg(test)]
    // block repeats several violations on purpose.
    let test_block_hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/core/src/lib.rs" && f.line >= 28)
        .collect();
    assert!(test_block_hits.is_empty(), "{test_block_hits:?}");
}

#[test]
fn clean_tree_is_clean() {
    let report = run(&Options::new(fixture_root("clean"))).unwrap();
    assert!(report.clean(), "{:#?}", report.findings);
    assert!(report.files_scanned >= 1);
}

#[test]
fn rule_filter_scopes_findings() {
    let mut opts = Options::new(fixture_root("violating"));
    opts.rule_filter = vec!["lock_discipline".into()];
    let report = run(&opts).unwrap();
    assert!(!report.findings.is_empty());
    assert!(report.findings.iter().all(|f| f.rule == "lock_discipline"));
}

#[test]
fn fixture_allowlist_suppresses_everything_without_staleness() {
    let mut opts = Options::new(fixture_root("violating"));
    opts.allowlist =
        Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violating.allow"));
    let report = run(&opts).unwrap();
    assert!(
        report.clean(),
        "allowlist should cover every fixture finding: {:#?}",
        report.findings
    );
    assert!(report.suppressed > 0);
}

#[test]
fn findings_are_span_accurate() {
    let report = run(&Options::new(fixture_root("violating"))).unwrap();
    let unwrap = report
        .findings
        .iter()
        .find(|f| f.rule == "panic_freedom" && f.key == "unwrap")
        .unwrap();
    // `let a = opt.unwrap();` is line 5 of the fixture lib.rs.
    assert_eq!(unwrap.file, "crates/core/src/lib.rs");
    assert_eq!(unwrap.line, 5);
    assert!(unwrap.col > 1);
    assert!(unwrap.snippet.contains("opt.unwrap()"));
}

#[test]
fn json_report_round_trips_the_findings() {
    let report = run(&Options::new(fixture_root("violating"))).unwrap();
    let json = report.to_json();
    assert!(json.contains("\"rule\":\"lock_discipline\""));
    assert!(json.contains("\"key\":\"lock_unwrap\""));
    assert!(json.contains("\"files_scanned\""));
}

/// Root of one `v2/<rule>/{clean,violating}` fixture pair.
fn v2_root(rule_dir: &str, which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/v2")
        .join(rule_dir)
        .join(which)
}

/// Run a single rule over one v2 fixture tree.
fn run_v2(rule_dir: &str, which: &str, rule: &str) -> gps_lint::findings::Report {
    let mut opts = Options::new(v2_root(rule_dir, which));
    opts.rule_filter = vec![rule.into()];
    run(&opts).unwrap()
}

/// Every v2 rule: the violating tree must produce exactly the expected
/// keys and the clean mirror must produce none.
#[test]
fn v2_fixture_pairs_split_on_their_rule() {
    let cases: &[(&str, &str, &[&str])] = &[
        ("no_alloc_transitive", "no_alloc", &["transitive"]),
        ("lock_order", "lock_order", &["cycle"]),
        (
            "atomic_discipline",
            "atomic_discipline",
            &[
                "acquire_without_release",
                "release_without_acquire",
                "seqcst",
            ],
        ),
        (
            "cast_truncation",
            "cast_truncation",
            &["truncating_cast", "unchecked_arith"],
        ),
        (
            "bounded_loop",
            "bounded_loop",
            &["bare_loop", "unbounded_while"],
        ),
    ];
    for (dir, rule, expected_keys) in cases {
        let violating = run_v2(dir, "violating", rule);
        let keys: HashSet<&str> = violating.findings.iter().map(|f| f.key).collect();
        let expected: HashSet<&str> = expected_keys.iter().copied().collect();
        assert_eq!(keys, expected, "keys for {dir}");
        assert!(violating.findings.iter().all(|f| f.rule == *rule));

        let clean = run_v2(dir, "clean", rule);
        assert!(clean.clean(), "{dir} clean tree: {:#?}", clean.findings);
        assert!(clean.files_scanned >= 1);
    }
}

/// The transitive finding names the allocating callee chain and is
/// anchored at the call site inside the region, not at the allocation.
#[test]
fn transitive_finding_is_span_accurate_and_explains_the_chain() {
    let report = run_v2("no_alloc_transitive", "violating", "no_alloc");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.file, "crates/core/src/lib.rs");
    assert_eq!(f.line, 6, "anchored at the `helper(n)` call");
    assert!(f.message.contains("`helper`"), "{}", f.message);
    assert!(f.snippet.contains("helper(n)"));
}

/// The lock-order cycle message names both edges of the inversion.
#[test]
fn lock_order_finding_lists_both_edges() {
    let report = run_v2("lock_order", "violating", "lock_order");
    assert_eq!(report.findings.len(), 1);
    let msg = &report.findings[0].message;
    assert!(msg.contains("`alpha` → `beta`"), "{msg}");
    assert!(msg.contains("`beta` → `alpha`"), "{msg}");
}

/// JSON report round-trip for the v2 finding kinds: every new
/// rule/key pair survives rendering.
#[test]
fn json_report_round_trips_v2_finding_kinds() {
    for (dir, rule, key) in [
        ("no_alloc_transitive", "no_alloc", "transitive"),
        ("lock_order", "lock_order", "cycle"),
        ("atomic_discipline", "atomic_discipline", "seqcst"),
        ("cast_truncation", "cast_truncation", "truncating_cast"),
        ("bounded_loop", "bounded_loop", "bare_loop"),
    ] {
        let json = run_v2(dir, "violating", rule).to_json();
        assert!(json.contains(&format!("\"rule\":\"{rule}\"")), "{dir}");
        assert!(json.contains(&format!("\"key\":\"{key}\"")), "{dir}");
        assert!(json.contains("\"clean\": false"), "{dir}");
    }
}
