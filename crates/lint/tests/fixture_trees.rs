//! Drive the full lint pass over the checked-in fixture trees: the
//! violating tree must trigger every rule (with the expected keys), the
//! clean tree must produce zero findings, and the fixture allowlist must
//! suppress the violating tree completely without going stale.

use std::collections::HashSet;
use std::path::PathBuf;

use gps_lint::driver::{run, Options};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

#[test]
fn violating_tree_triggers_every_rule() {
    let report = run(&Options::new(fixture_root("violating"))).unwrap();
    assert!(!report.clean());
    assert_eq!(report.suppressed, 0);

    let keys: HashSet<(&str, &str)> = report.findings.iter().map(|f| (f.rule, f.key)).collect();
    for expected in [
        ("panic_freedom", "unwrap"),
        ("panic_freedom", "expect"),
        ("panic_freedom", "panic"),
        ("panic_freedom", "index"),
        ("no_alloc", "vec_macro"),
        ("no_alloc", "to_vec"),
        ("no_alloc", "clone"),
        ("float_cmp", "float_eq"),
        ("telemetry_sync", "undocumented"),
        ("telemetry_sync", "stale"),
        ("lock_discipline", "lock_unwrap"),
    ] {
        assert!(keys.contains(&expected), "missing {expected:?} in {keys:?}");
    }

    // Test-module code must not be reported: the fixture's #[cfg(test)]
    // block repeats several violations on purpose.
    let test_block_hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/core/src/lib.rs" && f.line >= 28)
        .collect();
    assert!(test_block_hits.is_empty(), "{test_block_hits:?}");
}

#[test]
fn clean_tree_is_clean() {
    let report = run(&Options::new(fixture_root("clean"))).unwrap();
    assert!(report.clean(), "{:#?}", report.findings);
    assert!(report.files_scanned >= 1);
}

#[test]
fn rule_filter_scopes_findings() {
    let mut opts = Options::new(fixture_root("violating"));
    opts.rule_filter = vec!["lock_discipline".into()];
    let report = run(&opts).unwrap();
    assert!(!report.findings.is_empty());
    assert!(report.findings.iter().all(|f| f.rule == "lock_discipline"));
}

#[test]
fn fixture_allowlist_suppresses_everything_without_staleness() {
    let mut opts = Options::new(fixture_root("violating"));
    opts.allowlist =
        Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violating.allow"));
    let report = run(&opts).unwrap();
    assert!(
        report.clean(),
        "allowlist should cover every fixture finding: {:#?}",
        report.findings
    );
    assert!(report.suppressed > 0);
}

#[test]
fn findings_are_span_accurate() {
    let report = run(&Options::new(fixture_root("violating"))).unwrap();
    let unwrap = report
        .findings
        .iter()
        .find(|f| f.rule == "panic_freedom" && f.key == "unwrap")
        .unwrap();
    // `let a = opt.unwrap();` is line 5 of the fixture lib.rs.
    assert_eq!(unwrap.file, "crates/core/src/lib.rs");
    assert_eq!(unwrap.line, 5);
    assert!(unwrap.col > 1);
    assert!(unwrap.snippet.contains("opt.unwrap()"));
}

#[test]
fn json_report_round_trips_the_findings() {
    let report = run(&Options::new(fixture_root("violating"))).unwrap();
    let json = report.to_json();
    assert!(json.contains("\"rule\":\"lock_discipline\""));
    assert!(json.contains("\"key\":\"lock_unwrap\""));
    assert!(json.contains("\"files_scanned\""));
}
