//! Clean mirror of the atomic-discipline fixture: one coherent
//! Release-publish / Acquire-observe pattern per field.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Ring {
    cursor: AtomicU64,
    epoch: AtomicU64,
}

impl Ring {
    pub fn bump(&self) -> u64 {
        self.cursor.fetch_add(1, Ordering::Release)
    }

    pub fn snapshot(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    pub fn publish_epoch(&self, e: u64) {
        self.epoch.store(e, Ordering::Release);
    }

    pub fn peek_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}
