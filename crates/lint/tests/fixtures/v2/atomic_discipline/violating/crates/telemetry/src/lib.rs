//! Atomic-discipline fixture: three incoherent publish patterns on
//! three fields of one ring.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Ring {
    cursor: AtomicU64,
    epoch: AtomicU64,
    mode: AtomicU64,
}

impl Ring {
    /// `cursor` is written Relaxed everywhere but read Acquire: the
    /// Acquire synchronises with nothing.
    pub fn bump(&self) -> u64 {
        self.cursor.fetch_add(1, Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// `epoch` is published with Release but every observer loads
    /// Relaxed: the Release synchronises with nothing.
    pub fn publish_epoch(&self, e: u64) {
        self.epoch.store(e, Ordering::Release);
    }

    pub fn peek_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// `mode` uses SeqCst, banned in the scoped crates.
    pub fn set_mode(&self, m: u64) {
        self.mode.store(m, Ordering::SeqCst);
    }

    pub fn mode(&self) -> u64 {
        self.mode.load(Ordering::SeqCst)
    }
}
