//! Lock-order fixture: two paths acquire the same pair of locks in
//! opposite orders — the classic two-thread deadlock.

use std::sync::Mutex;

pub struct Shard {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Shard {
    pub fn push_both(&self, v: u64) {
        let mut a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let mut b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        a.push(v);
        b.push(v);
    }

    pub fn drain_both(&self) -> usize {
        let mut b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let mut a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        b.clear();
        a.clear();
        0
    }
}
