//! Wire-format cast fixture: a silent truncation and unchecked cursor
//! arithmetic inside a `// lint: wire_format` region.

// lint: wire_format
pub fn encode(len: usize, cursor: usize) -> u64 {
    let words = len as u32;
    let advance = cursor + 8;
    u64::from(words) | (advance as u64) << 32
}
