//! Clean mirror of the wire-format cast fixture: the cast is masked
//! into range and the cursor math is checked.

// lint: wire_format
pub fn encode(len: usize, cursor: usize) -> u64 {
    let words = (len & 0xffff_ffff) as u32;
    let advance = cursor.checked_add(8).unwrap_or(usize::MAX);
    u64::from(words) | (advance as u64) << 32
}
