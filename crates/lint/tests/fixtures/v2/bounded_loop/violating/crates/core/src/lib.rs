//! Bounded-loop fixture: a bare `loop` and an unbounded `while` in a
//! `// lint: no_alloc` hot region.

// lint: no_alloc
pub fn spin(flag: &std::sync::atomic::AtomicBool) {
    loop {
        if flag.load(std::sync::atomic::Ordering::Acquire) {
            break;
        }
    }
}

// lint: no_alloc
pub fn wait(done: &dyn Fn() -> bool) {
    while !done() {
        std::hint::spin_loop();
    }
}
