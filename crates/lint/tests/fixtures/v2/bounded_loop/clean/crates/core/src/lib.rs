//! Clean mirror of the bounded-loop fixture: every hot-region loop
//! has a derivable bound.

// lint: no_alloc
pub fn fill(out: &mut [f64]) {
    let mut i = 0;
    while i < out.len() {
        out[i] = 0.0;
        i += 1;
    }
}

// lint: no_alloc
pub fn sum(values: &[f64]) -> f64 {
    let mut total = 0.0;
    for v in values {
        total += v;
    }
    total
}
