//! Transitive no_alloc fixture: the marked region is locally clean,
//! but its callee allocates — only the call-graph pass can see it.

// lint: no_alloc
pub fn hot(n: usize) -> f64 {
    helper(n)
}

fn helper(n: usize) -> f64 {
    let v = vec![0.0; n];
    v.iter().sum()
}
