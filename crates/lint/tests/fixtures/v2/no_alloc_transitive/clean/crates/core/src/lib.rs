//! Clean mirror of the transitive no_alloc fixture: the region's
//! callee chain never allocates.

// lint: no_alloc
pub fn hot(n: usize) -> f64 {
    helper(n)
}

fn helper(n: usize) -> f64 {
    (n as f64) * 0.5
}
