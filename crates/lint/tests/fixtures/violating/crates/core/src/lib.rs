//! Fixture tree: one violation of every rule gps-lint knows about.
//! Never compiled — walked by the driver integration tests.

pub fn panics(opt: Option<u32>, res: Result<u32, String>, xs: &[u32]) -> u32 {
    let a = opt.unwrap();
    let b = res.expect("fixture");
    if xs.is_empty() {
        panic!("empty");
    }
    a + b + xs[0]
}

pub fn exact(x: f64) -> bool {
    x == 0.0
}

// lint: no_alloc
pub fn hot(other: &[u32]) -> Vec<u32> {
    let mut v = vec![1, 2, 3];
    v.extend_from_slice(&other.to_vec());
    v.clone()
}

pub fn observe() {
    gps_telemetry::counter("fixture.rogue").inc();
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be reported.
    #[test]
    fn exempt() {
        let xs = [1u32];
        assert_eq!(xs[0], Some(1).unwrap());
        assert!(super::exact(0.0));
    }
}
