//! Fixture: poison-intolerant locking in a scoped crate.

use std::sync::Mutex;

pub fn bad_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn bad_read(rw: &std::sync::RwLock<u32>) -> u32 {
    *rw.read().expect("poisoned")
}
