//! Fixture tree: idiomatic code that every rule accepts.

pub fn safe(opt: Option<u32>, xs: &[u32]) -> u32 {
    let a = opt.unwrap_or(0);
    let b = xs.first().copied().unwrap_or(0);
    a + b
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

// lint: no_alloc
pub fn hot(acc: &mut [f64]) {
    for v in acc.iter_mut() {
        *v += 1.0;
    }
}

pub fn observe() {
    gps_telemetry::counter("fixture.known").inc();
}
