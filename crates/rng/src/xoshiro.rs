//! xoshiro256++ — Blackman & Vigna's general-purpose 256-bit
//! generator.
//!
//! Public-domain algorithm (`xoshiro256plusplus.c`). Passes BigCrush,
//! has a period of 2²⁵⁶ − 1, and needs only a rotate, shifts and xors
//! per output — comfortably fast enough for per-epoch simulation
//! noise.

use crate::{RngCore, SeedableRng, SplitMix64};

/// xoshiro256++ generator; 32 bytes of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from raw state words.
    ///
    /// At least one word must be non-zero (the all-zero state is a
    /// fixed point); prefer [`SeedableRng::seed_from_u64`], which
    /// cannot produce it.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);

        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);

        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(state: u64) -> Self {
        // Expand through SplitMix64 as recommended by the authors; the
        // expansion never yields the forbidden all-zero state.
        let mut sm = SplitMix64::new(state);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }
}
