//! Deterministic pseudo-random number generation with no external
//! dependencies.
//!
//! The simulation pipeline needs reproducible noise streams (receiver
//! clock wander, atmospheric delays, measurement noise) but the build
//! environment is fully offline, so this crate replaces the `rand`
//! crate with a small, well-understood generator stack:
//!
//! * [`SplitMix64`] — a 64-bit mixing generator used to expand a
//!   single `u64` seed into a full generator state,
//! * [`Xoshiro256PlusPlus`] — the workhorse generator (re-exported as
//!   [`rngs::StdRng`] so call sites read like the `rand` API),
//! * Box–Muller sampling of the standard normal via
//!   [`Rng::standard_normal`].
//!
//! The API deliberately mirrors the subset of `rand 0.8` the rest of
//! the workspace uses: an object-safe [`RngCore`], an extension trait
//! [`Rng`] with `gen`/`gen_range`, and [`SeedableRng::seed_from_u64`].
//!
//! ```
//! use gps_rng::rngs::StdRng;
//! use gps_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.gen(); // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&u));
//! let n = rng.standard_normal(); // Box–Muller
//! assert!(n.is_finite());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Distinct from `rand`'s ChaCha-based `StdRng`; streams produced
    /// for a given seed differ from the `rand 0.8` era but remain
    /// fully deterministic and portable across platforms.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// Object-safe source of pseudo-random 64-bit words.
///
/// `&mut dyn RngCore` is used where generators cross trait-object
/// boundaries (e.g. receiver-clock models).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from `state`, expanding it
    /// through SplitMix64 so that nearby seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
///
/// The counterpart of `rand`'s `Standard` distribution: `f64`/`f32`
/// are uniform in `[0, 1)`, integers take the full range, `bool` is a
/// fair coin.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` endpoints.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample(rng);
        // Clamp guards against `lo + span` rounding up to `hi`.
        let v = lo + (hi - lo) * u;
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire's multiply-shift maps 64 random bits onto the
                // span; bias is < span / 2^64, irrelevant at our sizes.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods for every [`RngCore`].
///
/// Blanket-implemented, so the methods are available on concrete
/// generators and on `&mut dyn RngCore` alike.
pub trait Rng: RngCore {
    /// Draws one value of type `T` (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws a standard normal deviate via the Box–Muller transform.
    fn standard_normal(&mut self) -> f64 {
        // Re-draw until u1 is safely non-zero so ln(u1) is finite.
        let mut u1: f64 = self.gen();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.gen();
        }
        let u2: f64 = self.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws from `N(mean, std_dev²)`.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_doubles_stay_in_range_and_fill_it() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min {lo}");
        assert!(hi > 0.99, "max {hi}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5.0..3.0);
            assert!((-5.0..3.0).contains(&x));
            let n = rng.gen_range(2usize..17);
            assert!((2..17).contains(&n));
            let i = rng.gen_range(-40i32..-30);
            assert!((-40..-30).contains(&i));
        }
    }

    #[test]
    fn standard_normal_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(2010);
        let n = 50_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.standard_normal();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = dyn_rng.standard_normal();
        assert!(n.is_finite());
    }
}
