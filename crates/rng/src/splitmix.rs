//! SplitMix64 — Steele, Lea & Flood's 64-bit mixing generator.
//!
//! Public-domain algorithm (Vigna's `splitmix64.c`). Statistically
//! strong for its size and, crucially, able to turn *any* `u64` seed —
//! including 0 — into a well-mixed stream, which is why it is the
//! recommended seeder for the xoshiro family.

use crate::{RngCore, SeedableRng};

/// SplitMix64 generator; 8 bytes of state, one add + two xor-shifts
/// per output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream starts at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}
