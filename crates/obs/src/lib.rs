//! Observation data model and synthetic dataset generation.
//!
//! The paper evaluates on four 24-hour observation files from CORS land
//! observation stations (Table 5.1): per second, "all available
//! satellites' coordinates and pseudo-ranges are contained in one data
//! item. Generally each item contains data for 8 to 12 satellites." Those
//! files are not redistributable, so this crate regenerates statistically
//! equivalent data:
//!
//! * [`Station`] — station metadata; [`paper_stations`] returns the four
//!   Table 5.1 stations with their **exact published ECEF coordinates**,
//!   collection dates and clock-correction types;
//! * [`SatObservation`] / [`Epoch`] / [`DataSet`] — the in-memory data
//!   model consumed by the solvers (coordinates + pseudoranges only; the
//!   generator's hidden truth is carried separately for evaluation);
//! * [`DatasetGenerator`] — wires the `gps-orbits` constellation,
//!   `gps-atmosphere` error budget and `gps-clock` receiver clocks into the
//!   paper's pseudorange model `ρᵉᵢ = ρᵢ + εᵢˢ + εᴿ` (eq. 3-5);
//! * [`format`](mod@format) — a RINEX-inspired line-oriented text format so datasets
//!   can be persisted and reloaded.
//!
//! # Example
//!
//! ```
//! use gps_obs::{paper_stations, DatasetGenerator};
//!
//! let station = &paper_stations()[0]; // SRZN
//! let data = DatasetGenerator::new(42)
//!     .epoch_interval_s(30.0)
//!     .epoch_count(10)
//!     .generate(station);
//! assert_eq!(data.epochs().len(), 10);
//! // Every epoch sees the 6+ satellites the paper reports.
//! assert!(data.epochs().iter().all(|e| e.observations().len() >= 6));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod data;
pub mod dgps;
pub mod format;
mod generator;
mod station;
mod trajectory;

pub use data::{DataSet, Epoch, EpochTruth, ExtendedObservables, SatObservation};
pub use generator::DatasetGenerator;
pub use station::{paper_stations, Station};
pub use trajectory::{
    CircularTrajectory, GreatCircleTrajectory, KinematicGenerator, StaticTrajectory, Trajectory,
};
