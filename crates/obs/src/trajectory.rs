//! Moving-receiver trajectories and kinematic observation streams.
//!
//! The paper motivates its algorithms with objects that "move at a high
//! speed" (§1). This module provides the moving-truth counterpart of the
//! static dataset generator: a [`Trajectory`] describes where the
//! receiver truly is at any time, and [`KinematicGenerator`] samples it
//! into per-epoch observations with the same pseudorange model as the
//! static path (eq. 3-5).

use gps_atmosphere::ErrorBudget;
use gps_clock::{ReceiverClock, SteeringClock};
use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_geodesy::{Ecef, Enu, Geodetic, LocalFrame};
use gps_orbits::Constellation;
use gps_rng::rngs::StdRng;
use gps_rng::SeedableRng;
use gps_time::{Duration, GpsTime};

use crate::{Epoch, EpochTruth, SatObservation};

/// A receiver's true motion: position as a function of time.
pub trait Trajectory {
    /// True ECEF position at time `t`.
    fn position_at(&self, t: GpsTime) -> Ecef;
}

/// A stationary receiver (reduces the kinematic generator to the static
/// case; useful in tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticTrajectory {
    /// The fixed position.
    pub position: Ecef,
}

impl Trajectory for StaticTrajectory {
    fn position_at(&self, _t: GpsTime) -> Ecef {
        self.position
    }
}

/// Constant ground velocity in a local ENU frame: the "vehicle on a
/// straight road / aircraft on a leg" model.
///
/// # Example
///
/// ```
/// use gps_obs::{GreatCircleTrajectory, Trajectory};
/// use gps_geodesy::Geodetic;
/// use gps_time::{Duration, GpsTime};
///
/// let start = Geodetic::from_deg(45.0, 7.6, 10_000.0).to_ecef();
/// let traj = GreatCircleTrajectory::new(start, 60f64.to_radians(), 250.0, GpsTime::EPOCH);
/// let t1 = GpsTime::EPOCH + Duration::from_seconds(10.0);
/// let moved = traj.position_at(t1).distance_to(traj.position_at(GpsTime::EPOCH));
/// assert!((moved - 2_500.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreatCircleTrajectory {
    frame: LocalFrame,
    /// Heading clockwise from north, radians.
    heading: f64,
    /// Ground speed, m/s.
    speed: f64,
    /// Departure time.
    start: GpsTime,
}

impl GreatCircleTrajectory {
    /// Creates a constant-velocity leg departing `start_position` at
    /// `start` time with the given heading (radians from north) and speed
    /// (m/s).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative.
    #[must_use]
    pub fn new(start_position: Ecef, heading_rad: f64, speed_m_s: f64, start: GpsTime) -> Self {
        assert!(speed_m_s >= 0.0, "speed must be non-negative");
        GreatCircleTrajectory {
            frame: LocalFrame::new(start_position),
            heading: heading_rad,
            speed: speed_m_s,
            start,
        }
    }
}

impl Trajectory for GreatCircleTrajectory {
    fn position_at(&self, t: GpsTime) -> Ecef {
        let along = self.speed * (t - self.start).as_seconds();
        self.frame.to_ecef(Enu::new(
            along * self.heading.sin(),
            along * self.heading.cos(),
            0.0,
        ))
    }
}

/// A circular loop (orbit-track / holding-pattern model): constant speed
/// on a circle of given radius in the local horizontal plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircularTrajectory {
    frame: LocalFrame,
    /// Loop radius, metres.
    radius: f64,
    /// Angular rate, rad/s (speed / radius).
    rate: f64,
    start: GpsTime,
}

impl CircularTrajectory {
    /// Creates a circular loop centred on `center` with the given radius
    /// (m) and ground speed (m/s).
    ///
    /// # Panics
    ///
    /// Panics if radius or speed is not strictly positive.
    #[must_use]
    pub fn new(center: Ecef, radius_m: f64, speed_m_s: f64, start: GpsTime) -> Self {
        assert!(radius_m > 0.0, "radius must be positive");
        assert!(speed_m_s > 0.0, "speed must be positive");
        CircularTrajectory {
            frame: LocalFrame::new(center),
            radius: radius_m,
            rate: speed_m_s / radius_m,
            start,
        }
    }
}

impl Trajectory for CircularTrajectory {
    fn position_at(&self, t: GpsTime) -> Ecef {
        let angle = self.rate * (t - self.start).as_seconds();
        self.frame.to_ecef(Enu::new(
            self.radius * angle.sin(),
            self.radius * angle.cos(),
            0.0,
        ))
    }
}

/// Generates kinematic observation epochs: per epoch, the true position
/// comes from a [`Trajectory`] and pseudoranges follow the paper's
/// eq. 3-5 error model.
///
/// Unlike the static [`crate::DatasetGenerator`], the output epochs carry
/// a moving truth, so they are returned together with the true positions
/// rather than as a station-anchored [`crate::DataSet`].
#[derive(Debug, Clone)]
pub struct KinematicGenerator {
    seed: u64,
    elevation_mask: f64,
    budget: ErrorBudget,
    clock: SteeringClock,
}

impl KinematicGenerator {
    /// Creates a generator with a 7.5° mask, the standard error budget,
    /// and a steered receiver clock.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        KinematicGenerator {
            seed,
            elevation_mask: 7.5f64.to_radians(),
            budget: ErrorBudget::default(),
            clock: SteeringClock::default(),
        }
    }

    /// Sets the elevation mask in degrees.
    #[must_use]
    pub fn elevation_mask_deg(mut self, degrees: f64) -> Self {
        self.elevation_mask = degrees.to_radians();
        self
    }

    /// Replaces the error budget.
    #[must_use]
    pub fn error_budget(mut self, budget: ErrorBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Generates `count` epochs at `interval` spacing starting at
    /// `start`, following `trajectory`. Returns `(epoch, true position)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not strictly positive.
    #[must_use]
    pub fn generate<T: Trajectory>(
        &self,
        trajectory: &T,
        start: GpsTime,
        interval: Duration,
        count: usize,
    ) -> Vec<(Epoch, Ecef)> {
        assert!(interval.is_positive(), "interval must be positive");
        let constellation = Constellation::gps_nominal_at(GpsTime::EPOCH);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clock = self.clock.clone();

        let mut out = Vec::with_capacity(count);
        for (k, t) in start.epochs(interval, count).enumerate() {
            if k > 0 {
                clock.advance(interval, &mut rng);
            }
            let truth = trajectory.position_at(t);
            let geo = Geodetic::from_ecef(truth);
            let eps_r = clock.bias() * SPEED_OF_LIGHT;
            let observations: Vec<SatObservation> = constellation
                .visible_from(truth, t, self.elevation_mask)
                .iter()
                .map(|v| {
                    let err = self
                        .budget
                        .draw(geo, v.elevation, v.azimuth, t, &mut rng)
                        .total();
                    SatObservation {
                        sat: v.id,
                        position: v.position,
                        pseudorange: v.range + err + eps_r,
                        elevation: v.elevation,
                        extended: None,
                    }
                })
                .collect();
            out.push((
                Epoch::new(
                    t,
                    observations,
                    EpochTruth {
                        clock_bias: clock.bias(),
                        clock_reset: false,
                    },
                ),
                truth,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_pos() -> Ecef {
        Geodetic::from_deg(45.0, 7.6, 10_000.0).to_ecef()
    }

    #[test]
    fn static_trajectory_is_constant() {
        let traj = StaticTrajectory {
            position: start_pos(),
        };
        let a = traj.position_at(GpsTime::EPOCH);
        let b = traj.position_at(GpsTime::EPOCH + Duration::from_hours(5.0));
        assert_eq!(a, b);
    }

    #[test]
    fn great_circle_speed_is_exact_locally() {
        let traj = GreatCircleTrajectory::new(start_pos(), 1.0, 100.0, GpsTime::EPOCH);
        let d = traj
            .position_at(GpsTime::EPOCH + Duration::from_seconds(10.0))
            .distance_to(traj.position_at(GpsTime::EPOCH));
        assert!((d - 1_000.0).abs() < 0.5, "moved {d}");
    }

    #[test]
    fn circular_trajectory_returns_to_start() {
        let traj = CircularTrajectory::new(start_pos(), 5_000.0, 50.0, GpsTime::EPOCH);
        let period = std::f64::consts::TAU * 5_000.0 / 50.0;
        let a = traj.position_at(GpsTime::EPOCH);
        let b = traj.position_at(GpsTime::EPOCH + Duration::from_seconds(period));
        assert!(a.distance_to(b) < 1.0, "gap {}", a.distance_to(b));
        // Half a loop is a diameter away.
        let c = traj.position_at(GpsTime::EPOCH + Duration::from_seconds(period / 2.0));
        assert!((a.distance_to(c) - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn kinematic_generation_tracks_truth() {
        let traj =
            GreatCircleTrajectory::new(start_pos(), 0.5, 250.0, GpsTime::new(1544, 30_000.0));
        let epochs = KinematicGenerator::new(4)
            .error_budget(ErrorBudget::disabled())
            .generate(
                &traj,
                GpsTime::new(1544, 30_000.0),
                Duration::from_seconds(1.0),
                20,
            );
        assert_eq!(epochs.len(), 20);
        for (epoch, truth) in &epochs {
            assert!(epoch.observations().len() >= 5);
            // With errors disabled (and ~0 clock), pseudoranges equal the
            // geometric range from the *moving* truth.
            let eps_r = epoch.truth().clock_bias * SPEED_OF_LIGHT;
            for o in epoch.observations() {
                let range = truth.distance_to(o.position);
                assert!((o.pseudorange - range - eps_r).abs() < 1e-6);
            }
        }
        // Truth actually moves.
        let total = epochs[19].1.distance_to(epochs[0].1);
        assert!((total - 250.0 * 19.0).abs() < 5.0, "moved {total}");
    }

    #[test]
    fn kinematic_generation_is_deterministic() {
        let traj = GreatCircleTrajectory::new(start_pos(), 0.0, 50.0, GpsTime::EPOCH);
        let a = KinematicGenerator::new(9).generate(
            &traj,
            GpsTime::EPOCH,
            Duration::from_seconds(2.0),
            5,
        );
        let b = KinematicGenerator::new(9).generate(
            &traj,
            GpsTime::EPOCH,
            Duration::from_seconds(2.0),
            5,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn circular_rejects_bad_radius() {
        let _ = CircularTrajectory::new(start_pos(), 0.0, 50.0, GpsTime::EPOCH);
    }
}
