use gps_atmosphere::ErrorBudget;
use gps_clock::{CorrectionType, ReceiverClock, SteeringClock, ThresholdClock};
use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_orbits::Constellation;
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use gps_time::{Duration, GpsTime};

use crate::{DataSet, Epoch, EpochTruth, SatObservation, Station};

/// Standard normal draw (Box–Muller), for the extended observables'
/// tracking noise.
fn gaussian_sample(rng: &mut StdRng) -> f64 {
    rng.standard_normal()
}

/// Synthetic dataset generator: the substitute for the paper's CORS
/// downloads.
///
/// Implements the paper's pseudorange model (eq. 3-5):
///
/// `ρᵉᵢ = ρᵢ + εᵢˢ + εᴿ`
///
/// where `ρᵢ` is the geometric range from the station's ground-truth
/// coordinates to the simulated satellite position, `εᵢˢ` is drawn from
/// the composite [`ErrorBudget`] independently per satellite (matching
/// eq. 4-14/4-15), and `εᴿ = c·Δt` comes from a simulated receiver clock
/// with the station's Table 5.1 correction discipline.
///
/// The generator is a non-consuming builder; call
/// [`DatasetGenerator::generate`] for any number of stations.
///
/// # Example
///
/// ```
/// use gps_obs::{paper_stations, DatasetGenerator};
///
/// let data = DatasetGenerator::new(7)
///     .epoch_interval_s(60.0)
///     .epoch_count(5)
///     .generate(&paper_stations()[1]);
/// let (min, max) = data.satellite_count_range();
/// assert!(min >= 5 && max <= 14);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    seed: u64,
    epoch_interval: Duration,
    epoch_count: usize,
    elevation_mask: f64,
    budget: ErrorBudget,
    steering_template: SteeringClock,
    threshold_template: ThresholdClock,
    extended_observables: bool,
    constellation: Constellation,
}

impl DatasetGenerator {
    /// Creates a generator with the paper-like defaults: 30 s epochs, one
    /// day of data (2 880 epochs), 10° elevation mask, the standard error
    /// budget, and default clock models.
    ///
    /// (The paper's files are 1 Hz / 86 400 epochs; pass
    /// `.epoch_interval_s(1.0).epoch_count(86_400)` for the full-rate
    /// equivalent. Rates and ratios are insensitive to the cadence.)
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DatasetGenerator {
            seed,
            epoch_interval: Duration::from_seconds(30.0),
            epoch_count: 2_880,
            elevation_mask: 10.0f64.to_radians(),
            budget: ErrorBudget::default(),
            steering_template: SteeringClock::default(),
            threshold_template: ThresholdClock::default(),
            extended_observables: false,
            constellation: Constellation::gps_nominal_at(GpsTime::EPOCH),
        }
    }

    /// Replaces the simulated space segment (default: the 31-vehicle
    /// nominal GPS constellation). Pass
    /// [`Constellation::multi_gnss_nominal`] for the ~40-visible
    /// large-constellation regime of the `theta_vs_m` experiment.
    #[must_use]
    pub fn constellation(mut self, constellation: Constellation) -> Self {
        self.constellation = constellation;
        self
    }

    /// Also generates the extended observables (satellite velocity,
    /// Doppler range rate, carrier phase-range) per satellite — the
    /// inputs to velocity solving and carrier smoothing. Default off
    /// (the paper's datasets are code-only).
    #[must_use]
    pub fn extended_observables(mut self, enabled: bool) -> Self {
        self.extended_observables = enabled;
        self
    }

    /// Sets the epoch spacing in seconds (default 30).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not strictly positive.
    #[must_use]
    pub fn epoch_interval_s(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "epoch interval must be positive");
        self.epoch_interval = Duration::from_seconds(seconds);
        self
    }

    /// Sets the number of epochs to generate (default 2 880).
    #[must_use]
    pub fn epoch_count(mut self, count: usize) -> Self {
        self.epoch_count = count;
        self
    }

    /// Sets the elevation mask in degrees (default 10°).
    #[must_use]
    pub fn elevation_mask_deg(mut self, degrees: f64) -> Self {
        self.elevation_mask = degrees.to_radians();
        self
    }

    /// Replaces the satellite-dependent error budget (default
    /// [`ErrorBudget::default`]); use [`ErrorBudget::disabled`] for
    /// noise-free data.
    #[must_use]
    pub fn error_budget(mut self, budget: ErrorBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the steering-clock template used for steering stations.
    #[must_use]
    pub fn steering_clock(mut self, clock: SteeringClock) -> Self {
        self.steering_template = clock;
        self
    }

    /// Replaces the threshold-clock template used for threshold stations.
    #[must_use]
    pub fn threshold_clock(mut self, clock: ThresholdClock) -> Self {
        self.threshold_template = clock;
        self
    }

    /// Generates the dataset for one station.
    ///
    /// Each station gets an independent RNG stream derived from the seed
    /// and the station id, so regenerating one station is reproducible
    /// regardless of generation order.
    #[must_use]
    pub fn generate(&self, station: &Station) -> DataSet {
        // Derive a per-station seed (FNV-style mix of id bytes).
        let mut station_seed = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in station.id().bytes() {
            station_seed = station_seed
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(u64::from(b));
        }
        let mut rng = StdRng::seed_from_u64(station_seed);

        let start = GpsTime::from_date(station.date());
        let constellation = &self.constellation;
        let station_geo = station.geodetic();
        let station_pos = station.position();

        let mut clock: Box<dyn ReceiverClock> = match station.correction_type() {
            CorrectionType::Steering => Box::new(self.steering_template.clone()),
            CorrectionType::Threshold => Box::new(self.threshold_template.clone()),
        };

        // Carrier ambiguities are constant per satellite pass; one draw
        // per satellite for the whole dataset (no cycle slips simulated).
        let mut ambiguities: std::collections::HashMap<gps_orbits::SatId, f64> =
            std::collections::HashMap::new();

        let mut epochs = Vec::with_capacity(self.epoch_count);
        for t in start.epochs(self.epoch_interval, self.epoch_count) {
            if !epochs.is_empty() {
                clock.advance(self.epoch_interval, &mut rng);
            }
            let clock_bias = clock.bias();
            let epsilon_r = clock_bias * SPEED_OF_LIGHT;

            let visible = constellation.visible_from(station_pos, t, self.elevation_mask);
            let observations: Vec<SatObservation> = visible
                .iter()
                .map(|v| {
                    let error = self
                        .budget
                        .draw(station_geo, v.elevation, v.azimuth, t, &mut rng);
                    let extended = self.extended_observables.then(|| {
                        let (_, sat_vel) = constellation
                            .get(v.id)
                            .expect("visible satellite exists")
                            .position_velocity_at(t);
                        let u = (v.position - station_pos) / v.range;
                        // Static station: range rate = u·v_sat, plus the
                        // receiver clock drift common to all channels,
                        // plus ~5 cm/s of tracking noise.
                        let doppler = sat_vel.dot(u)
                            + clock.drift_rate() * SPEED_OF_LIGHT
                            + 0.05 * gaussian_sample(&mut rng);
                        // Carrier phase: same geometry and clock, the
                        // *dispersive* iono term flips sign, code-only
                        // errors (multipath, DLL noise) are absent, plus
                        // a per-satellite constant ambiguity and mm noise.
                        let ambiguity = ambiguities
                            .entry(v.id)
                            .or_insert_with(|| (rng.gen::<f64>() - 0.5) * 4.0e5);
                        let phase = v.range + epsilon_r - error.iono
                            + error.tropo
                            + error.sat_clock
                            + *ambiguity
                            + 0.003 * gaussian_sample(&mut rng);
                        crate::ExtendedObservables {
                            velocity: sat_vel,
                            doppler,
                            phase,
                        }
                    });
                    SatObservation {
                        sat: v.id,
                        position: v.position,
                        pseudorange: v.range + error.total() + epsilon_r,
                        elevation: v.elevation,
                        extended,
                    }
                })
                .collect();

            epochs.push(Epoch::new(
                t,
                observations,
                EpochTruth {
                    clock_bias,
                    clock_reset: clock.was_reset(),
                },
            ));
        }
        DataSet::new(station.clone(), epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_stations;
    use gps_atmosphere::ErrorBudget;

    fn quick(seed: u64) -> DatasetGenerator {
        DatasetGenerator::new(seed)
            .epoch_interval_s(30.0)
            .epoch_count(20)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let station = &paper_stations()[0];
        let a = quick(1).generate(station);
        let b = quick(1).generate(station);
        assert_eq!(a, b);
        let c = quick(2).generate(station);
        assert_ne!(a, c);
    }

    #[test]
    fn pseudoranges_near_geometric_range() {
        let station = &paper_stations()[0];
        let data = quick(3).generate(station);
        for e in data.epochs() {
            for o in e.observations() {
                let range = station.position().distance_to(o.position);
                let diff = o.pseudorange - range;
                // Errors are metre-level plus clock (≤ ms → ≤ 300 km);
                // with the default steering clock ≤ ~0.1 ms → ≤ 30 km.
                assert!(diff.abs() < 5.0e4, "diff {diff}");
            }
        }
    }

    #[test]
    fn noise_free_data_equals_range_plus_clock() {
        let station = &paper_stations()[0];
        let data = DatasetGenerator::new(4)
            .epoch_count(5)
            .error_budget(ErrorBudget::disabled())
            .generate(station);
        for e in data.epochs() {
            let eps_r = e.truth().clock_bias * SPEED_OF_LIGHT;
            for o in e.observations() {
                let range = station.position().distance_to(o.position);
                assert!(
                    (o.pseudorange - range - eps_r).abs() < 1e-6,
                    "residual {}",
                    o.pseudorange - range - eps_r
                );
            }
        }
    }

    #[test]
    fn observations_elevation_sorted_and_masked() {
        let station = &paper_stations()[1];
        let data = quick(5).elevation_mask_deg(15.0).generate(station);
        for e in data.epochs() {
            for pair in e.observations().windows(2) {
                assert!(pair[0].elevation >= pair[1].elevation);
            }
            for o in e.observations() {
                assert!(o.elevation >= 15.0f64.to_radians() - 1e-12);
            }
        }
    }

    #[test]
    fn satellite_counts_in_paper_band() {
        for station in &paper_stations() {
            let data = DatasetGenerator::new(6)
                .epoch_interval_s(600.0)
                .epoch_count(144) // full day coverage at 10-min cadence
                .generate(station);
            let (min, max) = data.satellite_count_range();
            assert!(min >= 5, "{}: min {min}", station.id());
            assert!(max <= 15, "{}: max {max}", station.id());
        }
    }

    #[test]
    fn multi_gnss_constellation_reaches_large_m() {
        let station = &paper_stations()[0];
        let data = quick(9)
            .epoch_interval_s(900.0)
            .epoch_count(96)
            .elevation_mask_deg(5.0)
            .constellation(Constellation::multi_gnss_nominal())
            .generate(station);
        let (min, max) = data.satellite_count_range();
        assert!(min >= 25, "min visible {min}");
        assert!(max >= 40, "max visible {max} never reaches the m=40 regime");
        assert!(max <= 55, "max visible {max}");
        // Per-epoch ids stay unique across the three PRN blocks.
        for e in data.epochs() {
            let mut ids: Vec<u8> = e.observations().iter().map(|o| o.sat.prn()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), e.observations().len());
        }
    }

    #[test]
    fn threshold_station_records_resets() {
        // KYCP uses the threshold discipline; with the default clock the
        // bias ramps and resets roughly every ~14 h.
        let station = &paper_stations()[3];
        let data = DatasetGenerator::new(7)
            .epoch_interval_s(60.0)
            .epoch_count(1_440) // one day
            .generate(station);
        let resets: usize = data
            .epochs()
            .iter()
            .filter(|e| e.truth().clock_reset)
            .count();
        assert!(resets >= 1, "expected at least one reset");
        // Bias magnitude bounded by the threshold.
        for e in data.epochs() {
            assert!(e.truth().clock_bias.abs() <= 1.1e-3);
        }
    }

    #[test]
    fn steering_station_has_no_resets_and_small_bias() {
        let station = &paper_stations()[0];
        let data = quick(8).generate(station);
        for e in data.epochs() {
            assert!(!e.truth().clock_reset);
            assert!(e.truth().clock_bias.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interval() {
        let _ = DatasetGenerator::new(1).epoch_interval_s(0.0);
    }

    #[test]
    fn extended_observables_off_by_default() {
        let data = quick(41).generate(&paper_stations()[0]);
        assert!(data
            .epochs()
            .iter()
            .all(|e| e.observations().iter().all(|o| o.extended.is_none())));
    }

    #[test]
    fn extended_doppler_matches_orbital_geometry() {
        // Noise-free budget: Doppler = u·v_sat + c·drift exactly, up to
        // the 5 cm/s tracking noise.
        let station = &paper_stations()[0]; // steering: drift_rate = 0
        let data = quick(42)
            .error_budget(ErrorBudget::disabled())
            .extended_observables(true)
            .generate(station);
        let constellation = gps_orbits::Constellation::gps_nominal_at(gps_time::GpsTime::EPOCH);
        for epoch in data.epochs().iter().take(5) {
            for o in epoch.observations() {
                let ext = o.extended.expect("extended enabled");
                let (sat_pos, sat_vel) = constellation
                    .get(o.sat)
                    .unwrap()
                    .position_velocity_at(epoch.time());
                assert!(sat_pos.distance_to(o.position) < 1e-6);
                assert!((ext.velocity - sat_vel).norm() < 1e-9);
                let u = (o.position - station.position()).normalized();
                let geometric_rate = sat_vel.dot(u);
                assert!(
                    (ext.doppler - geometric_rate).abs() < 0.3,
                    "doppler err {}",
                    ext.doppler - geometric_rate
                );
            }
        }
    }

    #[test]
    fn extended_phase_tracks_range_changes() {
        // Phase differences between consecutive epochs track true range
        // changes to centimetres (ambiguity cancels).
        let station = &paper_stations()[0];
        let data = quick(43)
            .error_budget(ErrorBudget::disabled())
            .extended_observables(true)
            .generate(station);
        let e0 = &data.epochs()[0];
        let e1 = &data.epochs()[1];
        let eps0 = e0.truth().clock_bias * SPEED_OF_LIGHT;
        let eps1 = e1.truth().clock_bias * SPEED_OF_LIGHT;
        for o0 in e0.observations() {
            if let Some(o1) = e1.observations().iter().find(|o| o.sat == o0.sat) {
                let dphase = o1.extended.unwrap().phase - o0.extended.unwrap().phase;
                let drange = station.position().distance_to(o1.position)
                    - station.position().distance_to(o0.position)
                    + (eps1 - eps0);
                assert!(
                    (dphase - drange).abs() < 0.05,
                    "{}: dphase {dphase} vs drange {drange}",
                    o0.sat
                );
            }
        }
    }

    #[test]
    fn threshold_station_doppler_carries_clock_drift() {
        // KYCP's clock drifts at 2e-8 s/s → every Doppler is offset by
        // c·2e-8 ≈ 6 m/s relative to pure geometry.
        let station = &paper_stations()[3];
        let data = quick(44)
            .error_budget(ErrorBudget::disabled())
            .extended_observables(true)
            .generate(station);
        let epoch = &data.epochs()[0];
        let mut offsets = Vec::new();
        for o in epoch.observations() {
            let ext = o.extended.unwrap();
            let u = (o.position - station.position()).normalized();
            offsets.push(ext.doppler - ext.velocity.dot(u));
        }
        let mean: f64 = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let expected = 2e-8 * SPEED_OF_LIGHT;
        assert!(
            (mean - expected).abs() < 0.5,
            "mean offset {mean} vs {expected}"
        );
    }

    #[test]
    fn extended_round_trips_through_format() {
        let data = quick(45)
            .epoch_count(4)
            .extended_observables(true)
            .generate(&paper_stations()[1]);
        assert!(data.epochs()[0].observations()[0].extended.is_some());
        let text = crate::format::write(&data);
        let back = crate::format::parse(&text).expect("round trip");
        assert_eq!(back, data);
    }
}
