use std::fmt;

use gps_clock::CorrectionType;
use gps_geodesy::{Ecef, Geodetic};
use gps_time::Date;

/// A GPS observation station: the ground-truth receiver whose position the
/// algorithms estimate.
///
/// Mirrors one row of the paper's Table 5.1 (site id, ECEF coordinates,
/// date of collection, clock correction type).
///
/// # Example
///
/// ```
/// use gps_obs::paper_stations;
///
/// let stations = paper_stations();
/// assert_eq!(stations.len(), 4);
/// assert_eq!(stations[0].id(), "SRZN");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    id: String,
    position: Ecef,
    date: Date,
    correction: CorrectionType,
}

impl Station {
    /// Creates a station.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not near the Earth's surface (within
    /// ±100 km of the WGS-84 ellipsoid) — a plausibility check that catches
    /// unit mistakes (km vs m) early.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        position: Ecef,
        date: Date,
        correction: CorrectionType,
    ) -> Self {
        let height = Geodetic::from_ecef(position).height();
        assert!(
            height.abs() < 100_000.0,
            "station height {height} m is not near the Earth's surface"
        );
        Station {
            id: id.into(),
            position,
            date,
            correction,
        }
    }

    /// Site identifier (e.g. `"SRZN"`).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Ground-truth ECEF position — the `(x, y, z)` of the paper's
    /// eq. 5-1 against which absolute errors are measured.
    #[must_use]
    pub fn position(&self) -> Ecef {
        self.position
    }

    /// Geodetic form of the position (for atmosphere models).
    #[must_use]
    pub fn geodetic(&self) -> Geodetic {
        Geodetic::from_ecef(self.position)
    }

    /// Date of data collection.
    #[must_use]
    pub fn date(&self) -> Date {
        self.date
    }

    /// Clock-correction discipline the station's receiver applies.
    #[must_use]
    pub fn correction_type(&self) -> CorrectionType {
        self.correction
    }
}

impl fmt::Display for Station {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.id, self.position, self.date, self.correction
        )
    }
}

/// The four stations of the paper's Table 5.1, with the exact published
/// ECEF coordinates, collection dates and clock-correction types.
///
/// | No. | Site | Clock correction |
/// |-----|------|------------------|
/// | 1 | SRZN | Steering |
/// | 2 | YYR1 | Steering |
/// | 3 | FAI1 | Steering |
/// | 4 | KYCP | Threshold |
#[must_use]
pub fn paper_stations() -> Vec<Station> {
    vec![
        Station::new(
            "SRZN",
            Ecef::new(3_623_420.032, -5_214_015.434, 602_359.096),
            Date::new(2009, 8, 12).expect("valid date"),
            CorrectionType::Steering,
        ),
        Station::new(
            "YYR1",
            Ecef::new(1_885_341.558, -3_321_428.098, 5_091_171.168),
            Date::new(2009, 10, 23).expect("valid date"),
            CorrectionType::Steering,
        ),
        Station::new(
            "FAI1",
            Ecef::new(-2_304_740.630, -1_448_716.218, 5_748_842.956),
            Date::new(2009, 10, 29).expect("valid date"),
            CorrectionType::Steering,
        ),
        Station::new(
            "KYCP",
            Ecef::new(411_598.861, -5_060_514.896, 3_847_795.506),
            Date::new(2009, 10, 10).expect("valid date"),
            CorrectionType::Threshold,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_stations_match_table_51() {
        let s = paper_stations();
        assert_eq!(s.len(), 4);
        let ids: Vec<&str> = s.iter().map(Station::id).collect();
        assert_eq!(ids, vec!["SRZN", "YYR1", "FAI1", "KYCP"]);
        // Exactly one threshold-corrected station (No. 4).
        let thresholds: Vec<&Station> = s
            .iter()
            .filter(|st| st.correction_type() == CorrectionType::Threshold)
            .collect();
        assert_eq!(thresholds.len(), 1);
        assert_eq!(thresholds[0].id(), "KYCP");
        // Coordinates exactly as published.
        assert_eq!(s[0].position().x, 3_623_420.032);
        assert_eq!(s[3].position().z, 3_847_795.506);
        // Dates as published.
        assert_eq!(s[1].date().to_string(), "2009/10/23");
    }

    #[test]
    fn stations_on_earth_surface() {
        for st in paper_stations() {
            let h = st.geodetic().height();
            assert!(h.abs() < 5_000.0, "{}: height {h}", st.id());
        }
    }

    #[test]
    #[should_panic(expected = "surface")]
    fn rejects_km_scale_mistake() {
        // Coordinates accidentally in kilometres.
        let _ = Station::new(
            "BAD",
            Ecef::new(3_623.42, -5_214.015, 602.359),
            Date::new(2009, 1, 1).unwrap(),
            CorrectionType::Steering,
        );
    }

    #[test]
    fn display_includes_id_and_type() {
        let s = &paper_stations()[0];
        let text = s.to_string();
        assert!(text.contains("SRZN"));
        assert!(text.contains("Steering"));
    }
}
