use gps_geodesy::Ecef;
use gps_orbits::SatId;
use gps_time::GpsTime;

use crate::Station;

/// One satellite's contribution to a data item: "all available satellites'
/// coordinates and pseudo-ranges" (paper §5.2.1).
///
/// This is the *entire* solver input per satellite — the algorithms never
/// see the error decomposition. The paper's experiments need only the
/// code observables; the optional [`ExtendedObservables`] carry what a
/// full receiver also tracks (satellite velocity, Doppler range rate,
/// carrier phase-range), enabling the velocity-solving and
/// carrier-smoothing extensions on generated datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatObservation {
    /// Which satellite.
    pub sat: SatId,
    /// Satellite ECEF position `(xᵢ, yᵢ, zᵢ)`, metres.
    pub position: Ecef,
    /// Measured pseudorange `ρᵉᵢ`, metres (paper eq. 3-5: true range +
    /// satellite-dependent error + receiver clock error).
    pub pseudorange: f64,
    /// Elevation above the station horizon, radians. Real receivers know
    /// this (they computed the satellite position); base-selection
    /// strategies and elevation weighting use it.
    pub elevation: f64,
    /// Optional Doppler/carrier observables.
    pub extended: Option<ExtendedObservables>,
}

/// The optional per-satellite observables beyond code pseudorange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedObservables {
    /// Satellite ECEF velocity (from ephemeris), m/s.
    pub velocity: Ecef,
    /// Measured range rate from Doppler, m/s (includes receiver clock
    /// drift).
    pub doppler: f64,
    /// Carrier phase-range, metres (includes an arbitrary constant
    /// ambiguity per satellite; only its change is meaningful).
    pub phase: f64,
}

/// Hidden per-epoch ground truth carried alongside the observations for
/// evaluation only (never shown to a solver).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochTruth {
    /// True receiver clock bias `Δt`, seconds.
    pub clock_bias: f64,
    /// Whether the receiver clock was step-reset at this epoch (threshold
    /// discipline only).
    pub clock_reset: bool,
}

/// One data item: everything observed at a single instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    time: GpsTime,
    observations: Vec<SatObservation>,
    truth: EpochTruth,
}

impl Epoch {
    /// Creates an epoch from its parts.
    #[must_use]
    pub fn new(time: GpsTime, observations: Vec<SatObservation>, truth: EpochTruth) -> Self {
        Epoch {
            time,
            observations,
            truth,
        }
    }

    /// Observation instant (receiver time scale is handled inside the
    /// pseudoranges; this is the nominal GPS time of the data item).
    #[must_use]
    pub fn time(&self) -> GpsTime {
        self.time
    }

    /// The per-satellite observations, sorted by descending elevation.
    #[must_use]
    pub fn observations(&self) -> &[SatObservation] {
        &self.observations
    }

    /// Evaluation-only ground truth.
    #[must_use]
    pub fn truth(&self) -> EpochTruth {
        self.truth
    }

    /// A copy of the first `m` observations (the m best-placed satellites
    /// when the epoch is elevation-sorted) — the satellite-count sweep of
    /// the paper's Figures 5.1/5.2. Returns all observations if `m`
    /// exceeds the count.
    #[must_use]
    pub fn take_satellites(&self, m: usize) -> Vec<SatObservation> {
        self.observations[..m.min(self.observations.len())].to_vec()
    }
}

/// A full observation dataset: one station, many epochs — the in-memory
/// form of one of the paper's Table 5.1 data files.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSet {
    station: Station,
    epochs: Vec<Epoch>,
}

impl DataSet {
    /// Creates a dataset from a station and its epochs.
    #[must_use]
    pub fn new(station: Station, epochs: Vec<Epoch>) -> Self {
        DataSet { station, epochs }
    }

    /// The observed station (carries the ground-truth coordinates).
    #[must_use]
    pub fn station(&self) -> &Station {
        &self.station
    }

    /// All epochs in time order.
    #[must_use]
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// A copy restricted to epochs with `start ≤ time < end`.
    ///
    /// Useful for splitting a day into calibration and evaluation
    /// windows, or isolating a clock-reset event.
    #[must_use]
    pub fn window(&self, start: GpsTime, end: GpsTime) -> DataSet {
        DataSet {
            station: self.station.clone(),
            epochs: self
                .epochs
                .iter()
                .filter(|e| e.time() >= start && e.time() < end)
                .cloned()
                .collect(),
        }
    }

    /// A copy keeping every `n`-th epoch (cadence reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn decimate(&self, n: usize) -> DataSet {
        assert!(n > 0, "decimation factor must be positive");
        DataSet {
            station: self.station.clone(),
            epochs: self.epochs.iter().step_by(n).cloned().collect(),
        }
    }

    /// Minimum and maximum satellites-per-epoch over the dataset.
    ///
    /// The paper reports 8–12 for its CORS data.
    #[must_use]
    pub fn satellite_count_range(&self) -> (usize, usize) {
        let mut min = usize::MAX;
        let mut max = 0;
        for e in &self.epochs {
            min = min.min(e.observations().len());
            max = max.max(e.observations().len());
        }
        if self.epochs.is_empty() {
            (0, 0)
        } else {
            (min, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_clock::CorrectionType;
    use gps_time::Date;

    fn obs(prn: u8, el: f64) -> SatObservation {
        SatObservation {
            sat: SatId::new(prn),
            position: Ecef::new(2.0e7, 1.0e7, 5.0e6),
            pseudorange: 2.2e7,
            elevation: el,
            extended: None,
        }
    }

    fn station() -> Station {
        Station::new(
            "TEST",
            Ecef::new(3_623_420.0, -5_214_015.0, 602_359.0),
            Date::new(2009, 8, 12).unwrap(),
            CorrectionType::Steering,
        )
    }

    #[test]
    fn take_satellites_prefix() {
        let e = Epoch::new(
            GpsTime::EPOCH,
            vec![obs(1, 1.2), obs(2, 0.9), obs(3, 0.5)],
            EpochTruth::default(),
        );
        assert_eq!(e.take_satellites(2).len(), 2);
        assert_eq!(e.take_satellites(2)[0].sat.prn(), 1);
        // Requesting more than available returns all.
        assert_eq!(e.take_satellites(10).len(), 3);
        assert_eq!(e.take_satellites(0).len(), 0);
    }

    #[test]
    fn dataset_count_range() {
        let e1 = Epoch::new(GpsTime::EPOCH, vec![obs(1, 1.0)], EpochTruth::default());
        let e2 = Epoch::new(
            GpsTime::EPOCH,
            vec![obs(1, 1.0), obs(2, 0.4)],
            EpochTruth::default(),
        );
        let ds = DataSet::new(station(), vec![e1, e2]);
        assert_eq!(ds.satellite_count_range(), (1, 2));
        assert_eq!(ds.station().id(), "TEST");
    }

    #[test]
    fn empty_dataset_range_is_zero() {
        let ds = DataSet::new(station(), vec![]);
        assert_eq!(ds.satellite_count_range(), (0, 0));
    }

    #[test]
    fn window_selects_half_open_range() {
        let mk = |tow: f64| Epoch::new(GpsTime::new(0, tow), vec![], EpochTruth::default());
        let ds = DataSet::new(
            station(),
            vec![mk(0.0), mk(30.0), mk(60.0), mk(90.0), mk(120.0)],
        );
        let w = ds.window(GpsTime::new(0, 30.0), GpsTime::new(0, 90.0));
        assert_eq!(w.epochs().len(), 2);
        assert_eq!(w.epochs()[0].time(), GpsTime::new(0, 30.0));
        assert_eq!(w.epochs()[1].time(), GpsTime::new(0, 60.0));
        assert_eq!(w.station(), ds.station());
        // Empty window.
        assert!(ds
            .window(GpsTime::new(1, 0.0), GpsTime::new(2, 0.0))
            .epochs()
            .is_empty());
    }

    #[test]
    fn decimate_keeps_every_nth() {
        let mk = |tow: f64| Epoch::new(GpsTime::new(0, tow), vec![], EpochTruth::default());
        let ds = DataSet::new(station(), (0..10).map(|k| mk(k as f64)).collect());
        let d = ds.decimate(3);
        assert_eq!(d.epochs().len(), 4); // 0, 3, 6, 9
        assert_eq!(d.epochs()[1].time(), GpsTime::new(0, 3.0));
        assert_eq!(ds.decimate(1), ds);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn decimate_rejects_zero() {
        let ds = DataSet::new(station(), vec![]);
        let _ = ds.decimate(0);
    }

    #[test]
    fn truth_round_trip() {
        let truth = EpochTruth {
            clock_bias: 1e-6,
            clock_reset: true,
        };
        let e = Epoch::new(GpsTime::EPOCH, vec![], truth);
        assert_eq!(e.truth(), truth);
        assert_eq!(e.time(), GpsTime::EPOCH);
    }
}
