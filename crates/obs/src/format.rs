//! RINEX-lite: a line-oriented text format for observation datasets.
//!
//! Real CORS data ships as RINEX observation files; this crate's datasets
//! are synthetic, but persisting them matters for reproducibility (re-run
//! an experiment on the *same* draw) and for exchanging datasets between
//! the examples and benches. The format is a deliberately simple subset:
//!
//! ```text
//! GPS-OBS 1
//! STATION SRZN
//! POSITION 3623420.032 -5214015.434 602359.096
//! DATE 2009/08/12
//! CLOCK Steering
//! > 1544 259200 9 1.2e-7 0          # week tow nsats clock-bias reset
//! G01 <x> <y> <z> <pseudorange> <elevation>
//! ...
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! `write` → `parse` reproduces the dataset bit-for-bit
//! (see the `round_trip` tests).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use gps_clock::CorrectionType;
use gps_geodesy::Ecef;
use gps_orbits::SatId;
use gps_time::{Date, GpsTime};

use crate::{DataSet, Epoch, EpochTruth, SatObservation, Station};

/// Error produced when parsing a RINEX-lite document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// The document did not start with the `GPS-OBS 1` magic line.
    BadMagic,
    /// A header field is missing or malformed.
    BadHeader {
        /// Description of the offending header line.
        what: String,
    },
    /// An epoch or observation line is malformed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "missing GPS-OBS magic header"),
            FormatError::BadHeader { what } => write!(f, "bad header: {what}"),
            FormatError::BadLine { line, what } => write!(f, "bad line {line}: {what}"),
        }
    }
}

impl Error for FormatError {}

/// Serializes a dataset to the RINEX-lite text format.
#[must_use]
pub fn write(data: &DataSet) -> String {
    let mut out = String::new();
    let st = data.station();
    out.push_str("GPS-OBS 1\n");
    out.push_str(&format!("STATION {}\n", st.id()));
    let p = st.position();
    out.push_str(&format!("POSITION {} {} {}\n", p.x, p.y, p.z));
    out.push_str(&format!("DATE {}\n", st.date()));
    out.push_str(&format!("CLOCK {}\n", st.correction_type()));
    for e in data.epochs() {
        let truth = e.truth();
        out.push_str(&format!(
            "> {} {} {} {} {}\n",
            e.time().week(),
            e.time().seconds_of_week(),
            e.observations().len(),
            truth.clock_bias,
            u8::from(truth.clock_reset),
        ));
        for o in e.observations() {
            match &o.extended {
                None => out.push_str(&format!(
                    "{} {} {} {} {} {}\n",
                    o.sat, o.position.x, o.position.y, o.position.z, o.pseudorange, o.elevation
                )),
                Some(ext) => out.push_str(&format!(
                    "{} {} {} {} {} {} {} {} {} {} {}\n",
                    o.sat,
                    o.position.x,
                    o.position.y,
                    o.position.z,
                    o.pseudorange,
                    o.elevation,
                    ext.velocity.x,
                    ext.velocity.y,
                    ext.velocity.z,
                    ext.doppler,
                    ext.phase
                )),
            }
        }
    }
    out
}

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, FormatError> {
    f64::from_str(s).map_err(|_| FormatError::BadLine {
        line,
        what: format!("{what}: `{s}` is not a number"),
    })
}

fn header_value<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    key: &str,
) -> Result<&'a str, FormatError> {
    let line = lines.next().ok_or_else(|| FormatError::BadHeader {
        what: format!("missing {key}"),
    })?;
    line.strip_prefix(key)
        .map(str::trim)
        .ok_or_else(|| FormatError::BadHeader {
            what: format!("expected `{key}`, got `{line}`"),
        })
}

/// Parses a RINEX-lite document back into a [`DataSet`].
///
/// # Errors
///
/// Returns [`FormatError`] when the magic line, a header, or any
/// epoch/observation line is malformed or counts disagree.
pub fn parse(text: &str) -> Result<DataSet, FormatError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("GPS-OBS 1") {
        return Err(FormatError::BadMagic);
    }
    let id = header_value(&mut lines, "STATION")?.to_owned();
    let pos_line = header_value(&mut lines, "POSITION")?;
    let pos_parts: Vec<&str> = pos_line.split_whitespace().collect();
    if pos_parts.len() != 3 {
        return Err(FormatError::BadHeader {
            what: format!("POSITION needs 3 numbers, got `{pos_line}`"),
        });
    }
    let position = Ecef::new(
        parse_f64(pos_parts[0], 3, "position x")?,
        parse_f64(pos_parts[1], 3, "position y")?,
        parse_f64(pos_parts[2], 3, "position z")?,
    );
    let date_line = header_value(&mut lines, "DATE")?;
    let date_parts: Vec<&str> = date_line.split('/').collect();
    let date = match date_parts.as_slice() {
        [y, m, d] => {
            let parse_part = |s: &str, what: &str| {
                s.parse::<u16>().map_err(|_| FormatError::BadHeader {
                    what: format!("bad date {what}: `{s}`"),
                })
            };
            let (y, m, d) = (
                parse_part(y, "year")?,
                parse_part(m, "month")?,
                parse_part(d, "day")?,
            );
            Date::new(y, m as u8, d as u8).map_err(|e| FormatError::BadHeader {
                what: format!("invalid date: {e}"),
            })?
        }
        _ => {
            return Err(FormatError::BadHeader {
                what: format!("DATE must be y/m/d, got `{date_line}`"),
            })
        }
    };
    let clock_line = header_value(&mut lines, "CLOCK")?;
    let correction = match clock_line {
        "Steering" => CorrectionType::Steering,
        "Threshold" => CorrectionType::Threshold,
        other => {
            return Err(FormatError::BadHeader {
                what: format!("unknown clock type `{other}`"),
            })
        }
    };
    let station = Station::new(id, position, date, correction);

    let mut epochs = Vec::new();
    let mut line_no = 5usize;
    let mut lines = lines.peekable();
    while let Some(line) = lines.next() {
        line_no += 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_prefix("> ")
            .ok_or_else(|| FormatError::BadLine {
                line: line_no,
                what: "expected epoch line starting with `>`".to_owned(),
            })?;
        let parts: Vec<&str> = body.split_whitespace().collect();
        if parts.len() != 5 {
            return Err(FormatError::BadLine {
                line: line_no,
                what: "epoch line needs 5 fields".to_owned(),
            });
        }
        let week: i32 = parts[0].parse().map_err(|_| FormatError::BadLine {
            line: line_no,
            what: format!("bad week `{}`", parts[0]),
        })?;
        let tow = parse_f64(parts[1], line_no, "tow")?;
        let nsats: usize = parts[2].parse().map_err(|_| FormatError::BadLine {
            line: line_no,
            what: format!("bad satellite count `{}`", parts[2]),
        })?;
        let clock_bias = parse_f64(parts[3], line_no, "clock bias")?;
        let clock_reset = match parts[4] {
            "0" => false,
            "1" => true,
            other => {
                return Err(FormatError::BadLine {
                    line: line_no,
                    what: format!("bad reset flag `{other}`"),
                })
            }
        };

        let mut observations = Vec::with_capacity(nsats);
        for _ in 0..nsats {
            let obs_line = lines.next().ok_or_else(|| FormatError::BadLine {
                line: line_no,
                what: "unexpected end of file inside epoch".to_owned(),
            })?;
            line_no += 1;
            let fields: Vec<&str> = obs_line.split_whitespace().collect();
            if fields.len() != 6 && fields.len() != 11 {
                return Err(FormatError::BadLine {
                    line: line_no,
                    what: "observation line needs 6 fields (code-only) or 11 (extended)".to_owned(),
                });
            }
            let prn_str = fields[0]
                .strip_prefix('G')
                .ok_or_else(|| FormatError::BadLine {
                    line: line_no,
                    what: format!("bad satellite id `{}`", fields[0]),
                })?;
            let prn: u8 = prn_str.parse().map_err(|_| FormatError::BadLine {
                line: line_no,
                what: format!("bad PRN `{prn_str}`"),
            })?;
            if prn == 0 {
                return Err(FormatError::BadLine {
                    line: line_no,
                    what: "PRN 0 is invalid".to_owned(),
                });
            }
            let extended = if fields.len() == 11 {
                Some(crate::ExtendedObservables {
                    velocity: Ecef::new(
                        parse_f64(fields[6], line_no, "sat vx")?,
                        parse_f64(fields[7], line_no, "sat vy")?,
                        parse_f64(fields[8], line_no, "sat vz")?,
                    ),
                    doppler: parse_f64(fields[9], line_no, "doppler")?,
                    phase: parse_f64(fields[10], line_no, "phase")?,
                })
            } else {
                None
            };
            observations.push(SatObservation {
                sat: SatId::new(prn),
                position: Ecef::new(
                    parse_f64(fields[1], line_no, "sat x")?,
                    parse_f64(fields[2], line_no, "sat y")?,
                    parse_f64(fields[3], line_no, "sat z")?,
                ),
                pseudorange: parse_f64(fields[4], line_no, "pseudorange")?,
                elevation: parse_f64(fields[5], line_no, "elevation")?,
                extended,
            });
        }
        epochs.push(Epoch::new(
            GpsTime::new(week, tow),
            observations,
            EpochTruth {
                clock_bias,
                clock_reset,
            },
        ));
    }
    Ok(DataSet::new(station, epochs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_stations, DatasetGenerator};

    fn sample() -> DataSet {
        DatasetGenerator::new(11)
            .epoch_interval_s(30.0)
            .epoch_count(6)
            .generate(&paper_stations()[3])
    }

    #[test]
    fn round_trip_bit_exact() {
        let data = sample();
        let text = write(&data);
        let back = parse(&text).expect("parse back");
        assert_eq!(back, data);
    }

    #[test]
    fn round_trip_all_paper_stations() {
        for st in &paper_stations() {
            let data = DatasetGenerator::new(12).epoch_count(3).generate(st);
            assert_eq!(parse(&write(&data)).unwrap(), data);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(parse("nonsense\n"), Err(FormatError::BadMagic));
        assert_eq!(parse(""), Err(FormatError::BadMagic));
    }

    #[test]
    fn rejects_truncated_header() {
        let text = "GPS-OBS 1\nSTATION X\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            FormatError::BadHeader { .. }
        ));
    }

    #[test]
    fn rejects_bad_position() {
        let text = "GPS-OBS 1\nSTATION X\nPOSITION 1 2\nDATE 2009/08/12\nCLOCK Steering\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            FormatError::BadHeader { .. }
        ));
    }

    #[test]
    fn rejects_unknown_clock() {
        let data = sample();
        let text = write(&data).replace("CLOCK Threshold", "CLOCK Atomic");
        assert!(matches!(
            parse(&text).unwrap_err(),
            FormatError::BadHeader { .. }
        ));
    }

    #[test]
    fn rejects_truncated_epoch() {
        let data = sample();
        let mut text = write(&data);
        // Drop the last observation line.
        text.truncate(text.trim_end().rfind('\n').unwrap() + 1);
        assert!(matches!(
            parse(&text).unwrap_err(),
            FormatError::BadLine { .. }
        ));
    }

    #[test]
    fn rejects_garbage_observation() {
        let data = sample();
        let text = write(&data);
        let corrupted = text.replacen("G0", "X0", 1);
        assert!(matches!(
            parse(&corrupted).unwrap_err(),
            FormatError::BadLine { .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = FormatError::BadLine {
            line: 17,
            what: "nope".to_owned(),
        };
        assert!(e.to_string().contains("17"));
        assert!(FormatError::BadMagic.to_string().contains("GPS-OBS"));
    }
}
