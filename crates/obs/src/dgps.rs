//! Differential GPS: reference-station corrections (paper §3.3).
//!
//! The paper notes that when "satellite dependent errors can be
//! compensated, 4 satellites are sufficient", citing DGPS as the
//! mechanism: a reference receiver at *known* coordinates measures each
//! satellite's pseudorange error and broadcasts it; nearby rovers
//! subtract it. The shared error components (satellite clock, ionosphere,
//! troposphere — spatially correlated over tens of kilometres) cancel;
//! only the receivers' local multipath/noise and their clock terms
//! remain.
//!
//! Two pieces:
//!
//! * [`DgpsPairGenerator`] — generates a reference dataset and a rover
//!   dataset whose atmospheric/satellite errors are **drawn once and
//!   shared** (the physical spatial correlation), while multipath,
//!   receiver noise and receiver clocks stay independent;
//! * [`corrections`] / [`apply_corrections`] — compute per-satellite range
//!   corrections at the reference and apply them at the rover.

use gps_atmosphere::ErrorBudget;
use gps_clock::{ReceiverClock, SteeringClock};
use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_geodesy::{Ecef, Enu, LocalFrame};
use gps_orbits::{Constellation, SatId};
use gps_rng::rngs::StdRng;
use gps_rng::SeedableRng;
use gps_time::{Duration, GpsTime};

use crate::{DataSet, Epoch, EpochTruth, SatObservation, Station};

/// Per-satellite pseudorange corrections measured at a reference station:
/// `corrᵢ = ρᵉᵢ(ref) − |x_ref − sᵢ|`.
///
/// The correction includes the reference receiver's clock bias (common to
/// every satellite), which a rover's own clock estimate absorbs — exactly
/// how deployed DGPS works.
#[must_use]
pub fn corrections(reference_position: Ecef, epoch: &Epoch) -> Vec<(SatId, f64)> {
    epoch
        .observations()
        .iter()
        .map(|o| {
            (
                o.sat,
                o.pseudorange - reference_position.distance_to(o.position),
            )
        })
        .collect()
}

/// Applies reference corrections to a rover epoch, returning a corrected
/// copy. Satellites without a correction are dropped (the rover cannot
/// use them differentially).
#[must_use]
pub fn apply_corrections(epoch: &Epoch, corrections: &[(SatId, f64)]) -> Epoch {
    let corrected: Vec<SatObservation> = epoch
        .observations()
        .iter()
        .filter_map(|o| {
            corrections
                .iter()
                .find(|(id, _)| *id == o.sat)
                .map(|(_, corr)| {
                    let mut c = *o;
                    c.pseudorange -= corr;
                    c
                })
        })
        .collect();
    Epoch::new(epoch.time(), corrected, epoch.truth())
}

/// Generates a (reference, rover) dataset pair with physically shared
/// error components.
///
/// The rover sits `baseline_east_m`/`baseline_north_m` from the reference
/// in the local tangent plane. Per epoch and satellite, the atmospheric
/// and satellite-clock residuals are drawn **once** and applied to both
/// receivers (spatial correlation at short baselines); multipath and
/// tracking noise are drawn independently per receiver; each receiver has
/// its own steered clock.
#[derive(Debug, Clone)]
pub struct DgpsPairGenerator {
    seed: u64,
    epoch_interval: Duration,
    epoch_count: usize,
    elevation_mask: f64,
    budget: ErrorBudget,
    baseline_east_m: f64,
    baseline_north_m: f64,
}

impl DgpsPairGenerator {
    /// Creates a generator with a 10 km east baseline and the defaults of
    /// [`crate::DatasetGenerator`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DgpsPairGenerator {
            seed,
            epoch_interval: Duration::from_seconds(30.0),
            epoch_count: 120,
            elevation_mask: 7.5f64.to_radians(),
            budget: ErrorBudget::default(),
            baseline_east_m: 10_000.0,
            baseline_north_m: 0.0,
        }
    }

    /// Sets the epoch spacing in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not strictly positive.
    #[must_use]
    pub fn epoch_interval_s(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "epoch interval must be positive");
        self.epoch_interval = Duration::from_seconds(seconds);
        self
    }

    /// Sets the number of epochs.
    #[must_use]
    pub fn epoch_count(mut self, count: usize) -> Self {
        self.epoch_count = count;
        self
    }

    /// Sets the rover's offset from the reference in local ENU metres.
    #[must_use]
    pub fn baseline_enu(mut self, east_m: f64, north_m: f64) -> Self {
        self.baseline_east_m = east_m;
        self.baseline_north_m = north_m;
        self
    }

    /// Generates the pair. Returns `(reference dataset, rover dataset,
    /// rover truth position)`.
    #[must_use]
    pub fn generate(&self, reference: &Station) -> (DataSet, DataSet, Ecef) {
        let frame = LocalFrame::new(reference.position());
        let rover_pos = frame.to_ecef(Enu::new(self.baseline_east_m, self.baseline_north_m, 0.0));
        let rover_station = Station::new(
            format!("{}-ROV", reference.id()),
            rover_pos,
            reference.date(),
            reference.correction_type(),
        );

        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD6_D5_D4_D3);
        let constellation = Constellation::gps_nominal_at(GpsTime::EPOCH);
        let start = GpsTime::from_date(reference.date());
        let ref_geo = reference.geodetic();

        let mut ref_clock = SteeringClock::default();
        let mut rover_clock = SteeringClock::new(-3e-8, 1.2e-8, 240.0);

        let mut ref_epochs = Vec::with_capacity(self.epoch_count);
        let mut rover_epochs = Vec::with_capacity(self.epoch_count);
        for (k, t) in start
            .epochs(self.epoch_interval, self.epoch_count)
            .enumerate()
        {
            if k > 0 {
                ref_clock.advance(self.epoch_interval, &mut rng);
                rover_clock.advance(self.epoch_interval, &mut rng);
            }
            let eps_ref = ref_clock.bias() * SPEED_OF_LIGHT;
            let eps_rov = rover_clock.bias() * SPEED_OF_LIGHT;

            // Visibility from the reference; at ≤ tens-of-km baselines the
            // rover sees the same satellites.
            let visible = constellation.visible_from(reference.position(), t, self.elevation_mask);
            let mut ref_obs = Vec::with_capacity(visible.len());
            let mut rover_obs = Vec::with_capacity(visible.len());
            for v in &visible {
                // Shared (spatially correlated) components: one draw.
                let shared = self
                    .budget
                    .draw(ref_geo, v.elevation, v.azimuth, t, &mut rng);
                let common = shared.iono + shared.tropo + shared.sat_clock;
                // Independent local components per receiver.
                let ref_local = self
                    .budget
                    .draw(ref_geo, v.elevation, v.azimuth, t, &mut rng);
                let rov_local = self
                    .budget
                    .draw(ref_geo, v.elevation, v.azimuth, t, &mut rng);

                ref_obs.push(SatObservation {
                    sat: v.id,
                    position: v.position,
                    pseudorange: v.range + common + ref_local.multipath + ref_local.noise + eps_ref,
                    elevation: v.elevation,
                    extended: None,
                });
                let rover_range = rover_pos.distance_to(v.position);
                rover_obs.push(SatObservation {
                    sat: v.id,
                    position: v.position,
                    pseudorange: rover_range
                        + common
                        + rov_local.multipath
                        + rov_local.noise
                        + eps_rov,
                    elevation: v.elevation,
                    extended: None,
                });
            }
            ref_epochs.push(Epoch::new(
                t,
                ref_obs,
                EpochTruth {
                    clock_bias: ref_clock.bias(),
                    clock_reset: false,
                },
            ));
            rover_epochs.push(Epoch::new(
                t,
                rover_obs,
                EpochTruth {
                    clock_bias: rover_clock.bias(),
                    clock_reset: false,
                },
            ));
        }
        (
            DataSet::new(reference.clone(), ref_epochs),
            DataSet::new(rover_station, rover_epochs),
            rover_pos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_stations;

    fn pair() -> (DataSet, DataSet, Ecef) {
        DgpsPairGenerator::new(7)
            .epoch_interval_s(60.0)
            .epoch_count(20)
            .baseline_enu(8_000.0, 3_000.0)
            .generate(&paper_stations()[0])
    }

    #[test]
    fn rover_sits_on_requested_baseline() {
        let (reference, rover, rover_pos) = pair();
        let d = reference.station().position().distance_to(rover_pos);
        let expected = (8_000.0f64.powi(2) + 3_000.0f64.powi(2)).sqrt();
        assert!((d - expected).abs() < 1.0, "baseline {d}");
        assert_eq!(rover.station().position(), rover_pos);
        assert_eq!(rover.station().id(), "SRZN-ROV");
    }

    #[test]
    fn epochs_share_satellite_sets() {
        let (reference, rover, _) = pair();
        for (re, ro) in reference.epochs().iter().zip(rover.epochs()) {
            assert_eq!(re.time(), ro.time());
            let a: Vec<SatId> = re.observations().iter().map(|o| o.sat).collect();
            let b: Vec<SatId> = ro.observations().iter().map(|o| o.sat).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corrections_cancel_shared_errors() {
        let (reference, rover, rover_pos) = pair();
        for (re, ro) in reference.epochs().iter().zip(rover.epochs()) {
            let corr = corrections(reference.station().position(), re);
            let corrected = apply_corrections(ro, &corr);
            let eps_rov = ro.truth().clock_bias * SPEED_OF_LIGHT;
            let eps_ref = re.truth().clock_bias * SPEED_OF_LIGHT;
            for o in corrected.observations() {
                let residual =
                    o.pseudorange - rover_pos.distance_to(o.position) - (eps_rov - eps_ref);
                // Only the two receivers' local multipath+noise remain:
                // metre-level instead of the raw budget's ~2-5 m.
                assert!(residual.abs() < 5.0, "residual {residual}");
            }
        }
    }

    #[test]
    fn apply_drops_uncorrected_satellites() {
        let (reference, rover, _) = pair();
        let re = &reference.epochs()[0];
        let ro = &rover.epochs()[0];
        let mut corr = corrections(reference.station().position(), re);
        corr.truncate(3);
        let corrected = apply_corrections(ro, &corr);
        assert_eq!(corrected.observations().len(), 3);
    }

    #[test]
    fn deterministic() {
        let a = pair();
        let b = pair();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
