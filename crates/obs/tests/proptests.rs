//! Randomized property tests for the observation layer.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops for the offline
//! build; inputs come from deterministic xoshiro256++ streams.

use gps_obs::{format, paper_stations, DataSet, DatasetGenerator};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use gps_time::Duration;

const CASES: usize = 24;

fn small_dataset(seed: u64, station_idx: usize, epochs: usize) -> DataSet {
    DatasetGenerator::new(seed)
        .epoch_interval_s(60.0)
        .epoch_count(epochs)
        .generate(&paper_stations()[station_idx % 4])
}

#[test]
fn format_round_trip_bit_exact() {
    let mut rng = StdRng::seed_from_u64(0x0B_01);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..500);
        let idx = rng.gen_range(0usize..4);
        let data = small_dataset(seed, idx, 4);
        let text = format::write(&data);
        let back = format::parse(&text).expect("writer output must parse");
        assert_eq!(back, data);
    }
}

#[test]
fn parser_never_panics_on_mutations() {
    let mut rng = StdRng::seed_from_u64(0x0B_02);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..100);
        let pos = rng.gen_range(0usize..2_000);
        let byte = rng.gen_range(0x20u8..0x7f);
        let data = small_dataset(seed, 0, 2);
        let mut text = format::write(&data).into_bytes();
        if pos < text.len() {
            text[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = format::parse(&s); // any Result is fine; panics are not
        }
    }
}

#[test]
fn pseudoranges_track_geometry() {
    let mut rng = StdRng::seed_from_u64(0x0B_03);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..200);
        let idx = rng.gen_range(0usize..4);
        let data = small_dataset(seed, idx, 3);
        let station = data.station().position();
        for epoch in data.epochs() {
            for o in epoch.observations() {
                let range = station.distance_to(o.position);
                // Within clock (≤ ms → 300 km) + metre errors; steering
                // stations stay ≪ that, threshold up to the 1 ms cap.
                assert!(
                    (o.pseudorange - range).abs() < 3.2e5,
                    "diff {}",
                    o.pseudorange - range
                );
                assert!(o.pseudorange.is_finite());
            }
        }
    }
}

#[test]
fn window_plus_complement_partitions() {
    let mut rng = StdRng::seed_from_u64(0x0B_04);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..100);
        let data = small_dataset(seed, 1, 10);
        let t0 = data.epochs()[0].time();
        let split = t0 + Duration::from_seconds(5.0 * 60.0);
        let end = t0 + Duration::from_hours(10.0);
        let head = data.window(t0, split);
        let tail = data.window(split, end);
        assert_eq!(
            head.epochs().len() + tail.epochs().len(),
            data.epochs().len()
        );
        // Window start is inclusive: the first epoch belongs to head.
        assert_eq!(head.epochs()[0].time(), t0);
    }
}

#[test]
fn decimation_preserves_order_and_count() {
    let mut rng = StdRng::seed_from_u64(0x0B_05);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..100);
        let n = rng.gen_range(1usize..5);
        let data = small_dataset(seed, 2, 12);
        let d = data.decimate(n);
        assert_eq!(d.epochs().len(), 12usize.div_ceil(n));
        for pair in d.epochs().windows(2) {
            assert!(pair[0].time() < pair[1].time());
        }
    }
}

#[test]
fn epochs_strictly_increasing() {
    let mut rng = StdRng::seed_from_u64(0x0B_06);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..100);
        let idx = rng.gen_range(0usize..4);
        let data = small_dataset(seed, idx, 6);
        for pair in data.epochs().windows(2) {
            assert!(pair[0].time() < pair[1].time());
            assert_eq!((pair[1].time() - pair[0].time()).as_seconds(), 60.0);
        }
    }
}
