//! Property-based tests for the geodesy substrate.

use gps_geodesy::{Ecef, Enu, Geodetic, LocalFrame};
use proptest::prelude::*;

fn geodetic_strategy() -> impl Strategy<Value = Geodetic> {
    (
        -89.5f64..89.5,
        -179.9f64..179.9,
        -5_000.0f64..30_000_000.0,
    )
        .prop_map(|(lat, lon, h)| Geodetic::from_deg(lat, lon, h))
}

proptest! {
    #[test]
    fn ecef_geodetic_round_trip(g in geodetic_strategy()) {
        let back = Geodetic::from_ecef(g.to_ecef());
        prop_assert!((back.latitude_deg() - g.latitude_deg()).abs() < 1e-8);
        let lon_err = ((back.longitude_deg() - g.longitude_deg() + 540.0) % 360.0) - 180.0;
        prop_assert!(lon_err.abs() < 1e-8);
        prop_assert!((back.height() - g.height()).abs() < 1e-4);
    }

    #[test]
    fn geodetic_ecef_round_trip(
        x in -3.0e7f64..3.0e7,
        y in -3.0e7f64..3.0e7,
        z in -3.0e7f64..3.0e7,
    ) {
        let p = Ecef::new(x, y, z);
        // Only meaningful for points well away from the Earth's center.
        prop_assume!(p.norm() > 1.0e6);
        let back = Geodetic::from_ecef(p).to_ecef();
        prop_assert!(p.distance_to(back) < 1e-4, "err {}", p.distance_to(back));
    }

    #[test]
    fn local_frame_preserves_distance(g in geodetic_strategy(), e in -1e6f64..1e6, n in -1e6f64..1e6, u in -1e6f64..1e6) {
        let frame = LocalFrame::new(g.to_ecef());
        let v = Enu::new(e, n, u);
        let p = frame.to_ecef(v);
        // The transform is rigid: distances are preserved.
        prop_assert!((p.distance_to(frame.origin()) - v.norm()).abs() < 1e-5);
        let back = frame.to_enu(p);
        prop_assert!((back.east - e).abs() < 1e-4);
        prop_assert!((back.north - n).abs() < 1e-4);
        prop_assert!((back.up - u).abs() < 1e-4);
    }

    #[test]
    fn elevation_bounded(g in geodetic_strategy(), e in -1e7f64..1e7, n in -1e7f64..1e7, u in -1e7f64..1e7) {
        prop_assume!(Enu::new(e, n, u).norm() > 1.0);
        let frame = LocalFrame::new(g.to_ecef());
        let p = frame.to_ecef(Enu::new(e, n, u));
        let elev = frame.elevation(p);
        prop_assert!((-std::f64::consts::FRAC_PI_2..=std::f64::consts::FRAC_PI_2).contains(&elev));
        let az = frame.azimuth(p);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&az));
    }

    #[test]
    fn great_circle_destination_round_trip(
        lat in -80.0f64..80.0,
        lon in -179.0f64..179.0,
        bearing_deg in 0.0f64..360.0,
        distance in 1_000.0f64..2_000_000.0,
    ) {
        let start = Geodetic::from_deg(lat, lon, 0.0);
        let bearing = bearing_deg.to_radians();
        let end = gps_geodesy::destination(start, bearing, distance);
        // Distance back matches what we travelled.
        let d = gps_geodesy::great_circle_distance(start, end);
        prop_assert!((d - distance).abs() < 1.0, "distance {d} vs {distance}");
        // Initial bearing matches (mod 2π), except near the poles where
        // bearings degenerate.
        if lat.abs() < 70.0 {
            let b = gps_geodesy::initial_bearing(start, end);
            let diff = ((b - bearing + std::f64::consts::PI)
                .rem_euclid(std::f64::consts::TAU)
                - std::f64::consts::PI)
                .abs();
            prop_assert!(diff < 0.05, "bearing diff {diff}");
        }
    }

    #[test]
    fn great_circle_symmetric_and_bounded(
        lat1 in -85.0f64..85.0, lon1 in -179.0f64..179.0,
        lat2 in -85.0f64..85.0, lon2 in -179.0f64..179.0,
    ) {
        let a = Geodetic::from_deg(lat1, lon1, 0.0);
        let b = Geodetic::from_deg(lat2, lon2, 0.0);
        let d_ab = gps_geodesy::great_circle_distance(a, b);
        let d_ba = gps_geodesy::great_circle_distance(b, a);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        // Bounded by half the circumference.
        prop_assert!(d_ab <= std::f64::consts::PI * gps_geodesy::wgs84::MEAN_EARTH_RADIUS + 1.0);
    }

    #[test]
    fn triangle_inequality(ax in -1e7f64..1e7, ay in -1e7f64..1e7, az in -1e7f64..1e7,
                           bx in -1e7f64..1e7, by in -1e7f64..1e7, bz in -1e7f64..1e7) {
        let a = Ecef::new(ax, ay, az);
        let b = Ecef::new(bx, by, bz);
        prop_assert!(a.distance_to(b) <= a.norm() + b.norm() + 1e-6);
        prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
    }
}
