//! Randomized property tests for the geodesy substrate.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops for the offline
//! build; inputs come from deterministic xoshiro256++ streams.

use gps_geodesy::{Ecef, Enu, Geodetic, LocalFrame};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

const CASES: usize = 256;

fn random_geodetic(rng: &mut StdRng) -> Geodetic {
    Geodetic::from_deg(
        rng.gen_range(-89.5..89.5),
        rng.gen_range(-179.9..179.9),
        rng.gen_range(-5_000.0..30_000_000.0),
    )
}

#[test]
fn ecef_geodetic_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x9E_01);
    for _ in 0..CASES {
        let g = random_geodetic(&mut rng);
        let back = Geodetic::from_ecef(g.to_ecef());
        assert!((back.latitude_deg() - g.latitude_deg()).abs() < 1e-8);
        let lon_err = ((back.longitude_deg() - g.longitude_deg() + 540.0) % 360.0) - 180.0;
        assert!(lon_err.abs() < 1e-8);
        assert!((back.height() - g.height()).abs() < 1e-4);
    }
}

#[test]
fn geodetic_ecef_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x9E_02);
    for _ in 0..CASES {
        let p = Ecef::new(
            rng.gen_range(-3.0e7..3.0e7),
            rng.gen_range(-3.0e7..3.0e7),
            rng.gen_range(-3.0e7..3.0e7),
        );
        // Only meaningful for points well away from the Earth's center.
        if p.norm() <= 1.0e6 {
            continue;
        }
        let back = Geodetic::from_ecef(p).to_ecef();
        assert!(p.distance_to(back) < 1e-4, "err {}", p.distance_to(back));
    }
}

#[test]
fn local_frame_preserves_distance() {
    let mut rng = StdRng::seed_from_u64(0x9E_03);
    for _ in 0..CASES {
        let g = random_geodetic(&mut rng);
        let (e, n, u) = (
            rng.gen_range(-1e6..1e6),
            rng.gen_range(-1e6..1e6),
            rng.gen_range(-1e6..1e6),
        );
        let frame = LocalFrame::new(g.to_ecef());
        let v = Enu::new(e, n, u);
        let p = frame.to_ecef(v);
        // The transform is rigid: distances are preserved.
        assert!((p.distance_to(frame.origin()) - v.norm()).abs() < 1e-5);
        let back = frame.to_enu(p);
        assert!((back.east - e).abs() < 1e-4);
        assert!((back.north - n).abs() < 1e-4);
        assert!((back.up - u).abs() < 1e-4);
    }
}

#[test]
fn elevation_bounded() {
    let mut rng = StdRng::seed_from_u64(0x9E_04);
    for _ in 0..CASES {
        let g = random_geodetic(&mut rng);
        let (e, n, u) = (
            rng.gen_range(-1e7..1e7),
            rng.gen_range(-1e7..1e7),
            rng.gen_range(-1e7..1e7),
        );
        if Enu::new(e, n, u).norm() <= 1.0 {
            continue;
        }
        let frame = LocalFrame::new(g.to_ecef());
        let p = frame.to_ecef(Enu::new(e, n, u));
        let elev = frame.elevation(p);
        assert!((-std::f64::consts::FRAC_PI_2..=std::f64::consts::FRAC_PI_2).contains(&elev));
        let az = frame.azimuth(p);
        assert!((0.0..std::f64::consts::TAU).contains(&az));
    }
}

#[test]
fn great_circle_destination_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x9E_05);
    for _ in 0..CASES {
        let lat: f64 = rng.gen_range(-80.0..80.0);
        let lon = rng.gen_range(-179.0..179.0);
        let bearing_deg: f64 = rng.gen_range(0.0..360.0);
        let distance = rng.gen_range(1_000.0..2_000_000.0);
        let start = Geodetic::from_deg(lat, lon, 0.0);
        let bearing = bearing_deg.to_radians();
        let end = gps_geodesy::destination(start, bearing, distance);
        // Distance back matches what we travelled.
        let d = gps_geodesy::great_circle_distance(start, end);
        assert!((d - distance).abs() < 1.0, "distance {d} vs {distance}");
        // Initial bearing matches (mod 2π), except near the poles where
        // bearings degenerate.
        if lat.abs() < 70.0 {
            let b = gps_geodesy::initial_bearing(start, end);
            let diff = ((b - bearing + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU)
                - std::f64::consts::PI)
                .abs();
            assert!(diff < 0.05, "bearing diff {diff}");
        }
    }
}

#[test]
fn great_circle_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x9E_06);
    for _ in 0..CASES {
        let a = Geodetic::from_deg(
            rng.gen_range(-85.0..85.0),
            rng.gen_range(-179.0..179.0),
            0.0,
        );
        let b = Geodetic::from_deg(
            rng.gen_range(-85.0..85.0),
            rng.gen_range(-179.0..179.0),
            0.0,
        );
        let d_ab = gps_geodesy::great_circle_distance(a, b);
        let d_ba = gps_geodesy::great_circle_distance(b, a);
        assert!((d_ab - d_ba).abs() < 1e-6);
        // Bounded by half the circumference.
        assert!(d_ab <= std::f64::consts::PI * gps_geodesy::wgs84::MEAN_EARTH_RADIUS + 1.0);
    }
}

#[test]
fn triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0x9E_07);
    for _ in 0..CASES {
        let a = Ecef::new(
            rng.gen_range(-1e7..1e7),
            rng.gen_range(-1e7..1e7),
            rng.gen_range(-1e7..1e7),
        );
        let b = Ecef::new(
            rng.gen_range(-1e7..1e7),
            rng.gen_range(-1e7..1e7),
            rng.gen_range(-1e7..1e7),
        );
        assert!(a.distance_to(b) <= a.norm() + b.norm() + 1e-6);
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
    }
}
