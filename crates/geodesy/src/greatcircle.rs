//! Great-circle (spherical) navigation utilities.
//!
//! Trajectory analysis and station bookkeeping occasionally need
//! along-surface distances and bearings. These use the mean-Earth-radius
//! spherical approximation (haversine), accurate to ~0.5 % — ample for
//! simulation bookkeeping (position *solutions* stay in exact ECEF).

use crate::wgs84::MEAN_EARTH_RADIUS;
use crate::Geodetic;

/// Surface (great-circle) distance between two geodetic points, metres,
/// by the haversine formula on the mean-radius sphere.
///
/// # Example
///
/// ```
/// use gps_geodesy::{great_circle_distance, Geodetic};
///
/// let turin = Geodetic::from_deg(45.07, 7.69, 0.0);
/// let paris = Geodetic::from_deg(48.86, 2.35, 0.0);
/// let d = great_circle_distance(turin, paris);
/// assert!((d - 585_000.0).abs() < 10_000.0); // ≈ 585 km
/// ```
#[must_use]
pub fn great_circle_distance(a: Geodetic, b: Geodetic) -> f64 {
    let dlat = b.latitude() - a.latitude();
    let dlon = b.longitude() - a.longitude();
    let h = (dlat / 2.0).sin().powi(2)
        + a.latitude().cos() * b.latitude().cos() * (dlon / 2.0).sin().powi(2);
    2.0 * MEAN_EARTH_RADIUS * h.sqrt().min(1.0).asin()
}

/// Initial bearing (forward azimuth) from `a` to `b`, radians clockwise
/// from north, in `[0, 2π)`.
#[must_use]
pub fn initial_bearing(a: Geodetic, b: Geodetic) -> f64 {
    let dlon = b.longitude() - a.longitude();
    let y = dlon.sin() * b.latitude().cos();
    let x = a.latitude().cos() * b.latitude().sin()
        - a.latitude().sin() * b.latitude().cos() * dlon.cos();
    let bearing = y.atan2(x);
    if bearing < 0.0 {
        bearing + std::f64::consts::TAU
    } else {
        bearing
    }
}

/// The point reached by travelling `distance_m` from `start` along the
/// given initial bearing (radians from north), on the mean-radius sphere.
/// Height is carried through unchanged.
#[must_use]
pub fn destination(start: Geodetic, bearing_rad: f64, distance_m: f64) -> Geodetic {
    let delta = distance_m / MEAN_EARTH_RADIUS;
    let (sin_lat, cos_lat) = start.latitude().sin_cos();
    let (sin_d, cos_d) = delta.sin_cos();
    let lat2 = (sin_lat * cos_d + cos_lat * sin_d * bearing_rad.cos()).asin();
    let lon2 = start.longitude()
        + (bearing_rad.sin() * sin_d * cos_lat).atan2(cos_d - sin_lat * lat2.sin());
    // Normalize longitude into (−π, π].
    let lon2 =
        (lon2 + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU) - std::f64::consts::PI;
    Geodetic::new(lat2, lon2, start.height())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = Geodetic::from_deg(45.0, 7.0, 100.0);
        assert_eq!(great_circle_distance(p, p), 0.0);
    }

    #[test]
    fn equator_degree_is_about_111_km() {
        let a = Geodetic::from_deg(0.0, 0.0, 0.0);
        let b = Geodetic::from_deg(0.0, 1.0, 0.0);
        let d = great_circle_distance(a, b);
        assert!((d - 111_195.0).abs() < 500.0, "d {d}");
    }

    #[test]
    fn symmetric() {
        let a = Geodetic::from_deg(52.0, 13.0, 0.0);
        let b = Geodetic::from_deg(-33.9, 151.2, 0.0);
        assert!((great_circle_distance(a, b) - great_circle_distance(b, a)).abs() < 1e-6);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = Geodetic::from_deg(10.0, 20.0, 0.0);
        let b = Geodetic::from_deg(-10.0, -160.0, 0.0);
        let d = great_circle_distance(a, b);
        let half = std::f64::consts::PI * MEAN_EARTH_RADIUS;
        assert!((d - half).abs() < 1_000.0, "d {d} vs {half}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = Geodetic::from_deg(0.0, 0.0, 0.0);
        let north = Geodetic::from_deg(1.0, 0.0, 0.0);
        let east = Geodetic::from_deg(0.0, 1.0, 0.0);
        let south = Geodetic::from_deg(-1.0, 0.0, 0.0);
        assert!(initial_bearing(origin, north).abs() < 1e-9);
        assert!((initial_bearing(origin, east).to_degrees() - 90.0).abs() < 1e-9);
        assert!((initial_bearing(origin, south).to_degrees() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let start = Geodetic::from_deg(45.0, 7.0, 250.0);
        for bearing_deg in [0.0, 45.0, 133.0, 280.0] {
            let bearing = f64::to_radians(bearing_deg);
            let end = destination(start, bearing, 100_000.0);
            assert!((great_circle_distance(start, end) - 100_000.0).abs() < 1.0);
            let back = initial_bearing(start, end);
            let diff = (back - bearing + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU)
                - std::f64::consts::PI;
            assert!(diff.abs() < 1e-3, "bearing {bearing_deg}: diff {diff}");
            assert_eq!(end.height(), 250.0);
        }
    }

    #[test]
    fn destination_crossing_dateline_normalizes() {
        let start = Geodetic::from_deg(0.0, 179.5, 0.0);
        let end = destination(start, 90f64.to_radians(), 200_000.0);
        assert!(end.longitude_deg() <= 180.0);
        assert!(end.longitude_deg() > -180.0);
    }
}
