//! WGS-84 ellipsoid and physical constants.

/// Speed of light in vacuum (m/s). Converts clock bias to range error:
/// `ε̂ᴿ = c·Δt̂` (paper eq. 4-4).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// WGS-84 semi-major axis (equatorial radius), metres.
pub const SEMI_MAJOR_AXIS: f64 = 6_378_137.0;

/// WGS-84 flattening `f = (a − b) / a`.
pub const FLATTENING: f64 = 1.0 / 298.257_223_563;

/// WGS-84 semi-minor axis (polar radius), metres.
pub const SEMI_MINOR_AXIS: f64 = SEMI_MAJOR_AXIS * (1.0 - FLATTENING);

/// First eccentricity squared `e² = f(2 − f)`.
pub const ECCENTRICITY_SQ: f64 = FLATTENING * (2.0 - FLATTENING);

/// Second eccentricity squared `e'² = e² / (1 − e²)`.
pub const SECOND_ECCENTRICITY_SQ: f64 = ECCENTRICITY_SQ / (1.0 - ECCENTRICITY_SQ);

/// Earth's rotation rate (rad/s), IS-GPS-200 value.
pub const EARTH_ROTATION_RATE: f64 = 7.292_115_146_7e-5;

/// Earth's gravitational parameter μ = GM (m³/s²), IS-GPS-200 value.
pub const EARTH_GRAVITATIONAL_PARAMETER: f64 = 3.986_005e14;

/// Mean Earth radius (m), used by the Klobuchar ionospheric model.
pub const MEAN_EARTH_RADIUS: f64 = 6_371_000.0;

/// Prime vertical radius of curvature `N(φ)` at geodetic latitude `φ`
/// (radians): the distance from the surface to the polar axis along the
/// ellipsoid normal.
#[must_use]
pub fn prime_vertical_radius(lat_rad: f64) -> f64 {
    let s = lat_rad.sin();
    SEMI_MAJOR_AXIS / (1.0 - ECCENTRICITY_SQ * s * s).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ellipsoid_self_consistency() {
        // b = a(1-f) ⇒ e² = 1 − (b/a)².
        let ratio = SEMI_MINOR_AXIS / SEMI_MAJOR_AXIS;
        assert!((ECCENTRICITY_SQ - (1.0 - ratio * ratio)).abs() < 1e-15);
        assert!((SEMI_MINOR_AXIS - 6_356_752.314_245).abs() < 1e-3);
    }

    #[test]
    fn prime_vertical_radius_limits() {
        // At the equator N = a; at the pole N = a / sqrt(1 − e²).
        assert!((prime_vertical_radius(0.0) - SEMI_MAJOR_AXIS).abs() < 1e-9);
        let polar = SEMI_MAJOR_AXIS / (1.0 - ECCENTRICITY_SQ).sqrt();
        assert!((prime_vertical_radius(std::f64::consts::FRAC_PI_2) - polar).abs() < 1e-6);
        // Monotonically increasing from equator to pole.
        assert!(prime_vertical_radius(0.5) > prime_vertical_radius(0.1));
    }

    #[test]
    fn second_eccentricity_relation() {
        let expected = ECCENTRICITY_SQ / (1.0 - ECCENTRICITY_SQ);
        assert!((SECOND_ECCENTRICITY_SQ - expected).abs() < 1e-18);
    }
}
