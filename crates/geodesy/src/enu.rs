use std::fmt;

use crate::{Ecef, Geodetic};

/// A vector expressed in a local East-North-Up tangent frame, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Enu {
    /// East component (m).
    pub east: f64,
    /// North component (m).
    pub north: f64,
    /// Up component (m).
    pub up: f64,
}

impl Enu {
    /// Creates an ENU vector from its components.
    #[must_use]
    pub fn new(east: f64, north: f64, up: f64) -> Self {
        Enu { east, north, up }
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        (self.east * self.east + self.north * self.north + self.up * self.up).sqrt()
    }

    /// Horizontal (east-north plane) norm.
    #[must_use]
    pub fn horizontal_norm(&self) -> f64 {
        (self.east * self.east + self.north * self.north).sqrt()
    }
}

impl fmt::Display for Enu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E {:.3} N {:.3} U {:.3} m",
            self.east, self.north, self.up
        )
    }
}

/// A local East-North-Up tangent frame anchored at a reference point.
///
/// Used to compute satellite **elevation** and **azimuth** as seen from a
/// ground station — the inputs to visibility masks, the atmospheric mapping
/// functions, and the "good satellite" base-selection extension the paper
/// sketches in §6.
///
/// # Example
///
/// ```
/// use gps_geodesy::{Ecef, Geodetic, LocalFrame};
///
/// let station = Geodetic::from_deg(45.0, 0.0, 0.0);
/// let frame = LocalFrame::new(station.to_ecef());
/// // A point straight above the station has elevation ≈ 90°.
/// let above = Geodetic::from_deg(45.0, 0.0, 100_000.0).to_ecef();
/// let elev = frame.elevation(above);
/// assert!((elev.to_degrees() - 90.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalFrame {
    origin: Ecef,
    /// Unit east axis in ECEF.
    east: Ecef,
    /// Unit north axis in ECEF.
    north: Ecef,
    /// Unit up axis in ECEF (ellipsoid normal).
    up: Ecef,
}

impl LocalFrame {
    /// Creates the tangent frame at `origin` (the frame axes follow the
    /// WGS-84 ellipsoid normal at that point).
    #[must_use]
    pub fn new(origin: Ecef) -> Self {
        let g = Geodetic::from_ecef(origin);
        let (slat, clat) = g.latitude().sin_cos();
        let (slon, clon) = g.longitude().sin_cos();
        LocalFrame {
            origin,
            east: Ecef::new(-slon, clon, 0.0),
            north: Ecef::new(-slat * clon, -slat * slon, clat),
            up: Ecef::new(clat * clon, clat * slon, slat),
        }
    }

    /// The anchor point in ECEF.
    #[must_use]
    pub fn origin(&self) -> Ecef {
        self.origin
    }

    /// Expresses the ECEF point `p` in this frame.
    #[must_use]
    pub fn to_enu(&self, p: Ecef) -> Enu {
        let d = p - self.origin;
        Enu {
            east: d.dot(self.east),
            north: d.dot(self.north),
            up: d.dot(self.up),
        }
    }

    /// Converts a local ENU vector back to an ECEF point.
    #[must_use]
    pub fn to_ecef(&self, v: Enu) -> Ecef {
        self.origin + self.east * v.east + self.north * v.north + self.up * v.up
    }

    /// Elevation angle of `p` above the local horizon, radians, in
    /// `[-π/2, π/2]`.
    #[must_use]
    pub fn elevation(&self, p: Ecef) -> f64 {
        let enu = self.to_enu(p);
        enu.up.atan2(enu.horizontal_norm())
    }

    /// Azimuth of `p`, radians clockwise from north, in `[0, 2π)`.
    #[must_use]
    pub fn azimuth(&self, p: Ecef) -> f64 {
        let enu = self.to_enu(p);
        let az = enu.east.atan2(enu.north);
        if az < 0.0 {
            az + std::f64::consts::TAU
        } else {
            az
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_at(lat: f64, lon: f64) -> LocalFrame {
        LocalFrame::new(Geodetic::from_deg(lat, lon, 0.0).to_ecef())
    }

    #[test]
    fn axes_are_orthonormal() {
        let f = frame_at(37.0, -122.0);
        for v in [f.east, f.north, f.up] {
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
        assert!(f.east.dot(f.north).abs() < 1e-12);
        assert!(f.east.dot(f.up).abs() < 1e-12);
        assert!(f.north.dot(f.up).abs() < 1e-12);
        // Right-handed: east × north = up.
        assert!((f.east.cross(f.north) - f.up).norm() < 1e-12);
    }

    #[test]
    fn enu_round_trip() {
        let f = frame_at(45.0, 10.0);
        let v = Enu::new(100.0, -200.0, 300.0);
        let p = f.to_ecef(v);
        let back = f.to_enu(p);
        assert!((back.east - v.east).abs() < 1e-6);
        assert!((back.north - v.north).abs() < 1e-6);
        assert!((back.up - v.up).abs() < 1e-6);
    }

    #[test]
    fn zenith_has_90_degree_elevation() {
        let f = frame_at(52.0, 13.0);
        let above = f.to_ecef(Enu::new(0.0, 0.0, 1_000.0));
        assert!((f.elevation(above).to_degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_has_zero_elevation() {
        let f = frame_at(0.0, 0.0);
        let east_point = f.to_ecef(Enu::new(5_000.0, 0.0, 0.0));
        assert!(f.elevation(east_point).to_degrees().abs() < 1e-9);
        // Below horizon is negative.
        let below = f.to_ecef(Enu::new(1_000.0, 0.0, -100.0));
        assert!(f.elevation(below) < 0.0);
    }

    #[test]
    fn azimuth_cardinal_directions() {
        let f = frame_at(30.0, 50.0);
        let north = f.to_ecef(Enu::new(0.0, 1_000.0, 0.0));
        let east = f.to_ecef(Enu::new(1_000.0, 0.0, 0.0));
        let south = f.to_ecef(Enu::new(0.0, -1_000.0, 0.0));
        let west = f.to_ecef(Enu::new(-1_000.0, 0.0, 0.0));
        let wrap_err = |az: f64, expected: f64| {
            let diff = (az.to_degrees() - expected).rem_euclid(360.0);
            diff.min(360.0 - diff)
        };
        assert!(wrap_err(f.azimuth(north), 0.0) < 1e-9);
        assert!(wrap_err(f.azimuth(east), 90.0) < 1e-9);
        assert!(wrap_err(f.azimuth(south), 180.0) < 1e-9);
        assert!(wrap_err(f.azimuth(west), 270.0) < 1e-9);
    }

    #[test]
    fn north_pole_direction_at_equator() {
        // From the equator/prime meridian, the +Z ECEF axis is due north at
        // zero elevation.
        let f = frame_at(0.0, 0.0);
        let enu = f.to_enu(f.origin() + Ecef::new(0.0, 0.0, 1_000.0));
        assert!((enu.north - 1_000.0).abs() < 1e-6);
        assert!(enu.east.abs() < 1e-9);
        assert!(enu.up.abs() < 1e-6);
    }

    #[test]
    fn enu_norms() {
        let v = Enu::new(3.0, 4.0, 12.0);
        assert_eq!(v.horizontal_norm(), 5.0);
        assert_eq!(v.norm(), 13.0);
        assert!(v.to_string().contains('E'));
    }
}
