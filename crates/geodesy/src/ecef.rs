use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An Earth-Centered Earth-Fixed Cartesian position or vector, in metres.
///
/// This is the coordinate type of the paper's trilateration model: the
/// satellite coordinates `(xᵢ, yᵢ, zᵢ)` and the receiver estimate
/// `(xᵉ, yᵉ, zᵉ)` of eq. 3-1 are `Ecef` values, with the Earth's center as
/// origin.
///
/// # Example
///
/// ```
/// use gps_geodesy::Ecef;
///
/// let a = Ecef::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// assert_eq!(a.distance_to(Ecef::ORIGIN), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Ecef {
    /// X coordinate (m): towards the intersection of equator and prime
    /// meridian.
    pub x: f64,
    /// Y coordinate (m): 90° east in the equatorial plane.
    pub y: f64,
    /// Z coordinate (m): towards the north pole.
    pub z: f64,
}

impl Ecef {
    /// The Earth's center, the origin of eq. 3-1.
    pub const ORIGIN: Ecef = Ecef {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a position from its components in metres.
    #[must_use]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Ecef { x, y, z }
    }

    /// Euclidean norm (distance from the Earth's center).
    #[must_use]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared norm; avoids the square root when comparing distances.
    #[must_use]
    pub fn norm_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Geometric distance to another point — the left side of the paper's
    /// eq. 3-1.
    #[must_use]
    pub fn distance_to(&self, other: Ecef) -> f64 {
        (*self - other).norm()
    }

    /// Dot product.
    #[must_use]
    pub fn dot(&self, other: Ecef) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[must_use]
    pub fn cross(&self, other: Ecef) -> Ecef {
        Ecef {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is zero.
    #[must_use]
    pub fn normalized(&self) -> Ecef {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        *self / n
    }

    /// Returns `true` if every component is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array `[x, y, z]`.
    #[must_use]
    pub fn to_array(&self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Ecef {
    fn from(a: [f64; 3]) -> Self {
        Ecef::new(a[0], a[1], a[2])
    }
}

impl fmt::Display for Ecef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3}) m", self.x, self.y, self.z)
    }
}

impl Add for Ecef {
    type Output = Ecef;

    fn add(self, rhs: Ecef) -> Ecef {
        Ecef::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Ecef {
    fn add_assign(&mut self, rhs: Ecef) {
        *self = *self + rhs;
    }
}

impl Sub for Ecef {
    type Output = Ecef;

    fn sub(self, rhs: Ecef) -> Ecef {
        Ecef::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Ecef {
    fn sub_assign(&mut self, rhs: Ecef) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Ecef {
    type Output = Ecef;

    fn mul(self, s: f64) -> Ecef {
        Ecef::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Ecef {
    type Output = Ecef;

    fn div(self, s: f64) -> Ecef {
        Ecef::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Ecef {
    type Output = Ecef;

    fn neg(self) -> Ecef {
        Ecef::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_distance() {
        let p = Ecef::new(3.0, 4.0, 0.0);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p.norm_squared(), 25.0);
        assert_eq!(p.distance_to(Ecef::new(3.0, 0.0, 0.0)), 4.0);
    }

    #[test]
    fn vector_algebra() {
        let a = Ecef::new(1.0, 0.0, 0.0);
        let b = Ecef::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Ecef::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Ecef::new(0.0, 0.0, -1.0));
        assert_eq!(a.dot(b), 0.0);
        assert_eq!((a + b).norm_squared(), 2.0);
        assert_eq!((a - b).dot(a + b), 0.0);
        assert_eq!((-a).x, -1.0);
        assert_eq!((a * 2.0).norm(), 2.0);
        assert_eq!((a / 2.0).norm(), 0.5);
    }

    #[test]
    fn compound_assignment() {
        let mut p = Ecef::new(1.0, 1.0, 1.0);
        p += Ecef::new(1.0, 0.0, 0.0);
        assert_eq!(p.x, 2.0);
        p -= Ecef::new(0.0, 1.0, 0.0);
        assert_eq!(p.y, 0.0);
    }

    #[test]
    fn normalization() {
        let v = Ecef::new(0.0, 0.0, 7.0).normalized();
        assert_eq!(v, Ecef::new(0.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        let _ = Ecef::ORIGIN.normalized();
    }

    #[test]
    fn array_round_trip() {
        let p = Ecef::new(1.0, 2.0, 3.0);
        assert_eq!(Ecef::from(p.to_array()), p);
    }

    #[test]
    fn finiteness() {
        assert!(Ecef::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Ecef::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Ecef::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_has_units() {
        assert!(Ecef::ORIGIN.to_string().ends_with('m'));
    }
}
