//! WGS-84 geodesy for the ICDCS 2010 GPS reproduction.
//!
//! The paper's positioning problem lives entirely in **ECEF** (Earth
//! Centered, Earth Fixed) Cartesian coordinates — Table 5.1 gives the
//! ground-truth station positions as ECEF triples, and the trilateration
//! equations (3-1)–(3-4) are Euclidean distances in that frame. This crate
//! provides:
//!
//! * [`Ecef`] — the Cartesian position/vector type;
//! * [`Geodetic`] — latitude/longitude/height on the WGS-84 ellipsoid with
//!   conversions in both directions (needed by the atmosphere models, which
//!   are parameterized by geodetic latitude and by elevation angle);
//! * [`Enu`] — East-North-Up local tangent frames, elevation and azimuth
//!   (needed for visibility masks and elevation-dependent error models);
//! * [`wgs84`] — ellipsoid and physical constants, including the speed of
//!   light used to convert clock bias to range error (paper eq. 4-4).
//!
//! # Example
//!
//! ```
//! use gps_geodesy::{Ecef, Geodetic};
//!
//! // Station SRZN from the paper's Table 5.1.
//! let srzn = Ecef::new(3_623_420.032, -5_214_015.434, 602_359.096);
//! let geo = Geodetic::from_ecef(srzn);
//! assert!(geo.latitude_deg() > 5.0 && geo.latitude_deg() < 6.0);
//! let back = geo.to_ecef();
//! assert!(srzn.distance_to(back) < 1e-6);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod ecef;
mod enu;
mod geodetic;
mod greatcircle;
pub mod wgs84;

pub use ecef::Ecef;
pub use enu::{Enu, LocalFrame};
pub use geodetic::Geodetic;
pub use greatcircle::{destination, great_circle_distance, initial_bearing};
