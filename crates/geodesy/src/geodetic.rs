use std::fmt;

use crate::wgs84;
use crate::Ecef;

/// A position on (or above) the WGS-84 ellipsoid: geodetic latitude,
/// longitude and ellipsoidal height.
///
/// The positioning algorithms themselves work in [`Ecef`]; geodetic
/// coordinates are needed by the atmospheric error models (Klobuchar takes
/// geodetic latitude/longitude, Saastamoinen takes height) and for
/// human-readable station descriptions.
///
/// # Example
///
/// ```
/// use gps_geodesy::Geodetic;
///
/// let p = Geodetic::from_deg(45.0, 7.0, 250.0);
/// let e = p.to_ecef();
/// let back = Geodetic::from_ecef(e);
/// assert!((back.latitude_deg() - 45.0).abs() < 1e-9);
/// assert!((back.height() - 250.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Geodetic {
    /// Geodetic latitude, radians, in `[-π/2, π/2]`.
    lat: f64,
    /// Longitude, radians, in `(-π, π]`.
    lon: f64,
    /// Height above the ellipsoid, metres.
    height: f64,
}

impl Geodetic {
    /// Creates a geodetic position from radians and metres.
    #[must_use]
    pub fn new(lat_rad: f64, lon_rad: f64, height_m: f64) -> Self {
        Geodetic {
            lat: lat_rad,
            lon: lon_rad,
            height: height_m,
        }
    }

    /// Creates a geodetic position from degrees and metres.
    #[must_use]
    pub fn from_deg(lat_deg: f64, lon_deg: f64, height_m: f64) -> Self {
        Geodetic::new(lat_deg.to_radians(), lon_deg.to_radians(), height_m)
    }

    /// Geodetic latitude in radians.
    #[must_use]
    pub fn latitude(&self) -> f64 {
        self.lat
    }

    /// Longitude in radians.
    #[must_use]
    pub fn longitude(&self) -> f64 {
        self.lon
    }

    /// Height above the ellipsoid in metres.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Geodetic latitude in degrees.
    #[must_use]
    pub fn latitude_deg(&self) -> f64 {
        self.lat.to_degrees()
    }

    /// Longitude in degrees.
    #[must_use]
    pub fn longitude_deg(&self) -> f64 {
        self.lon.to_degrees()
    }

    /// Converts to ECEF Cartesian coordinates (exact closed form).
    #[must_use]
    pub fn to_ecef(&self) -> Ecef {
        let n = wgs84::prime_vertical_radius(self.lat);
        let (slat, clat) = self.lat.sin_cos();
        let (slon, clon) = self.lon.sin_cos();
        Ecef {
            x: (n + self.height) * clat * clon,
            y: (n + self.height) * clat * slon,
            z: (n * (1.0 - wgs84::ECCENTRICITY_SQ) + self.height) * slat,
        }
    }

    /// Converts from ECEF using Bowring's method with iterative refinement.
    ///
    /// Accurate to well below a millimetre for any point from the Earth's
    /// surface out past GPS orbital altitude.
    #[must_use]
    pub fn from_ecef(p: Ecef) -> Self {
        let a = wgs84::SEMI_MAJOR_AXIS;
        let b = wgs84::SEMI_MINOR_AXIS;
        let e2 = wgs84::ECCENTRICITY_SQ;
        let ep2 = wgs84::SECOND_ECCENTRICITY_SQ;

        let rho = (p.x * p.x + p.y * p.y).sqrt();
        let lon = p.y.atan2(p.x);

        if rho < 1e-9 {
            // On the polar axis: latitude is ±90°, height from |z|.
            let lat = if p.z >= 0.0 {
                std::f64::consts::FRAC_PI_2
            } else {
                -std::f64::consts::FRAC_PI_2
            };
            return Geodetic::new(lat, lon, p.z.abs() - b);
        }

        // Bowring's initial parametric latitude guess.
        let mut beta = (p.z * a).atan2(rho * b);
        let mut lat = 0.0;
        for _ in 0..5 {
            let (sb, cb) = beta.sin_cos();
            lat = (p.z + ep2 * b * sb * sb * sb).atan2(rho - e2 * a * cb * cb * cb);
            let new_beta = ((1.0 - wgs84::FLATTENING) * lat.sin()).atan2(lat.cos());
            if (new_beta - beta).abs() < 1e-15 {
                break;
            }
            beta = new_beta;
        }

        let (slat, clat) = lat.sin_cos();
        let n = wgs84::prime_vertical_radius(lat);
        // Use whichever projection is better conditioned.
        let height = if clat.abs() > 0.1 {
            rho / clat - n
        } else {
            p.z / slat - n * (1.0 - e2)
        };
        Geodetic::new(lat, lon, height)
    }
}

impl fmt::Display for Geodetic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6}°, {:.6}°, {:.3} m",
            self.latitude_deg(),
            self.longitude_deg(),
            self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn equator_prime_meridian() {
        let p = Geodetic::from_deg(0.0, 0.0, 0.0).to_ecef();
        assert_close(p.x, wgs84::SEMI_MAJOR_AXIS, 1e-9, "x");
        assert_close(p.y, 0.0, 1e-9, "y");
        assert_close(p.z, 0.0, 1e-9, "z");
    }

    #[test]
    fn north_pole() {
        let p = Geodetic::from_deg(90.0, 0.0, 0.0).to_ecef();
        assert_close(p.z, wgs84::SEMI_MINOR_AXIS, 1e-8, "z");
        assert!(p.x.abs() < 1e-8);
        // Round trip at the pole exercises the axis special case.
        let g = Geodetic::from_ecef(Ecef::new(0.0, 0.0, wgs84::SEMI_MINOR_AXIS + 100.0));
        assert_close(g.latitude_deg(), 90.0, 1e-9, "lat");
        assert_close(g.height(), 100.0, 1e-6, "height");
        let s = Geodetic::from_ecef(Ecef::new(0.0, 0.0, -wgs84::SEMI_MINOR_AXIS));
        assert_close(s.latitude_deg(), -90.0, 1e-9, "south lat");
    }

    #[test]
    fn round_trip_surface_points() {
        for &(lat, lon, h) in &[
            (45.0, 7.0, 250.0),
            (-33.9, 151.2, 20.0),
            (64.9, -147.5, 180.0),
            (5.4, -55.2, 10.0),
            (0.0, 180.0, 0.0),
            (-89.0, 10.0, 3000.0),
            (89.9, -170.0, -50.0),
        ] {
            let g = Geodetic::from_deg(lat, lon, h);
            let back = Geodetic::from_ecef(g.to_ecef());
            assert_close(back.latitude_deg(), lat, 1e-9, "lat");
            let lon_err = ((back.longitude_deg() - lon + 540.0) % 360.0) - 180.0;
            assert!(lon_err.abs() < 1e-9, "lon {lon}");
            assert_close(back.height(), h, 1e-6, "height");
        }
    }

    #[test]
    fn round_trip_at_gps_altitude() {
        let g = Geodetic::from_deg(30.0, -100.0, 20_200_000.0);
        let back = Geodetic::from_ecef(g.to_ecef());
        assert_close(back.latitude_deg(), 30.0, 1e-9, "lat");
        assert_close(back.height(), 20_200_000.0, 1e-5, "height");
    }

    #[test]
    fn paper_station_coordinates_make_sense() {
        // Table 5.1 station ECEF coordinates → plausible geography.
        let cases = [
            // SRZN: Suriname, ~5.4° N.
            (
                Ecef::new(3_623_420.032, -5_214_015.434, 602_359.096),
                5.0,
                6.0,
            ),
            // YYR1: Goose Bay, Canada, ~53.3° N.
            (
                Ecef::new(1_885_341.558, -3_321_428.098, 5_091_171.168),
                53.0,
                54.0,
            ),
            // FAI1: Fairbanks, Alaska, ~64.9° N.
            (
                Ecef::new(-2_304_740.630, -1_448_716.218, 5_748_842.956),
                64.0,
                66.0,
            ),
            // KYCP: ~37.3° N.
            (
                Ecef::new(411_598.861, -5_060_514.896, 3_847_795.506),
                37.0,
                38.0,
            ),
        ];
        for (ecef, lat_min, lat_max) in cases {
            let g = Geodetic::from_ecef(ecef);
            assert!(
                g.latitude_deg() > lat_min && g.latitude_deg() < lat_max,
                "latitude {} outside [{lat_min}, {lat_max}]",
                g.latitude_deg()
            );
            // Station heights should be within a few km of the ellipsoid.
            assert!(g.height().abs() < 5_000.0, "height {}", g.height());
        }
    }

    #[test]
    fn display_contains_degrees() {
        let g = Geodetic::from_deg(1.0, 2.0, 3.0);
        assert!(g.to_string().contains('°'));
    }
}
