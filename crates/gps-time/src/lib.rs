//! GPS time scale for the ICDCS 2010 reproduction.
//!
//! GPS runs its own continuous time scale: no leap seconds, counted as a
//! **week number** plus **seconds of week** (0 ≤ tow < 604 800), with the
//! origin at the GPS epoch 1980-01-06 00:00:00. This crate provides
//! [`GpsTime`] plus a small [`Duration`] type and a calendar converter used
//! to express the paper's dataset collection dates (Table 5.1:
//! 2009/08/12, 2009/10/23, 2009/10/29, 2009/10/10).
//!
//! # Example
//!
//! ```
//! use gps_time::{Date, GpsTime, Duration};
//!
//! # fn main() -> Result<(), gps_time::DateError> {
//! let t0 = GpsTime::from_date(Date::new(2009, 8, 12)?);
//! let t1 = t0 + Duration::from_seconds(86_400.0);
//! assert_eq!(t1 - t0, Duration::from_seconds(86_400.0));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod date;
mod duration;
mod gpstime;

pub use date::{Date, DateError};
pub use duration::Duration;
pub use gpstime::{EpochIter, GpsTime, SECONDS_PER_DAY, SECONDS_PER_WEEK};
