use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::{Date, Duration};

/// Seconds in a GPS week.
pub const SECONDS_PER_WEEK: f64 = 604_800.0;

/// Seconds in a day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// An instant on the GPS time scale: week number plus seconds-of-week.
///
/// The representation is normalized so that `0 ≤ tow < 604 800`. GPS time
/// has no leap seconds; differences are exact [`Duration`]s.
///
/// # Example
///
/// ```
/// use gps_time::{Date, Duration, GpsTime};
///
/// # fn main() -> Result<(), gps_time::DateError> {
/// let midnight = GpsTime::from_date(Date::new(2009, 10, 10)?);
/// let one_hour_in = midnight + Duration::from_hours(1.0);
/// assert_eq!(one_hour_in.seconds_of_day(), 3_600.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsTime {
    week: i32,
    /// Seconds into the week, in `[0, SECONDS_PER_WEEK)`.
    tow: f64,
}

impl GpsTime {
    /// The GPS epoch itself: week 0, second 0 (1980-01-06 00:00:00).
    pub const EPOCH: GpsTime = GpsTime { week: 0, tow: 0.0 };

    /// Creates a time from a week number and seconds-of-week, normalizing
    /// out-of-range seconds into adjacent weeks.
    #[must_use]
    pub fn new(week: i32, tow: f64) -> Self {
        let mut t = GpsTime { week, tow };
        t.normalize();
        t
    }

    /// Midnight (00:00:00 GPS) at the start of the given calendar date.
    #[must_use]
    pub fn from_date(date: Date) -> Self {
        let days = date.days_since_gps_epoch();
        let week = (days / 7) as i32;
        let tow = (days % 7) as f64 * SECONDS_PER_DAY;
        GpsTime { week, tow }
    }

    /// Total seconds since the GPS epoch.
    #[must_use]
    pub fn seconds_since_epoch(&self) -> f64 {
        f64::from(self.week) * SECONDS_PER_WEEK + self.tow
    }

    /// Week number (can exceed 1023; no 10-bit rollover is applied).
    #[must_use]
    pub fn week(&self) -> i32 {
        self.week
    }

    /// Seconds of week, in `[0, 604 800)`.
    #[must_use]
    pub fn seconds_of_week(&self) -> f64 {
        self.tow
    }

    /// Seconds since the most recent midnight.
    #[must_use]
    pub fn seconds_of_day(&self) -> f64 {
        self.tow % SECONDS_PER_DAY
    }

    /// Iterator over equally spaced epochs: `count` instants starting at
    /// `self`, separated by `step`.
    ///
    /// This mirrors the paper's datasets: "for every second, all available
    /// satellites' coordinates and pseudo-ranges are contained in one data
    /// item" — i.e. `start.epochs(Duration::from_seconds(1.0), 86_400)`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn epochs(&self, step: Duration, count: usize) -> EpochIter {
        assert!(step.is_positive(), "epoch step must be positive");
        EpochIter {
            next: *self,
            step,
            remaining: count,
        }
    }

    fn normalize(&mut self) {
        while self.tow < 0.0 {
            self.tow += SECONDS_PER_WEEK;
            self.week -= 1;
        }
        while self.tow >= SECONDS_PER_WEEK {
            self.tow -= SECONDS_PER_WEEK;
            self.week += 1;
        }
    }
}

impl fmt::Display for GpsTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPS week {} tow {:.3}", self.week, self.tow)
    }
}

impl PartialOrd for GpsTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.week.cmp(&other.week) {
            Ordering::Equal => self.tow.partial_cmp(&other.tow),
            ord => Some(ord),
        }
    }
}

impl Add<Duration> for GpsTime {
    type Output = GpsTime;

    fn add(self, d: Duration) -> GpsTime {
        GpsTime::new(self.week, self.tow + d.as_seconds())
    }
}

impl AddAssign<Duration> for GpsTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Duration> for GpsTime {
    type Output = GpsTime;

    fn sub(self, d: Duration) -> GpsTime {
        GpsTime::new(self.week, self.tow - d.as_seconds())
    }
}

impl Sub for GpsTime {
    type Output = Duration;

    fn sub(self, rhs: GpsTime) -> Duration {
        Duration::from_seconds(
            f64::from(self.week - rhs.week) * SECONDS_PER_WEEK + (self.tow - rhs.tow),
        )
    }
}

/// Iterator of equally spaced [`GpsTime`] epochs, created by
/// [`GpsTime::epochs`].
#[derive(Debug, Clone)]
pub struct EpochIter {
    next: GpsTime,
    step: Duration,
    remaining: usize,
}

impl Iterator for EpochIter {
    type Item = GpsTime;

    fn next(&mut self) -> Option<GpsTime> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.next;
        self.next += self.step;
        self.remaining -= 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for EpochIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_constants() {
        assert_eq!(GpsTime::EPOCH.seconds_since_epoch(), 0.0);
        assert_eq!(SECONDS_PER_WEEK, 7.0 * SECONDS_PER_DAY);
    }

    #[test]
    fn normalization_forward_and_backward() {
        let t = GpsTime::new(10, SECONDS_PER_WEEK + 5.0);
        assert_eq!(t.week(), 11);
        assert_eq!(t.seconds_of_week(), 5.0);
        let u = GpsTime::new(10, -5.0);
        assert_eq!(u.week(), 9);
        assert_eq!(u.seconds_of_week(), SECONDS_PER_WEEK - 5.0);
    }

    #[test]
    fn from_date_week_boundaries() {
        // The epoch date is week 0, tow 0.
        let epoch = GpsTime::from_date(Date::new(1980, 1, 6).unwrap());
        assert_eq!(epoch, GpsTime::EPOCH);
        // One week later.
        let w1 = GpsTime::from_date(Date::new(1980, 1, 13).unwrap());
        assert_eq!(w1.week(), 1);
        assert_eq!(w1.seconds_of_week(), 0.0);
        // Mid-week: Wednesday 2009-08-12 is day-of-week 3.
        let d = GpsTime::from_date(Date::new(2009, 8, 12).unwrap());
        assert_eq!(d.seconds_of_week(), 3.0 * SECONDS_PER_DAY);
        // GPS week of 2009-08-12 is 1544.
        assert_eq!(d.week(), 1544);
    }

    #[test]
    fn add_sub_round_trip() {
        let t = GpsTime::new(100, 1_000.0);
        let d = Duration::from_hours(200.0); // crosses a week boundary
        let u = t + d;
        assert_eq!(u - t, d);
        assert_eq!(u - d, t);
    }

    #[test]
    fn difference_across_weeks() {
        let a = GpsTime::new(5, SECONDS_PER_WEEK - 1.0);
        let b = GpsTime::new(6, 1.0);
        assert_eq!((b - a).as_seconds(), 2.0);
        assert_eq!((a - b).as_seconds(), -2.0);
    }

    #[test]
    fn ordering() {
        let a = GpsTime::new(5, 100.0);
        let b = GpsTime::new(5, 200.0);
        let c = GpsTime::new(6, 0.0);
        assert!(a < b && b < c);
    }

    #[test]
    fn seconds_of_day_wraps() {
        let t = GpsTime::new(0, 2.5 * SECONDS_PER_DAY);
        assert_eq!(t.seconds_of_day(), 0.5 * SECONDS_PER_DAY);
    }

    #[test]
    fn epoch_iterator_spacing_and_len() {
        let t0 = GpsTime::EPOCH;
        let epochs: Vec<GpsTime> = t0.epochs(Duration::from_seconds(30.0), 5).collect();
        assert_eq!(epochs.len(), 5);
        assert_eq!(epochs[0], t0);
        assert_eq!((epochs[4] - epochs[0]).as_seconds(), 120.0);
        let it = t0.epochs(Duration::from_seconds(1.0), 10);
        assert_eq!(it.len(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn epoch_iterator_rejects_zero_step() {
        let _ = GpsTime::EPOCH.epochs(Duration::ZERO, 3);
    }

    #[test]
    fn display_mentions_week() {
        let t = GpsTime::new(1544, 259_200.0);
        assert!(t.to_string().contains("1544"));
    }
}
