use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A signed span of time in seconds (`f64`), the difference type of
/// [`crate::GpsTime`].
///
/// # Example
///
/// ```
/// use gps_time::Duration;
///
/// let d = Duration::from_minutes(2.0) + Duration::from_seconds(30.0);
/// assert_eq!(d.as_seconds(), 150.0);
/// assert_eq!((d / 2.0).as_seconds(), 75.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Duration {
    seconds: f64,
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration { seconds: 0.0 };

    /// Creates a duration from seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        Duration { seconds }
    }

    /// Creates a duration from minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Duration {
            seconds: minutes * 60.0,
        }
    }

    /// Creates a duration from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Duration {
            seconds: hours * 3_600.0,
        }
    }

    /// Creates a duration from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Duration {
            seconds: days * 86_400.0,
        }
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_seconds(&self) -> f64 {
        self.seconds
    }

    /// The span in minutes.
    #[must_use]
    pub fn as_minutes(&self) -> f64 {
        self.seconds / 60.0
    }

    /// The span in hours.
    #[must_use]
    pub fn as_hours(&self) -> f64 {
        self.seconds / 3_600.0
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Duration {
        Duration {
            seconds: self.seconds.abs(),
        }
    }

    /// Returns `true` for a strictly positive span.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.seconds > 0.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.seconds)
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration {
            seconds: self.seconds + rhs.seconds,
        }
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            seconds: self.seconds - rhs.seconds,
        }
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;

    fn mul(self, s: f64) -> Duration {
        Duration {
            seconds: self.seconds * s,
        }
    }
}

impl Div<f64> for Duration {
    type Output = Duration;

    fn div(self, s: f64) -> Duration {
        Duration {
            seconds: self.seconds / s,
        }
    }
}

impl Neg for Duration {
    type Output = Duration;

    fn neg(self) -> Duration {
        Duration {
            seconds: -self.seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Duration::from_minutes(1.0).as_seconds(), 60.0);
        assert_eq!(Duration::from_hours(1.0).as_minutes(), 60.0);
        assert_eq!(Duration::from_days(1.0).as_hours(), 24.0);
        assert_eq!(Duration::from_seconds(7_200.0).as_hours(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_seconds(10.0);
        let b = Duration::from_seconds(4.0);
        assert_eq!((a + b).as_seconds(), 14.0);
        assert_eq!((a - b).as_seconds(), 6.0);
        assert_eq!((a * 3.0).as_seconds(), 30.0);
        assert_eq!((a / 2.0).as_seconds(), 5.0);
        assert_eq!((-a).as_seconds(), -10.0);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn predicates_and_ordering() {
        assert!(Duration::from_seconds(1.0).is_positive());
        assert!(!Duration::ZERO.is_positive());
        assert!(!Duration::from_seconds(-1.0).is_positive());
        assert!(Duration::from_seconds(1.0) < Duration::from_seconds(2.0));
    }

    #[test]
    fn display() {
        assert_eq!(Duration::from_seconds(1.5).to_string(), "1.500s");
    }
}
