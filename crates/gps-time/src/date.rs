use std::error::Error;
use std::fmt;

/// A Gregorian calendar date (proleptic, year ≥ 1980).
///
/// Used to express dataset collection dates (paper Table 5.1). Conversion
/// to the GPS time scale goes through the day count since the GPS epoch
/// 1980-01-06.
///
/// # Example
///
/// ```
/// use gps_time::Date;
///
/// # fn main() -> Result<(), gps_time::DateError> {
/// let d = Date::new(2009, 8, 12)?;
/// assert_eq!(d.to_string(), "2009/08/12");
/// assert_eq!(d.days_since_gps_epoch(), 10_811);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

/// Error returned when constructing an invalid [`Date`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DateError {
    /// Year before the GPS epoch year (1980).
    YearBeforeGpsEpoch {
        /// The offending year.
        year: u16,
    },
    /// Month outside 1..=12.
    InvalidMonth {
        /// The offending month.
        month: u8,
    },
    /// Day outside the valid range for the given month/year.
    InvalidDay {
        /// The offending day.
        day: u8,
    },
    /// The date precedes 1980-01-06 (the GPS epoch).
    BeforeGpsEpoch,
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::YearBeforeGpsEpoch { year } => {
                write!(f, "year {year} precedes the GPS epoch year 1980")
            }
            DateError::InvalidMonth { month } => write!(f, "month {month} is not in 1..=12"),
            DateError::InvalidDay { day } => write!(f, "day {day} is invalid for this month"),
            DateError::BeforeGpsEpoch => write!(f, "date precedes the GPS epoch 1980-01-06"),
        }
    }
}

impl Error for DateError {}

/// Returns `true` for Gregorian leap years.
fn is_leap_year(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Days in the given month of the given year.
fn days_in_month(year: u16, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated at construction"),
    }
}

impl Date {
    /// Creates a date, validating the calendar fields.
    ///
    /// # Errors
    ///
    /// Returns [`DateError`] if the year precedes 1980, the month is not in
    /// `1..=12`, the day is invalid for the month, or the date precedes the
    /// GPS epoch 1980-01-06.
    pub fn new(year: u16, month: u8, day: u8) -> Result<Self, DateError> {
        if year < 1980 {
            return Err(DateError::YearBeforeGpsEpoch { year });
        }
        if !(1..=12).contains(&month) {
            return Err(DateError::InvalidMonth { month });
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::InvalidDay { day });
        }
        let d = Date { year, month, day };
        if d.rata_die() < Date::GPS_EPOCH_RATA_DIE {
            return Err(DateError::BeforeGpsEpoch);
        }
        Ok(d)
    }

    /// Year component.
    #[must_use]
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Month component (1..=12).
    #[must_use]
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day-of-month component.
    #[must_use]
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Rata die of 1980-01-06 (computed with the same algorithm as
    /// [`Date::rata_die`]).
    const GPS_EPOCH_RATA_DIE: i64 = 723_431;

    /// Days since 0001-01-01 (proleptic Gregorian, "rata die" convention,
    /// day 1 = 0001-01-01).
    fn rata_die(&self) -> i64 {
        let y = i64::from(self.year);
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        // Standard civil-from-days inverse (Howard Hinnant's algorithm).
        let y_adj = if m <= 2 { y - 1 } else { y };
        let era = y_adj.div_euclid(400);
        let yoe = y_adj - era * 400;
        let mp = (m + 9) % 12;
        let doy = (153 * mp + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe + 306
    }

    /// Whole days elapsed since the GPS epoch 1980-01-06.
    #[must_use]
    pub fn days_since_gps_epoch(&self) -> i64 {
        self.rata_die() - Date::GPS_EPOCH_RATA_DIE
    }

    /// Day of week with 0 = Sunday (the GPS week starts on Sunday).
    #[must_use]
    pub fn day_of_week(&self) -> u8 {
        // 1980-01-06 was a Sunday.
        (self.days_since_gps_epoch().rem_euclid(7)) as u8
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}/{:02}/{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_epoch_is_day_zero() {
        let epoch = Date::new(1980, 1, 6).unwrap();
        assert_eq!(epoch.days_since_gps_epoch(), 0);
        assert_eq!(epoch.day_of_week(), 0); // Sunday
    }

    #[test]
    fn known_day_counts() {
        // 1980-01-07 is one day after the epoch.
        assert_eq!(Date::new(1980, 1, 7).unwrap().days_since_gps_epoch(), 1);
        // 1981-01-06 is 366 days later (1980 is a leap year).
        assert_eq!(Date::new(1981, 1, 6).unwrap().days_since_gps_epoch(), 366);
        // Paper dataset date: 2009-08-12.
        let d = Date::new(2009, 8, 12).unwrap();
        assert_eq!(d.days_since_gps_epoch(), 10_811);
        // 2009-08-12 was a Wednesday.
        assert_eq!(d.day_of_week(), 3);
    }

    #[test]
    fn paper_dataset_dates_valid() {
        for (y, m, d) in [
            (2009, 8, 12),
            (2009, 10, 23),
            (2009, 10, 29),
            (2009, 10, 10),
        ] {
            assert!(Date::new(y, m, d).is_ok(), "{y}/{m}/{d}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000)); // divisible by 400
        assert!(!is_leap_year(1900)); // divisible by 100 only
        assert!(is_leap_year(2008));
        assert!(!is_leap_year(2009));
        assert!(Date::new(2008, 2, 29).is_ok());
        assert_eq!(
            Date::new(2009, 2, 29).unwrap_err(),
            DateError::InvalidDay { day: 29 }
        );
    }

    #[test]
    fn rejects_invalid_fields() {
        assert_eq!(
            Date::new(1979, 6, 1).unwrap_err(),
            DateError::YearBeforeGpsEpoch { year: 1979 }
        );
        assert_eq!(
            Date::new(2009, 13, 1).unwrap_err(),
            DateError::InvalidMonth { month: 13 }
        );
        assert_eq!(
            Date::new(2009, 4, 31).unwrap_err(),
            DateError::InvalidDay { day: 31 }
        );
        assert_eq!(
            Date::new(2009, 4, 0).unwrap_err(),
            DateError::InvalidDay { day: 0 }
        );
        // 1980-01-05 is one day before the GPS epoch.
        assert_eq!(
            Date::new(1980, 1, 5).unwrap_err(),
            DateError::BeforeGpsEpoch
        );
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::new(2009, 8, 12).unwrap();
        let b = Date::new(2009, 10, 10).unwrap();
        assert!(a < b);
    }

    #[test]
    fn display_format() {
        assert_eq!(Date::new(2009, 8, 2).unwrap().to_string(), "2009/08/02");
    }

    #[test]
    fn month_lengths_cover_all_months() {
        let lens: Vec<u8> = (1..=12).map(|m| days_in_month(2009, m)).collect();
        assert_eq!(lens, vec![31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]);
    }
}
