//! Randomized property tests for the GPS time scale.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops for the offline
//! build; inputs come from deterministic xoshiro256++ streams.

use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use gps_time::{Date, Duration, GpsTime, SECONDS_PER_DAY, SECONDS_PER_WEEK};

const CASES: usize = 256;

fn random_gpstime(rng: &mut StdRng) -> GpsTime {
    GpsTime::new(
        rng.gen_range(0i32..3_000),
        rng.gen_range(0.0..SECONDS_PER_WEEK),
    )
}

#[test]
fn normalization_invariant() {
    let mut rng = StdRng::seed_from_u64(0x71_01);
    for _ in 0..CASES {
        let week = rng.gen_range(-100i32..3_000);
        let tow = rng.gen_range(-1.0e7..1.0e7);
        let t = GpsTime::new(week, tow);
        assert!(t.seconds_of_week() >= 0.0);
        assert!(t.seconds_of_week() < SECONDS_PER_WEEK);
        // Total seconds preserved through normalization.
        let total = f64::from(week) * SECONDS_PER_WEEK + tow;
        assert!((t.seconds_since_epoch() - total).abs() < 1e-6);
    }
}

#[test]
fn add_sub_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x71_02);
    for _ in 0..CASES {
        let t = random_gpstime(&mut rng);
        let d = Duration::from_seconds(rng.gen_range(-1.0e6..1.0e6));
        let u = (t + d) - d;
        assert!(((u - t).as_seconds()).abs() < 1e-6);
    }
}

#[test]
fn difference_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(0x71_03);
    for _ in 0..CASES {
        let a = random_gpstime(&mut rng);
        let b = random_gpstime(&mut rng);
        assert!(((a - b).as_seconds() + (b - a).as_seconds()).abs() < 1e-6);
        assert_eq!(a < b, (a - b).as_seconds() < 0.0);
    }
}

#[test]
fn date_round_trip_through_gps_time() {
    let mut rng = StdRng::seed_from_u64(0x71_04);
    for _ in 0..CASES {
        let year = rng.gen_range(1980u16..2100);
        let month = rng.gen_range(1u8..13);
        let day = rng.gen_range(1u8..29);
        let Ok(date) = Date::new(year, month, day) else {
            // Only the few days before 1980-01-06 are rejected.
            continue;
        };
        let t = GpsTime::from_date(date);
        assert_eq!(t.seconds_of_day(), 0.0);
        // Total days consistent with the date's day count.
        let days = t.seconds_since_epoch() / SECONDS_PER_DAY;
        assert_eq!(days as i64, date.days_since_gps_epoch());
    }
}

#[test]
fn consecutive_dates_differ_by_one_day() {
    let mut rng = StdRng::seed_from_u64(0x71_05);
    for _ in 0..CASES {
        let year = rng.gen_range(1980u16..2099);
        let month = rng.gen_range(1u8..13);
        let day = rng.gen_range(1u8..28);
        let (Ok(a), Ok(b)) = (Date::new(year, month, day), Date::new(year, month, day + 1)) else {
            continue;
        };
        assert_eq!(b.days_since_gps_epoch() - a.days_since_gps_epoch(), 1);
        assert_eq!((b.day_of_week() + 6) % 7, a.day_of_week());
    }
}

#[test]
fn epoch_iterator_covers_expected_span() {
    let mut rng = StdRng::seed_from_u64(0x71_06);
    for _ in 0..CASES {
        let t = random_gpstime(&mut rng);
        let step = rng.gen_range(1.0..3_600.0);
        let count = rng.gen_range(1usize..200);
        let epochs: Vec<GpsTime> = t.epochs(Duration::from_seconds(step), count).collect();
        assert_eq!(epochs.len(), count);
        if count > 1 {
            let span = (*epochs.last().unwrap() - epochs[0]).as_seconds();
            assert!((span - step * (count - 1) as f64).abs() < 1e-6);
        }
    }
}

#[test]
fn duration_arithmetic_consistent() {
    let mut rng = StdRng::seed_from_u64(0x71_07);
    for _ in 0..CASES {
        let a = rng.gen_range(-1.0e6..1.0e6);
        let b = rng.gen_range(-1.0e6..1.0e6);
        let da = Duration::from_seconds(a);
        let db = Duration::from_seconds(b);
        assert!(((da + db).as_seconds() - (a + b)).abs() < 1e-9);
        assert!(((da - db).as_seconds() - (a - b)).abs() < 1e-9);
        assert!((((da * 2.0) / 2.0).as_seconds() - a).abs() < 1e-9);
        assert_eq!((-da).as_seconds(), -a);
    }
}
