//! Property-based tests for the GPS time scale.

use gps_time::{Date, Duration, GpsTime, SECONDS_PER_DAY, SECONDS_PER_WEEK};
use proptest::prelude::*;

fn gpstime_strategy() -> impl Strategy<Value = GpsTime> {
    (0i32..3_000, 0.0f64..SECONDS_PER_WEEK).prop_map(|(w, tow)| GpsTime::new(w, tow))
}

proptest! {
    #[test]
    fn normalization_invariant(week in -100i32..3_000, tow in -1.0e7f64..1.0e7) {
        let t = GpsTime::new(week, tow);
        prop_assert!(t.seconds_of_week() >= 0.0);
        prop_assert!(t.seconds_of_week() < SECONDS_PER_WEEK);
        // Total seconds preserved through normalization.
        let total = f64::from(week) * SECONDS_PER_WEEK + tow;
        prop_assert!((t.seconds_since_epoch() - total).abs() < 1e-6);
    }

    #[test]
    fn add_sub_round_trip(t in gpstime_strategy(), secs in -1.0e6f64..1.0e6) {
        let d = Duration::from_seconds(secs);
        let u = (t + d) - d;
        prop_assert!(((u - t).as_seconds()).abs() < 1e-6);
    }

    #[test]
    fn difference_antisymmetric(a in gpstime_strategy(), b in gpstime_strategy()) {
        prop_assert!(((a - b).as_seconds() + (b - a).as_seconds()).abs() < 1e-6);
        prop_assert_eq!(a < b, (a - b).as_seconds() < 0.0);
    }

    #[test]
    fn date_round_trip_through_gps_time(year in 1980u16..2100, month in 1u8..=12, day in 1u8..=28) {
        let Ok(date) = Date::new(year, month, day) else {
            // Only the few days before 1980-01-06 are rejected.
            prop_assume!(false);
            unreachable!()
        };
        let t = GpsTime::from_date(date);
        prop_assert_eq!(t.seconds_of_day(), 0.0);
        // Total days consistent with the date's day count.
        let days = t.seconds_since_epoch() / SECONDS_PER_DAY;
        prop_assert_eq!(days as i64, date.days_since_gps_epoch());
    }

    #[test]
    fn consecutive_dates_differ_by_one_day(year in 1980u16..2099, month in 1u8..=12, day in 1u8..=27) {
        let (Ok(a), Ok(b)) = (Date::new(year, month, day), Date::new(year, month, day + 1)) else {
            prop_assume!(false);
            unreachable!()
        };
        prop_assert_eq!(b.days_since_gps_epoch() - a.days_since_gps_epoch(), 1);
        prop_assert_eq!((b.day_of_week() + 6) % 7, a.day_of_week());
    }

    #[test]
    fn epoch_iterator_covers_expected_span(t in gpstime_strategy(), step in 1.0f64..3_600.0, count in 1usize..200) {
        let epochs: Vec<GpsTime> = t.epochs(Duration::from_seconds(step), count).collect();
        prop_assert_eq!(epochs.len(), count);
        if count > 1 {
            let span = (*epochs.last().unwrap() - epochs[0]).as_seconds();
            prop_assert!((span - step * (count - 1) as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn duration_arithmetic_consistent(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
        let da = Duration::from_seconds(a);
        let db = Duration::from_seconds(b);
        prop_assert!(((da + db).as_seconds() - (a + b)).abs() < 1e-9);
        prop_assert!(((da - db).as_seconds() - (a - b)).abs() < 1e-9);
        prop_assert!((((da * 2.0) / 2.0).as_seconds() - a).abs() < 1e-9);
        prop_assert_eq!((-da).as_seconds(), -a);
    }
}
