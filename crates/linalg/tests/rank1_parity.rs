//! Parity between the structured Sherman–Morrison GLS kernel and the
//! dense GLS path on the same rank-one-plus-diagonal covariance.
//!
//! `gls_rank1` never materializes `Ψ = rank1·𝟙𝟙ᵀ + diag(d)`; these tests
//! build the dense Ψ from the same `(rank1, d)` draws and require the two
//! lanes to agree. The Sherman–Morrison algebra is exact, so on
//! well-conditioned systems agreement is pinned at ULP level (relative
//! 1e-12); ill-conditioned diagonals get a looser documented bound. The
//! stack mirror `gls3_rank1` must match the heap kernel **bit-for-bit**,
//! and the `t = 1 + rank1·𝟙ᵀD⁻¹𝟙 → 0` guard must reject exactly when the
//! dense Cholesky does.

use gps_linalg::lstsq::{self, GlsStrategy, LstsqScratch};
use gps_linalg::stack::{self, SMat, SVec, STACK_M_CAP};
use gps_linalg::{LinalgError, Matrix, Vector};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

const CASES: usize = 32;

fn random_system(rng: &mut StdRng, m: usize, n: usize) -> (Matrix, Vector) {
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-10.0..10.0));
    let b = Vector::from(
        (0..m)
            .map(|_| rng.gen_range(-10.0..10.0))
            .collect::<Vec<f64>>(),
    );
    (a, b)
}

/// The dense Ψ the structured kernel refuses to build.
fn dense_psi(rank1: f64, diag: &[f64]) -> Matrix {
    Matrix::from_fn(diag.len(), diag.len(), |r, c| {
        if r == c {
            rank1 + diag[r]
        } else {
            rank1
        }
    })
}

fn solve_dense(a: &Matrix, b: &Vector, rank1: f64, diag: &[f64]) -> Result<Vector, LinalgError> {
    let mut scratch = LstsqScratch::new();
    let mut x = Vector::default();
    lstsq::gls_into(
        a,
        b,
        &dense_psi(rank1, diag),
        GlsStrategy::Whitened,
        &mut scratch,
        &mut x,
    )?;
    Ok(x)
}

fn assert_close(structured: &[f64], dense: &[f64], rel_tol: f64, what: &str) {
    assert_eq!(structured.len(), dense.len(), "{what}: length mismatch");
    for (i, (s, d)) in structured.iter().zip(dense).enumerate() {
        let scale = d.abs().max(1.0);
        assert!(
            (s - d).abs() <= rel_tol * scale,
            "{what}: component {i}: structured {s:e} vs dense {d:e}"
        );
    }
}

#[test]
fn structured_matches_dense_gls_to_ulp_level_up_to_m_40() {
    let mut rng = StdRng::seed_from_u64(0x5A1C_0001);
    for n in [3usize, 4, 5] {
        for m in [n + 1, 8, 10, 16, 20, 28, 40] {
            for _ in 0..CASES {
                let (a, b) = random_system(&mut rng, m, n);
                let rank1 = rng.gen_range(0.0..4.0);
                let diag: Vec<f64> = (0..m).map(|_| rng.gen_range(0.2..5.0)).collect();
                let structured = lstsq::gls_rank1(&a, &b, rank1, &diag)
                    .unwrap_or_else(|e| panic!("structured failed (m={m}, n={n}): {e}"));
                let dense = solve_dense(&a, &b, rank1, &diag)
                    .unwrap_or_else(|e| panic!("dense failed (m={m}, n={n}): {e}"));
                assert_close(
                    structured.as_slice(),
                    dense.as_slice(),
                    1e-12,
                    &format!("m={m} n={n}"),
                );
            }
        }
    }
}

#[test]
fn structured_survives_ill_conditioned_diagonals() {
    // Diagonal entries spanning ten orders of magnitude. D⁻¹ is exact
    // per-entry arithmetic, so the structured path keeps full precision
    // where the dense whitening has to factor the badly-scaled Ψ; when
    // both succeed they must still agree to a conditioning-limited
    // tolerance.
    let mut rng = StdRng::seed_from_u64(0x5A1C_0002);
    let mut both_succeeded = 0usize;
    for m in [6usize, 12, 24, 40] {
        for _ in 0..CASES {
            let (a, b) = random_system(&mut rng, m, 3);
            let rank1 = rng.gen_range(0.0..2.0);
            let diag: Vec<f64> = (0..m)
                .map(|_| 10.0f64.powf(rng.gen_range(-6.0..4.0)))
                .collect();
            let structured = lstsq::gls_rank1(&a, &b, rank1, &diag);
            let dense = solve_dense(&a, &b, rank1, &diag);
            match (structured, dense) {
                (Ok(s), Ok(d)) => {
                    both_succeeded += 1;
                    // κ(AᵀΨ⁻¹A) reaches ~1e10 at this diagonal spread, so
                    // the two algebraically-equal routes can differ in the
                    // last ~6 of 16 digits; the ULP-level pin lives in the
                    // well-conditioned sweep above.
                    assert_close(s.as_slice(), d.as_slice(), 1e-3, &format!("ill-cond m={m}"));
                }
                // The structured path may outlive the dense
                // factorization near the conditioning edge (that is its
                // selling point); the reverse would be a bug.
                (Ok(_), Err(_)) => {}
                (Err(se), Err(_)) => {
                    assert!(
                        matches!(
                            se,
                            LinalgError::NotPositiveDefinite { .. } | LinalgError::Singular
                        ),
                        "unexpected structured error class: {se}"
                    );
                }
                (Err(se), Ok(_)) => {
                    panic!("structured failed (m={m}) where dense succeeded: {se}")
                }
            }
        }
    }
    assert!(
        both_succeeded >= CASES,
        "only {both_succeeded} cases exercised the agreement check"
    );
}

#[test]
fn t_guard_rejects_exactly_when_psi_loses_definiteness() {
    // With unit diagonal, Ψ = rank1·𝟙𝟙ᵀ + I has eigenvalues {1, t} where
    // t = 1 + rank1·m: Ψ is PD ⟺ t > 0. Walk rank1 across the boundary
    // and require the structured guard and the dense Cholesky to flip at
    // the same draw.
    let mut rng = StdRng::seed_from_u64(0x5A1C_0003);
    for m in [4usize, 10, 25, 40] {
        let (a, b) = random_system(&mut rng, m, 3);
        let diag = vec![1.0; m];
        let critical = -1.0 / m as f64;
        for scale in [0.5, 0.9, 0.999, 1.001, 1.1, 2.0] {
            let rank1 = critical * scale;
            let t = 1.0 + rank1 * m as f64;
            let structured = lstsq::gls_rank1(&a, &b, rank1, &diag);
            let dense = solve_dense(&a, &b, rank1, &diag);
            if t > 0.0 {
                let s = structured.unwrap_or_else(|e| {
                    panic!("structured rejected PD system (m={m}, t={t:e}): {e}")
                });
                let d = dense
                    .unwrap_or_else(|e| panic!("dense rejected PD system (m={m}, t={t:e}): {e}"));
                // Near t → 0⁺ the system is genuinely ill-conditioned;
                // scale the bound by 1/t.
                assert_close(
                    s.as_slice(),
                    d.as_slice(),
                    1e-9 / t.min(1.0),
                    &format!("t={t:e}"),
                );
            } else {
                assert_eq!(
                    structured.unwrap_err(),
                    LinalgError::NotPositiveDefinite { pivot: m - 1 },
                    "structured guard missed t = {t:e} (m={m})"
                );
                assert!(
                    dense.is_err(),
                    "dense accepted an indefinite Ψ (m={m}, t={t:e})"
                );
            }
        }
    }
}

#[test]
fn stack_gls3_rank1_matches_heap_to_the_last_ulp() {
    let mut rng = StdRng::seed_from_u64(0x5A1C_0004);
    for m in 3..=STACK_M_CAP {
        for _ in 0..CASES {
            let mut sa = SMat::<STACK_M_CAP, 3>::zeroed(m);
            let a = Matrix::from_fn(m, 3, |r, c| {
                let v = rng.gen_range(-10.0..10.0);
                sa.row_mut(r)[c] = v;
                v
            });
            let mut sb = SVec::<STACK_M_CAP>::zeroed(m);
            let b = Vector::from(
                (0..m)
                    .map(|r| {
                        let v: f64 = rng.gen_range(-10.0..10.0);
                        sb.as_mut_slice()[r] = v;
                        v
                    })
                    .collect::<Vec<f64>>(),
            );
            let rank1 = rng.gen_range(-0.01..3.0);
            let diag: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..4.0)).collect();
            let mut scratch = LstsqScratch::new();
            let mut x = Vector::default();
            let heap = lstsq::gls_rank1_into(&a, &b, rank1, &diag, &mut scratch, &mut x);
            let stk = stack::gls3_rank1(&sa, &sb, rank1, &diag);
            match (heap, stk) {
                (Ok(()), Ok(sol)) => {
                    for (i, (h, s)) in x.as_slice().iter().zip(&sol).enumerate() {
                        assert_eq!(
                            h.to_bits(),
                            s.to_bits(),
                            "gls3_rank1 component {i} differs (m={m}): {h:e} vs {s:e}"
                        );
                    }
                }
                (Err(he), Err(se)) => assert_eq!(he, se, "gls3_rank1 error parity (m={m})"),
                (h, s) => {
                    panic!("gls3_rank1 lanes disagree on success (m={m}): {h:?} vs {s:?}")
                }
            }
        }
    }
}

#[test]
fn zero_rank1_unit_diag_is_bit_identical_to_ols() {
    // Identity covariance degenerates the structured path to OLS with
    // weights exactly 1.0 and γ exactly 0 — every correction term is an
    // exact no-op, so the agreement is bit-for-bit, not just close.
    let mut rng = StdRng::seed_from_u64(0x5A1C_0005);
    for m in [4usize, 9, 17, 33] {
        let (a, b) = random_system(&mut rng, m, 3);
        let diag = vec![1.0; m];
        let structured = lstsq::gls_rank1(&a, &b, 0.0, &diag).unwrap();
        let mut scratch = LstsqScratch::new();
        let mut x = Vector::default();
        lstsq::ols_into(&a, &b, &mut scratch, &mut x).unwrap();
        for (i, (s, o)) in structured.as_slice().iter().zip(x.as_slice()).enumerate() {
            assert_eq!(s.to_bits(), o.to_bits(), "component {i} differs (m={m})");
        }
    }
}
