//! Bit-for-bit parity between the stack const-generic kernels and the
//! heap `*_into` path.
//!
//! The stack kernels promise to perform the same floating-point operations
//! in the same order as the heap kernels, so on identical inputs the two
//! lanes must agree **to the last ULP** — not merely to a tolerance. Every
//! assertion here compares `f64::to_bits`, across seeded random
//! well-conditioned systems for all hot `(M, N)` shapes (`N ∈ {3, 4}`,
//! `M ≤ 16`), plus the error paths (both lanes must reject identically).

use gps_linalg::lstsq::{self, GlsStrategy, LstsqScratch};
use gps_linalg::stack::{self, SMat, SVec, STACK_M_CAP};
use gps_linalg::{Matrix, Vector};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

const CASES: usize = 64;

/// A heap matrix and its stack mirror built from the same draws.
fn paired_system<const N: usize>(
    rng: &mut StdRng,
    m: usize,
) -> (Matrix, Vector, SMat<STACK_M_CAP, N>, SVec<STACK_M_CAP>) {
    let mut sa = SMat::<STACK_M_CAP, N>::zeroed(m);
    let mut sb = SVec::<STACK_M_CAP>::zeroed(m);
    let a = Matrix::from_fn(m, N, |r, c| {
        let v = rng.gen_range(-10.0..10.0);
        sa.row_mut(r)[c] = v;
        v
    });
    let b = Vector::from(
        (0..m)
            .map(|r| {
                let v: f64 = rng.gen_range(-10.0..10.0);
                sb.as_mut_slice()[r] = v;
                v
            })
            .collect::<Vec<f64>>(),
    );
    (a, b, sa, sb)
}

fn assert_bits_eq(heap: &[f64], stk: &[f64], what: &str) {
    assert_eq!(heap.len(), stk.len(), "{what}: length mismatch");
    for (i, (h, s)) in heap.iter().zip(stk).enumerate() {
        assert_eq!(
            h.to_bits(),
            s.to_bits(),
            "{what}: component {i} differs: heap {h:e} vs stack {s:e}"
        );
    }
}

#[test]
fn ols3_matches_heap_to_the_last_ulp() {
    let mut rng = StdRng::seed_from_u64(0x57AC_0301);
    for m in 3..=STACK_M_CAP {
        for _ in 0..CASES {
            let (a, b, sa, sb) = paired_system::<3>(&mut rng, m);
            let mut scratch = LstsqScratch::new();
            let mut x = Vector::default();
            let heap = lstsq::ols_into(&a, &b, &mut scratch, &mut x);
            let stk = stack::ols3(&sa, &sb);
            match (heap, stk) {
                (Ok(()), Ok(sol)) => assert_bits_eq(x.as_slice(), &sol, "ols3"),
                (Err(he), Err(se)) => assert_eq!(he, se, "ols3 error parity (m={m})"),
                (h, s) => panic!("ols3 lanes disagree on success (m={m}): {h:?} vs {s:?}"),
            }
        }
    }
}

#[test]
fn ols4_matches_heap_to_the_last_ulp() {
    let mut rng = StdRng::seed_from_u64(0x57AC_0401);
    for m in 4..=STACK_M_CAP {
        for _ in 0..CASES {
            let (a, b, sa, sb) = paired_system::<4>(&mut rng, m);
            let mut scratch = LstsqScratch::new();
            let mut x = Vector::default();
            let heap = lstsq::ols_into(&a, &b, &mut scratch, &mut x);
            let stk = stack::ols4(&sa, &sb);
            match (heap, stk) {
                (Ok(()), Ok(sol)) => assert_bits_eq(x.as_slice(), &sol, "ols4"),
                (Err(he), Err(se)) => assert_eq!(he, se, "ols4 error parity (m={m})"),
                (h, s) => panic!("ols4 lanes disagree on success (m={m}): {h:?} vs {s:?}"),
            }
        }
    }
}

#[test]
fn wls4_matches_heap_to_the_last_ulp() {
    let mut rng = StdRng::seed_from_u64(0x57AC_0402);
    for m in 4..=STACK_M_CAP {
        for _ in 0..CASES {
            let (a, b, sa, sb) = paired_system::<4>(&mut rng, m);
            let weights: Vec<f64> = (0..m).map(|_| rng.gen_range(0.05..4.0)).collect();
            let mut scratch = LstsqScratch::new();
            let mut x = Vector::default();
            let heap = lstsq::wls_into(&a, &b, &weights, &mut scratch, &mut x);
            let stk = stack::wls4(&sa, &sb, &weights);
            match (heap, stk) {
                (Ok(()), Ok(sol)) => assert_bits_eq(x.as_slice(), &sol, "wls4"),
                (Err(he), Err(se)) => assert_eq!(he, se, "wls4 error parity (m={m})"),
                (h, s) => panic!("wls4 lanes disagree on success (m={m}): {h:?} vs {s:?}"),
            }
        }
    }
}

#[test]
fn gls3_matches_heap_to_the_last_ulp() {
    let mut rng = StdRng::seed_from_u64(0x57AC_0302);
    for m in 3..=STACK_M_CAP {
        for _ in 0..CASES {
            let (a, b, sa, sb) = paired_system::<3>(&mut rng, m);
            // SPD covariance with the DLG structure: common off-diagonal
            // term plus a strictly larger random diagonal.
            let common = rng.gen_range(0.2..2.0);
            let diag: Vec<f64> = (0..m).map(|_| common + rng.gen_range(0.1..3.0)).collect();
            let mut scov = SMat::<STACK_M_CAP, STACK_M_CAP>::zeroed(m);
            let cov = Matrix::from_fn(m, m, |r, c| {
                let v = if r == c { diag[r] } else { common };
                scov.row_mut(r)[c] = v;
                v
            });
            let mut scratch = LstsqScratch::new();
            let mut x = Vector::default();
            let heap = lstsq::gls_into(&a, &b, &cov, GlsStrategy::Whitened, &mut scratch, &mut x);
            let stk = stack::gls3(&sa, &sb, &mut scov);
            match (heap, stk) {
                (Ok(()), Ok(sol)) => assert_bits_eq(x.as_slice(), &sol, "gls3"),
                (Err(he), Err(se)) => assert_eq!(he, se, "gls3 error parity (m={m})"),
                (h, s) => panic!("gls3 lanes disagree on success (m={m}): {h:?} vs {s:?}"),
            }
        }
    }
}

#[test]
fn cholesky_factor_matches_heap_to_the_last_ulp() {
    let mut rng = StdRng::seed_from_u64(0x57AC_C401);
    for n in 1..=STACK_M_CAP {
        for _ in 0..CASES {
            // SPD input built as BᵀB + εI from shared draws.
            let k = n + 1;
            let bmat = Matrix::from_fn(k, n, |_, _| rng.gen_range(-3.0..3.0));
            let mut heap = &bmat.gram() + &Matrix::identity(n).scaled(0.5);
            let mut stk = SMat::<STACK_M_CAP, STACK_M_CAP>::zeroed(n);
            for r in 0..n {
                for c in 0..n {
                    stk.row_mut(r)[c] = heap[(r, c)];
                }
            }
            gps_linalg::Cholesky::factor_in_place(&mut heap).unwrap();
            stack::cholesky_factor(&mut stk).unwrap();
            for r in 0..n {
                for c in 0..n {
                    assert_eq!(
                        heap[(r, c)].to_bits(),
                        stk.row(r)[c].to_bits(),
                        "cholesky factor differs at ({r},{c}), n={n}"
                    );
                }
            }
        }
    }
}

#[test]
fn non_finite_and_degenerate_inputs_reject_identically() {
    // NaN in the design matrix.
    let mut sa = SMat::<STACK_M_CAP, 3>::zeroed(4);
    let a = Matrix::from_fn(4, 3, |r, c| {
        let v = if (r, c) == (2, 1) {
            f64::NAN
        } else {
            1.0 + r as f64 + c as f64
        };
        sa.row_mut(r)[c] = v;
        v
    });
    let b = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
    let mut sb = SVec::<STACK_M_CAP>::zeroed(4);
    sb.as_mut_slice().copy_from_slice(b.as_slice());
    let mut scratch = LstsqScratch::new();
    let mut x = Vector::default();
    let heap = lstsq::ols_into(&a, &b, &mut scratch, &mut x).unwrap_err();
    let stk = stack::ols3(&sa, &sb).unwrap_err();
    assert_eq!(heap, stk);

    // Rank-deficient geometry: all rows identical.
    let mut sa = SMat::<STACK_M_CAP, 3>::zeroed(4);
    let a = Matrix::from_fn(4, 3, |_, c| c as f64 + 1.0);
    for r in 0..4 {
        for c in 0..3 {
            sa.row_mut(r)[c] = a[(r, c)];
        }
    }
    let heap = lstsq::ols_into(&a, &b, &mut scratch, &mut x).unwrap_err();
    let stk = stack::ols3(&sa, &sb).unwrap_err();
    assert_eq!(heap, stk);
}
