//! Property-based tests for the linear-algebra substrate.

use gps_linalg::{lstsq, Cholesky, LuDecomposition, Matrix, QrDecomposition, Vector};
use proptest::prelude::*;

/// Strategy: a well-scaled `rows × cols` matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_fn(rows, cols, |r, c| data[r * cols + c]))
}

fn vector_strategy(n: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(-10.0f64..10.0, n).prop_map(|d| Vector::from(d))
}

/// Strategy: an SPD matrix built as `BᵀB + εI`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n + 1, n).prop_map(move |b| &b.gram() + &Matrix::identity(n).scaled(0.5))
}

proptest! {
    #[test]
    fn lu_solve_residual_small(a in spd_strategy(4), b in vector_strategy(4)) {
        // SPD matrices are never singular, so LU must succeed.
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = &a.matvec(&x).unwrap() - &b;
        let scale = 1.0 + b.norm_inf() + a.norm_max() * x.norm_inf();
        prop_assert!(r.norm_inf() / scale < 1e-9, "residual {}", r.norm_inf());
    }

    #[test]
    fn lu_inverse_round_trip(a in spd_strategy(3)) {
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = (&prod - &Matrix::identity(3)).norm_max();
        prop_assert!(err < 1e-7, "err {err}");
    }

    #[test]
    fn cholesky_reconstructs(a in spd_strategy(5)) {
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        let err = (&rec - &a).norm_max() / (1.0 + a.norm_max());
        prop_assert!(err < 1e-10, "err {err}");
    }

    #[test]
    fn cholesky_agrees_with_lu(a in spd_strategy(4), b in vector_strategy(4)) {
        let x1 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x2 = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let err = (&x1 - &x2).norm_inf() / (1.0 + x1.norm_inf());
        prop_assert!(err < 1e-8, "err {err}");
    }

    #[test]
    fn qr_preserves_gram(a in matrix_strategy(6, 3)) {
        // Skip (rare) rank-deficient random draws.
        if let Ok(qr) = QrDecomposition::new(&a) {
            let r = qr.r();
            let err = (&r.gram() - &a.gram()).norm_max() / (1.0 + a.gram().norm_max());
            prop_assert!(err < 1e-10, "err {err}");
        }
    }

    #[test]
    fn ols_exact_recovery(a in matrix_strategy(7, 3), x in vector_strategy(3)) {
        let b = a.matvec(&x).unwrap();
        if let Ok(xh) = lstsq::ols(&a, &b) {
            let err = (&xh - &x).norm_inf() / (1.0 + x.norm_inf());
            prop_assert!(err < 1e-6, "err {err}");
        }
    }

    #[test]
    fn ols_normal_equations_hold(a in matrix_strategy(6, 2), b in vector_strategy(6)) {
        if let Ok(x) = lstsq::ols(&a, &b) {
            // Optimality: Aᵀ(b − Ax) = 0.
            let r = lstsq::residual(&a, &b, &x).unwrap();
            let atr = a.transpose_matvec(&r).unwrap();
            let scale = 1.0 + a.norm_max() * b.norm_inf();
            prop_assert!(atr.norm_inf() / scale < 1e-9, "Aᵀr {}", atr.norm_inf());
        }
    }

    #[test]
    fn gls_identity_equals_ols(a in matrix_strategy(5, 2), b in vector_strategy(5)) {
        let i = Matrix::identity(5);
        match (lstsq::ols(&a, &b), lstsq::gls(&a, &b, &i)) {
            (Ok(x1), Ok(x2)) => {
                let err = (&x1 - &x2).norm_inf() / (1.0 + x1.norm_inf());
                prop_assert!(err < 1e-8, "err {err}");
            }
            _ => {}
        }
    }

    #[test]
    fn gls_whitened_matches_explicit(
        a in matrix_strategy(5, 2),
        b in vector_strategy(5),
        m in spd_strategy(5),
    ) {
        match (lstsq::gls(&a, &b, &m), lstsq::gls_explicit_inverse(&a, &b, &m)) {
            (Ok(x1), Ok(x2)) => {
                let err = (&x1 - &x2).norm_inf() / (1.0 + x1.norm_inf());
                prop_assert!(err < 1e-6, "err {err}");
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (r1, r2) => prop_assert!(false, "disagree: {r1:?} vs {r2:?}"),
        }
    }

    #[test]
    fn gls_optimality_condition(
        a in matrix_strategy(6, 3),
        b in vector_strategy(6),
        m in spd_strategy(6),
    ) {
        if let Ok(x) = lstsq::gls(&a, &b, &m) {
            // Optimality: Aᵀ M⁻¹ (b − Ax) = 0.
            let r = lstsq::residual(&a, &b, &x).unwrap();
            let minv_r = Cholesky::new(&m).unwrap().solve(&r).unwrap();
            let grad = a.transpose_matvec(&minv_r).unwrap();
            let scale = 1.0 + a.norm_max() * b.norm_inf();
            prop_assert!(grad.norm_inf() / scale < 1e-6, "grad {}", grad.norm_inf());
        }
    }

    #[test]
    fn eigen_reconstruction_and_condition(a in spd_strategy(4)) {
        let eig = gps_linalg::SymmetricEigen::new(&a).unwrap();
        // V Λ Vᵀ = A.
        let v = eig.eigenvectors();
        let lambda = Matrix::from_diagonal(eig.eigenvalues());
        let rec = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        prop_assert!((&rec - &a).norm_max() / (1.0 + a.norm_max()) < 1e-10);
        // SPD ⇒ positive eigenvalues, condition ≥ 1.
        prop_assert!(eig.min_eigenvalue() > 0.0);
        prop_assert!(eig.condition_number() >= 1.0);
        // Trace invariant.
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9 * (1.0 + trace.abs()));
    }

    #[test]
    fn ols3_matches_general_path(a in matrix_strategy(7, 3), b in vector_strategy(7)) {
        // `ols` dispatches to the Cramer fast path for 3 columns; verify
        // against the explicit normal-equation route.
        if let Ok(fast) = lstsq::ols3(&a, &b) {
            let g = a.gram();
            let rhs = a.transpose_matvec(&b).unwrap();
            if let Ok(general) = Cholesky::new(&g).and_then(|c| c.solve(&rhs)) {
                for k in 0..3 {
                    let scale = 1.0 + general.norm_inf();
                    prop_assert!((fast[k] - general[k]).abs() / scale < 1e-7,
                        "x[{k}]: {} vs {}", fast[k], general[k]);
                }
            }
        }
    }

    #[test]
    fn determinant_multiplicativity(a in spd_strategy(3), b in spd_strategy(3)) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).unwrap().determinant().unwrap();
        let err = (dab - da * db).abs() / (1.0 + dab.abs());
        prop_assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn transpose_of_product(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).norm_max() < 1e-10);
    }

    #[test]
    fn matvec_linearity(a in matrix_strategy(4, 3), x in vector_strategy(3), y in vector_strategy(3)) {
        let lhs = a.matvec(&(&x + &y)).unwrap();
        let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
        prop_assert!((&lhs - &rhs).norm_inf() < 1e-9);
    }
}
