//! Randomized property tests for the linear-algebra substrate.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops for the offline
//! build; inputs come from deterministic xoshiro256++ streams.

use gps_linalg::{lstsq, Cholesky, LuDecomposition, Matrix, QrDecomposition, Vector};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

const CASES: usize = 256;

/// A well-scaled `rows × cols` matrix with entries in [-10, 10].
fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.gen_range(-10.0..10.0))
        .collect();
    Matrix::from_fn(rows, cols, |r, c| data[r * cols + c])
}

fn random_vector(rng: &mut StdRng, n: usize) -> Vector {
    Vector::from(
        (0..n)
            .map(|_| rng.gen_range(-10.0..10.0))
            .collect::<Vec<f64>>(),
    )
}

/// An SPD matrix built as `BᵀB + εI`.
fn random_spd(rng: &mut StdRng, n: usize) -> Matrix {
    let b = random_matrix(rng, n + 1, n);
    &b.gram() + &Matrix::identity(n).scaled(0.5)
}

#[test]
fn lu_solve_residual_small() {
    let mut rng = StdRng::seed_from_u64(0x1A_01);
    for _ in 0..CASES {
        let a = random_spd(&mut rng, 4);
        let b = random_vector(&mut rng, 4);
        // SPD matrices are never singular, so LU must succeed.
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = &a.matvec(&x).unwrap() - &b;
        let scale = 1.0 + b.norm_inf() + a.norm_max() * x.norm_inf();
        assert!(r.norm_inf() / scale < 1e-9, "residual {}", r.norm_inf());
    }
}

#[test]
fn lu_inverse_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x1A_02);
    for _ in 0..CASES {
        let a = random_spd(&mut rng, 3);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = (&prod - &Matrix::identity(3)).norm_max();
        assert!(err < 1e-7, "err {err}");
    }
}

#[test]
fn cholesky_reconstructs() {
    let mut rng = StdRng::seed_from_u64(0x1A_03);
    for _ in 0..CASES {
        let a = random_spd(&mut rng, 5);
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        let err = (&rec - &a).norm_max() / (1.0 + a.norm_max());
        assert!(err < 1e-10, "err {err}");
    }
}

#[test]
fn cholesky_agrees_with_lu() {
    let mut rng = StdRng::seed_from_u64(0x1A_04);
    for _ in 0..CASES {
        let a = random_spd(&mut rng, 4);
        let b = random_vector(&mut rng, 4);
        let x1 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x2 = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let err = (&x1 - &x2).norm_inf() / (1.0 + x1.norm_inf());
        assert!(err < 1e-8, "err {err}");
    }
}

#[test]
fn qr_preserves_gram() {
    let mut rng = StdRng::seed_from_u64(0x1A_05);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 6, 3);
        // Skip (rare) rank-deficient random draws.
        if let Ok(qr) = QrDecomposition::new(&a) {
            let r = qr.r();
            let err = (&r.gram() - &a.gram()).norm_max() / (1.0 + a.gram().norm_max());
            assert!(err < 1e-10, "err {err}");
        }
    }
}

#[test]
fn ols_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0x1A_06);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 7, 3);
        let x = random_vector(&mut rng, 3);
        let b = a.matvec(&x).unwrap();
        if let Ok(xh) = lstsq::ols(&a, &b) {
            let err = (&xh - &x).norm_inf() / (1.0 + x.norm_inf());
            assert!(err < 1e-6, "err {err}");
        }
    }
}

#[test]
fn ols_normal_equations_hold() {
    let mut rng = StdRng::seed_from_u64(0x1A_07);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 6, 2);
        let b = random_vector(&mut rng, 6);
        if let Ok(x) = lstsq::ols(&a, &b) {
            // Optimality: Aᵀ(b − Ax) = 0.
            let r = lstsq::residual(&a, &b, &x).unwrap();
            let atr = a.transpose_matvec(&r).unwrap();
            let scale = 1.0 + a.norm_max() * b.norm_inf();
            assert!(atr.norm_inf() / scale < 1e-9, "Aᵀr {}", atr.norm_inf());
        }
    }
}

#[test]
fn gls_identity_equals_ols() {
    let mut rng = StdRng::seed_from_u64(0x1A_08);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 5, 2);
        let b = random_vector(&mut rng, 5);
        let i = Matrix::identity(5);
        if let (Ok(x1), Ok(x2)) = (lstsq::ols(&a, &b), lstsq::gls(&a, &b, &i)) {
            let err = (&x1 - &x2).norm_inf() / (1.0 + x1.norm_inf());
            assert!(err < 1e-8, "err {err}");
        }
    }
}

#[test]
fn gls_whitened_matches_explicit() {
    let mut rng = StdRng::seed_from_u64(0x1A_09);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 5, 2);
        let b = random_vector(&mut rng, 5);
        let m = random_spd(&mut rng, 5);
        match (
            lstsq::gls(&a, &b, &m),
            lstsq::gls_explicit_inverse(&a, &b, &m),
        ) {
            (Ok(x1), Ok(x2)) => {
                let err = (&x1 - &x2).norm_inf() / (1.0 + x1.norm_inf());
                assert!(err < 1e-6, "err {err}");
            }
            (Err(e1), Err(e2)) => assert_eq!(e1, e2),
            (r1, r2) => panic!("disagree: {r1:?} vs {r2:?}"),
        }
    }
}

#[test]
fn gls_optimality_condition() {
    let mut rng = StdRng::seed_from_u64(0x1A_0A);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 6, 3);
        let b = random_vector(&mut rng, 6);
        let m = random_spd(&mut rng, 6);
        if let Ok(x) = lstsq::gls(&a, &b, &m) {
            // Optimality: Aᵀ M⁻¹ (b − Ax) = 0.
            let r = lstsq::residual(&a, &b, &x).unwrap();
            let minv_r = Cholesky::new(&m).unwrap().solve(&r).unwrap();
            let grad = a.transpose_matvec(&minv_r).unwrap();
            let scale = 1.0 + a.norm_max() * b.norm_inf();
            assert!(grad.norm_inf() / scale < 1e-6, "grad {}", grad.norm_inf());
        }
    }
}

#[test]
fn eigen_reconstruction_and_condition() {
    let mut rng = StdRng::seed_from_u64(0x1A_0B);
    for _ in 0..CASES {
        let a = random_spd(&mut rng, 4);
        let eig = gps_linalg::SymmetricEigen::new(&a).unwrap();
        // V Λ Vᵀ = A.
        let v = eig.eigenvectors();
        let lambda = Matrix::from_diagonal(eig.eigenvalues());
        let rec = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        assert!((&rec - &a).norm_max() / (1.0 + a.norm_max()) < 1e-10);
        // SPD ⇒ positive eigenvalues, condition ≥ 1.
        assert!(eig.min_eigenvalue() > 0.0);
        assert!(eig.condition_number() >= 1.0);
        // Trace invariant.
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-9 * (1.0 + trace.abs()));
    }
}

#[test]
fn ols3_matches_general_path() {
    let mut rng = StdRng::seed_from_u64(0x1A_0C);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 7, 3);
        let b = random_vector(&mut rng, 7);
        // `ols` dispatches to the Cramer fast path for 3 columns; verify
        // against the explicit normal-equation route.
        if let Ok(fast) = lstsq::ols3(&a, &b) {
            let g = a.gram();
            let rhs = a.transpose_matvec(&b).unwrap();
            if let Ok(general) = Cholesky::new(&g).and_then(|c| c.solve(&rhs)) {
                for k in 0..3 {
                    let scale = 1.0 + general.norm_inf();
                    assert!(
                        (fast[k] - general[k]).abs() / scale < 1e-7,
                        "x[{k}]: {} vs {}",
                        fast[k],
                        general[k]
                    );
                }
            }
        }
    }
}

#[test]
fn determinant_multiplicativity() {
    let mut rng = StdRng::seed_from_u64(0x1A_0D);
    for _ in 0..CASES {
        let a = random_spd(&mut rng, 3);
        let b = random_spd(&mut rng, 3);
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).unwrap().determinant().unwrap();
        let err = (dab - da * db).abs() / (1.0 + dab.abs());
        assert!(err < 1e-6, "err {err}");
    }
}

#[test]
fn transpose_of_product() {
    let mut rng = StdRng::seed_from_u64(0x1A_0E);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 3, 4);
        let b = random_matrix(&mut rng, 4, 2);
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!((&lhs - &rhs).norm_max() < 1e-10);
    }
}

#[test]
fn matvec_linearity() {
    let mut rng = StdRng::seed_from_u64(0x1A_0F);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 4, 3);
        let x = random_vector(&mut rng, 3);
        let y = random_vector(&mut rng, 3);
        let lhs = a.matvec(&(&x + &y)).unwrap();
        let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
        assert!((&lhs - &rhs).norm_inf() < 1e-9);
    }
}
