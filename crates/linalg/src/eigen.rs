use crate::{LinalgError, Matrix};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Jacobi rotation is the method of choice for the small symmetric
/// matrices this workspace produces (Gram matrices, DOP cofactors, DLG
/// covariances): unconditionally convergent, and accurate to machine
/// precision for well-separated and clustered eigenvalues alike.
///
/// # Example
///
/// ```
/// use gps_linalg::{Matrix, SymmetricEigen};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = SymmetricEigen::new(&a)?;
/// let mut vals = eig.eigenvalues().to_vec();
/// vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
/// assert!((vals[0] - 1.0).abs() < 1e-12);
/// assert!((vals[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Columns are the corresponding orthonormal eigenvectors.
    eigenvectors: Matrix,
}

/// Off-diagonal Frobenius mass below which the iteration stops.
const CONVERGENCE_TOL: f64 = 1e-14;

/// Sweep cap; Jacobi converges quadratically, ~8 sweeps suffice for any
/// double-precision matrix of the sizes used here.
const MAX_SWEEPS: usize = 50;

impl SymmetricEigen {
    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// Only the lower triangle is read; the strict upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::EmptyDimension`] if `a` is 0×0.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        // Symmetrize from the lower triangle.
        let mut work = Matrix::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] });
        let mut v = Matrix::identity(n);
        let scale = work.norm_max().max(f64::MIN_POSITIVE);

        for _sweep in 0..MAX_SWEEPS {
            // Off-diagonal mass.
            let mut off = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    off += work[(r, c)] * work[(r, c)];
                }
            }
            if off.sqrt() <= CONVERGENCE_TOL * scale {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = work[(p, q)];
                    if apq.abs() <= f64::MIN_POSITIVE {
                        continue;
                    }
                    let app = work[(p, p)];
                    let aqq = work[(q, q)];
                    // Rotation angle: tan(2θ) = 2apq / (app − aqq).
                    let theta = 0.5 * (2.0 * apq).atan2(app - aqq);
                    let (s, c) = theta.sin_cos();
                    // Apply Jᵀ A J on rows/cols p and q.
                    for k in 0..n {
                        let akp = work[(k, p)];
                        let akq = work[(k, q)];
                        work[(k, p)] = c * akp + s * akq;
                        work[(k, q)] = -s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = work[(p, k)];
                        let aqk = work[(q, k)];
                        work[(p, k)] = c * apk + s * aqk;
                        work[(q, k)] = -s * apk + c * aqk;
                    }
                    // Accumulate eigenvectors: V ← V J.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp + s * vkq;
                        v[(k, q)] = -s * vkp + c * vkq;
                    }
                }
            }
        }
        let eigenvalues = (0..n).map(|i| work[(i, i)]).collect();
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors: v,
        })
    }

    /// The eigenvalues, in the order matching [`SymmetricEigen::eigenvectors`]
    /// columns (not sorted).
    #[must_use]
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The orthonormal eigenvector matrix (eigenvectors as columns).
    #[must_use]
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Largest eigenvalue.
    #[must_use]
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .iter()
            .fold(f64::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// Smallest eigenvalue.
    #[must_use]
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .iter()
            .fold(f64::INFINITY, |m, &x| m.min(x))
    }

    /// Spectral (2-norm) condition number `|λ|max / |λ|min`; infinite for
    /// a singular matrix.
    #[must_use]
    pub fn condition_number(&self) -> f64 {
        let max_abs = self.eigenvalues.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let min_abs = self
            .eigenvalues
            .iter()
            .fold(f64::INFINITY, |m, &x| m.min(x.abs()));
        if min_abs == 0.0 {
            f64::INFINITY
        } else {
            max_abs / min_abs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd4() -> Matrix {
        let b = Matrix::from_rows(&[
            &[1.0, 2.0, 0.0, 1.0],
            &[0.0, 1.0, 3.0, -1.0],
            &[2.0, 0.5, 1.0, 0.0],
            &[1.0, 1.0, 1.0, 2.0],
            &[0.0, -1.0, 0.5, 1.5],
        ])
        .unwrap();
        b.gram()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let d = Matrix::from_diagonal(&[3.0, -1.0, 7.0]);
        let eig = SymmetricEigen::new(&d).unwrap();
        let mut vals = eig.eigenvalues().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![-1.0, 3.0, 7.0]);
        assert_eq!(eig.max_eigenvalue(), 7.0);
        assert_eq!(eig.min_eigenvalue(), -1.0);
        assert_eq!(eig.condition_number(), 7.0);
    }

    #[test]
    fn reconstruction_v_lambda_vt() {
        let a = spd4();
        let eig = SymmetricEigen::new(&a).unwrap();
        let v = eig.eigenvectors();
        let lambda = Matrix::from_diagonal(eig.eigenvalues());
        let rec = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        let err = (&rec - &a).norm_max() / a.norm_max();
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let eig = SymmetricEigen::new(&spd4()).unwrap();
        let v = eig.eigenvectors();
        let vtv = v.transpose().matmul(v).unwrap();
        assert!((&vtv - &Matrix::identity(4)).norm_max() < 1e-12);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = spd4();
        let eig = SymmetricEigen::new(&a).unwrap();
        for (i, &lambda) in eig.eigenvalues().iter().enumerate() {
            let x = eig.eigenvectors().col(i);
            let ax = a.matvec(&x).unwrap();
            let lx = x.scaled(lambda);
            assert!(
                (&ax - &lx).norm_inf() < 1e-10 * a.norm_max(),
                "eigenpair {i}"
            );
        }
    }

    #[test]
    fn trace_and_determinant_invariants() {
        let a = spd4();
        let eig = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-10 * trace.abs());
        let det = a.determinant().unwrap();
        let prod: f64 = eig.eigenvalues().iter().product();
        assert!((det - prod).abs() < 1e-8 * det.abs().max(1.0));
    }

    #[test]
    fn spd_eigenvalues_positive_and_match_cholesky_conditioning() {
        let a = spd4();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.min_eigenvalue() > 0.0);
        assert!(eig.condition_number() >= 1.0);
    }

    #[test]
    fn indefinite_matrix_has_mixed_signs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.min_eigenvalue() < 0.0);
        assert!(eig.max_eigenvalue() > 0.0);
    }

    #[test]
    fn singular_matrix_infinite_condition() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        // One eigenvalue is 0 (numerically tiny), condition → huge.
        assert!(eig.condition_number() > 1e12);
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = spd4();
        a[(0, 3)] = 999.0; // poison the upper triangle
        let clean = SymmetricEigen::new(&spd4()).unwrap();
        let poisoned = SymmetricEigen::new(&a).unwrap();
        let mut v1 = clean.eigenvalues().to_vec();
        let mut v2 = poisoned.eigenvalues().to_vec();
        v1.sort_by(|x, y| x.partial_cmp(y).unwrap());
        v2.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (a, b) in v1.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
        let mut m = Matrix::identity(2);
        m[(0, 0)] = f64::NAN;
        assert!(SymmetricEigen::new(&m).is_err());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[5.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[5.0]);
    }
}
