//! High-level least-squares solvers.
//!
//! Three estimators, matching the paper's terminology:
//!
//! * [`ols`] — **Ordinary Least Squares** `x = (AᵀA)⁻¹ Aᵀ b` (paper
//!   eq. 4-12), optimal when residual errors are zero-mean, homoscedastic
//!   and *uncorrelated* (paper eq. 3-33/3-34/3-35).
//! * [`wls`] — **Weighted Least Squares** with a diagonal weight matrix,
//!   the common special case of GLS.
//! * [`gls`] — **General Least Squares** `x = (AᵀM⁻¹A)⁻¹ AᵀM⁻¹ b` (paper
//!   eq. 4-21), optimal whenever the error covariance `M = σ²Ω` is known up
//!   to scale with `Ω` positive definite (paper eq. 4-23/4-24) — exactly
//!   the situation Theorem 4.2 establishes for the direct-linearization
//!   system.
//!
//! Implementation notes: the default paths solve the (whitened) normal
//! equations through Cholesky — the matrices involved are tiny (`m ≤ ~12`
//! satellites) and well-conditioned, so this is both the fastest and the
//! most faithful rendering of what the paper's formulas prescribe.
//! [`ols_qr`] offers a Householder-QR alternative for the linalg-path
//! ablation and for ill-conditioned geometry.

use crate::{Cholesky, LinalgError, Matrix, QrDecomposition, Vector};

/// Reusable scratch buffers for the `*_into` least-squares entry points.
///
/// A fresh `LstsqScratch` owns only empty buffers; the first solve sizes
/// them and every later solve of the same (or smaller) dimensions reuses
/// the allocations. One scratch may be shared freely across [`ols_into`],
/// [`wls_into`] and [`gls_into`] calls of varying shapes — buffers are
/// reshaped per call with [`Matrix::resize_zeroed`], which never shrinks
/// capacity.
#[derive(Debug, Clone, Default)]
pub struct LstsqScratch {
    /// `n × n` normal equations `AᵀA`, factored in place.
    gram: Matrix,
    /// `m × n` row-scaled / whitened copy of the design matrix.
    scaled_a: Matrix,
    /// Length-`m` row-scaled / whitened copy of the right-hand side.
    scaled_b: Vector,
    /// `m × m` covariance copy, factored in place (GLS only).
    cov: Matrix,
    /// Length-`n` rank-one correction vector `u = AᵀD⁻¹𝟙`
    /// ([`gls_rank1_into`] only).
    rank1_u: Vector,
}

impl LstsqScratch {
    /// Creates a scratch with empty buffers (no heap allocation until the
    /// first solve).
    #[must_use]
    pub fn new() -> Self {
        LstsqScratch::default()
    }
}

/// Strategy used by [`gls_with`] to apply the inverse error covariance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GlsStrategy {
    /// Whiten through a Cholesky half-solve (`Ã = L⁻¹A`, `b̃ = L⁻¹b`) and
    /// run OLS on the transformed system. The default: one triangular
    /// solve per column instead of a dense inverse.
    #[default]
    Whitened,
    /// Materialize `M⁻¹` and evaluate `x = (AᵀM⁻¹A)⁻¹ AᵀM⁻¹ b` exactly as
    /// the paper's eq. 4-21 writes it. Strictly more work; kept as the
    /// faithful-to-the-text variant for the `ablation_linalg_path`
    /// benchmark.
    ExplicitInverse,
}

/// Validates common least-squares preconditions.
fn check_system(a: &Matrix, b: &Vector, op: &'static str) -> crate::Result<()> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyDimension);
    }
    if m < n {
        return Err(LinalgError::Underdetermined { rows: m, cols: n });
    }
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, n),
            right: (b.len(), 1),
            op,
        });
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    Ok(())
}

/// Ordinary least squares: minimizes `‖A x − b‖₂` via the normal equations
/// `(AᵀA) x = Aᵀ b` solved by Cholesky.
///
/// This is the literal implementation of the paper's eq. 4-12
/// `Xᵉ = (AᵀA)⁻¹ Aᵀ Dᵉ` (without materializing the inverse).
///
/// # Errors
///
/// * [`LinalgError::Underdetermined`] if `a` has fewer rows than columns.
/// * [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
/// * [`LinalgError::NonFinite`] on NaN/∞ input.
/// * [`LinalgError::NotPositiveDefinite`] if `a` is rank-deficient.
///
/// # Example
///
/// ```
/// use gps_linalg::{lstsq, Matrix, Vector};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]])?;
/// let b = Vector::from_slice(&[6.0, 9.0, 12.0]);
/// let x = lstsq::ols(&a, &b)?; // intercept 3, slope 3
/// assert!((x[0] - 3.0).abs() < 1e-10);
/// assert!((x[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn ols(a: &Matrix, b: &Vector) -> crate::Result<Vector> {
    let mut scratch = LstsqScratch::new();
    let mut x = Vector::default();
    ols_into(a, b, &mut scratch, &mut x)?;
    Ok(x)
}

/// [`ols`] with caller-provided buffers: writes the solution into `x` and
/// keeps every intermediate in `scratch`, so repeated solves allocate
/// nothing after the first call.
///
/// # Errors
///
/// Same conditions as [`ols`].
// lint: no_alloc
pub fn ols_into(
    a: &Matrix,
    b: &Vector,
    scratch: &mut LstsqScratch,
    x: &mut Vector,
) -> crate::Result<()> {
    // Three-unknown systems (the direct-linearization shape) take the
    // allocation-free specialized path; identical mathematics.
    if a.cols() == 3 && a.rows() >= 3 {
        let sol = ols3(a, b)?;
        x.copy_from_slice(&sol);
        return Ok(());
    }
    check_system(a, b, "ols")?;
    ols_core(a, b, &mut scratch.gram, x)
}

/// Normal-equations core shared by the `*_into` paths: forms `AᵀA` in
/// `gram`, `Aᵀb` in `x`, then factors and substitutes in place.
// lint: no_alloc
fn ols_core(a: &Matrix, b: &Vector, gram: &mut Matrix, x: &mut Vector) -> crate::Result<()> {
    let (m, n) = a.shape();
    gram.resize_zeroed(n, n);
    x.resize_zeroed(n);
    for r in 0..m {
        let row = a.row(r);
        let bv = b[r];
        for i in 0..n {
            let ai = row[i];
            x[i] += ai * bv;
            // Lower triangle of AᵀA is all the factorization reads.
            for j in 0..=i {
                gram[(i, j)] += ai * row[j];
            }
        }
    }
    Cholesky::factor_in_place(gram)?;
    Cholesky::forward_substitute(gram, x.as_mut_slice())?;
    Cholesky::back_substitute(gram, x.as_mut_slice())
}

/// Ordinary least squares specialized to **three unknowns**: forms the
/// 3×3 normal equations with scalar accumulators and solves by Cramer's
/// rule — no heap allocation, no factorization loop.
///
/// This is the paper's §6 third extension ("optimize the matrix
/// operations in the context of our problem") applied to the DLO hot
/// path: the direct linearization always produces exactly 3 columns, so
/// the general machinery can be bypassed. Results agree with [`ols`] to
/// rounding.
///
/// # Errors
///
/// Same conditions as [`ols`]; rank deficiency surfaces as
/// [`LinalgError::Singular`].
pub fn ols3(a: &Matrix, b: &Vector) -> crate::Result<[f64; 3]> {
    let (m, n) = a.shape();
    if n != 3 {
        return Err(LinalgError::ShapeMismatch {
            left: (m, n),
            right: (m, 3),
            op: "ols3",
        });
    }
    check_system(a, b, "ols3")?;
    // Accumulate AᵀA (symmetric) and Aᵀb.
    let (mut g00, mut g01, mut g02, mut g11, mut g12, mut g22) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut c0, mut c1, mut c2) = (0.0, 0.0, 0.0);
    for r in 0..m {
        let row = a.row(r);
        let (x, y, z) = (row[0], row[1], row[2]);
        let w = b[r];
        g00 += x * x;
        g01 += x * y;
        g02 += x * z;
        g11 += y * y;
        g12 += y * z;
        g22 += z * z;
        c0 += x * w;
        c1 += y * w;
        c2 += z * w;
    }
    // Cramer's rule on the symmetric 3×3 system.
    let det = g00 * (g11 * g22 - g12 * g12) - g01 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * g12 - g11 * g02);
    let scale = [g00, g11, g22].into_iter().fold(0.0f64, f64::max);
    if det.abs() <= 1e-13 * scale * scale * scale.max(f64::MIN_POSITIVE) {
        return Err(LinalgError::Singular);
    }
    let x0 = (c0 * (g11 * g22 - g12 * g12) - g01 * (c1 * g22 - g12 * c2)
        + g02 * (c1 * g12 - g11 * c2))
        / det;
    let x1 = (g00 * (c1 * g22 - c2 * g12) - c0 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * c2 - c1 * g02))
        / det;
    let x2 = (g00 * (g11 * c2 - g12 * c1) - g01 * (g01 * c2 - c1 * g02)
        + c0 * (g01 * g12 - g11 * g02))
        / det;
    Ok([x0, x1, x2])
}

/// Ordinary least squares solved through Householder QR instead of the
/// normal equations.
///
/// Numerically more robust than [`ols`] when `A` is ill-conditioned (the
/// normal equations square the condition number); used by the
/// `ablation_linalg_path` benchmark, and a sensible choice under degenerate
/// satellite geometry.
///
/// # Errors
///
/// Same conditions as [`ols`] (rank deficiency surfaces as
/// [`LinalgError::Singular`]).
pub fn ols_qr(a: &Matrix, b: &Vector) -> crate::Result<Vector> {
    check_system(a, b, "ols_qr")?;
    QrDecomposition::new(a)?.solve_least_squares(b)
}

/// Weighted least squares: minimizes `Σ wᵢ (A x − b)ᵢ²` for positive
/// weights `w`.
///
/// Equivalent to [`gls`] with `M = diag(1/w)`, but avoids the dense
/// factorization of `M`.
///
/// # Errors
///
/// Same conditions as [`ols`], plus [`LinalgError::NotPositiveDefinite`]
/// (pivot 0) if any weight is non-positive, and
/// [`LinalgError::ShapeMismatch`] if `weights.len() != a.rows()`.
pub fn wls(a: &Matrix, b: &Vector, weights: &[f64]) -> crate::Result<Vector> {
    let mut scratch = LstsqScratch::new();
    let mut x = Vector::default();
    wls_into(a, b, weights, &mut scratch, &mut x)?;
    Ok(x)
}

/// [`wls`] with caller-provided buffers: writes the solution into `x` and
/// keeps the row-scaled system in `scratch`, so repeated solves allocate
/// nothing after the first call.
///
/// # Errors
///
/// Same conditions as [`wls`].
// lint: no_alloc
pub fn wls_into(
    a: &Matrix,
    b: &Vector,
    weights: &[f64],
    scratch: &mut LstsqScratch,
    x: &mut Vector,
) -> crate::Result<()> {
    check_system(a, b, "wls")?;
    let (m, n) = a.shape();
    if weights.len() != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, n),
            right: (weights.len(), 1),
            op: "wls weights",
        });
    }
    if weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
        return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
    }
    // Scale each row of A and entry of b by sqrt(w), then run OLS.
    let LstsqScratch {
        gram,
        scaled_a,
        scaled_b,
        ..
    } = scratch;
    scaled_a.resize_zeroed(m, n);
    scaled_b.resize_zeroed(m);
    for r in 0..m {
        let s = weights[r].sqrt();
        let (src, dst) = (a.row(r), scaled_a.row_mut(r));
        for c in 0..n {
            dst[c] = src[c] * s;
        }
        scaled_b[r] = b[r] * s;
    }
    if n == 3 && m >= 3 {
        let sol = ols3(scaled_a, scaled_b)?;
        x.copy_from_slice(&sol);
        return Ok(());
    }
    ols_core(scaled_a, scaled_b, gram, x)
}

/// General least squares: minimizes `(A x − b)ᵀ M⁻¹ (A x − b)` for a
/// symmetric positive-definite error covariance `M`.
///
/// This is the paper's eq. 4-21, `Xᵉ = (AᵀM⁻¹A)⁻¹ AᵀM⁻¹ Dᵉ`, implemented by
/// *whitening*: factor `M = L Lᵀ`, transform `Ã = L⁻¹A`, `b̃ = L⁻¹b`, and
/// solve the ordinary problem `min ‖Ã x − b̃‖₂`. The two formulations are
/// algebraically identical; whitening does one triangular solve per column
/// instead of a full inverse and keeps conditioning in check.
///
/// # Errors
///
/// * All conditions of [`ols`].
/// * [`LinalgError::ShapeMismatch`] if `m.rows() != a.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] if `m` is not SPD (the paper's
///   Theorem 4.2 guarantees the DLG covariance Ψ is SPD, so this signals a
///   caller bug).
///
/// # Example
///
/// ```
/// use gps_linalg::{lstsq, Matrix, Vector};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0], &[1.0]])?;
/// let b = Vector::from_slice(&[1.0, 3.0]);
/// // Second observation has 4x the variance: estimate leans toward 1.
/// let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]])?;
/// let x = lstsq::gls(&a, &b, &m)?;
/// assert!((x[0] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gls(a: &Matrix, b: &Vector, m: &Matrix) -> crate::Result<Vector> {
    gls_with(a, b, m, GlsStrategy::Whitened)
}

/// Single entry point for general least squares: solves the GLS problem
/// with the requested [`GlsStrategy`].
///
/// [`gls`] and [`gls_explicit_inverse`] are thin wrappers around this
/// function; the `ablation_linalg_path` benchmark calls it with both
/// strategies to quantify the whitening optimization.
///
/// # Errors
///
/// Same conditions as [`gls`].
pub fn gls_with(
    a: &Matrix,
    b: &Vector,
    m: &Matrix,
    strategy: GlsStrategy,
) -> crate::Result<Vector> {
    let mut scratch = LstsqScratch::new();
    let mut x = Vector::default();
    gls_into(a, b, m, strategy, &mut scratch, &mut x)?;
    Ok(x)
}

/// [`gls_with`] with caller-provided buffers: writes the solution into `x`
/// and keeps the covariance factor and whitened system in `scratch`.
///
/// With [`GlsStrategy::Whitened`] repeated solves allocate nothing after
/// the first call; [`GlsStrategy::ExplicitInverse`] materializes `M⁻¹` and
/// therefore allocates per call (it exists as an ablation reference, not a
/// hot path).
///
/// # Errors
///
/// Same conditions as [`gls`].
// lint: no_alloc
pub fn gls_into(
    a: &Matrix,
    b: &Vector,
    m: &Matrix,
    strategy: GlsStrategy,
    scratch: &mut LstsqScratch,
    x: &mut Vector,
) -> crate::Result<()> {
    check_system(a, b, "gls")?;
    if m.rows() != a.rows() || m.cols() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: m.shape(),
            op: "gls covariance",
        });
    }
    match strategy {
        GlsStrategy::Whitened => {
            let LstsqScratch {
                gram,
                scaled_a,
                scaled_b,
                cov,
                ..
            } = scratch;
            cov.copy_from(m);
            Cholesky::factor_in_place(cov)?;
            scaled_a.copy_from(a);
            Cholesky::forward_substitute_matrix(cov, scaled_a)?;
            scaled_b.copy_from(b);
            Cholesky::forward_substitute(cov, scaled_b.as_mut_slice())?;
            if a.cols() == 3 && a.rows() >= 3 {
                let sol = ols3(scaled_a, scaled_b)?;
                x.copy_from_slice(&sol);
                return Ok(());
            }
            ols_core(scaled_a, scaled_b, gram, x)
        }
        GlsStrategy::ExplicitInverse => {
            let m_inv = Cholesky::new(m)?.inverse()?;
            let at = a.transpose();
            let at_minv = at.matmul(&m_inv)?;
            let lhs = at_minv.matmul(a)?; // AᵀM⁻¹A
            let rhs = at_minv.matvec(b)?; // AᵀM⁻¹b
            let sol = Cholesky::new(&lhs)?.solve(&rhs)?;
            x.copy_from(&sol);
            Ok(())
        }
    }
}

/// General least squares computed exactly as the paper's eq. 4-21 writes
/// it: `x = (AᵀM⁻¹A)⁻¹ AᵀM⁻¹ b` with an explicit `M⁻¹`.
///
/// Mathematically identical to [`gls`] but does strictly more work
/// (a dense `(m−1)×(m−1)` inverse). Kept as a faithful-to-the-text variant
/// and exercised by the `ablation_linalg_path` benchmark to quantify what
/// the paper's §6 "optimize the matrix operations" extension would buy.
///
/// # Errors
///
/// Same conditions as [`gls`].
pub fn gls_explicit_inverse(a: &Matrix, b: &Vector, m: &Matrix) -> crate::Result<Vector> {
    gls_with(a, b, m, GlsStrategy::ExplicitInverse)
}

/// Structured general least squares for a **rank-one-plus-diagonal**
/// covariance `M = rank1·𝟙𝟙ᵀ + diag(d)` — the exact shape of the paper's
/// Ψ (eq. 4-25/4-26), where `rank1 = ρ₁²` and `dᵢ = ρᵢ₊₁²`.
///
/// Instead of materializing and factoring the dense m×m matrix, the kernel
/// applies the Sherman–Morrison identity
///
/// `M⁻¹ = D⁻¹ − (D⁻¹𝟙)(𝟙ᵀD⁻¹)·rank1 / (1 + rank1·𝟙ᵀD⁻¹𝟙)`
///
/// so `AᵀM⁻¹A` and `AᵀM⁻¹b` assemble in `O(m·n)` flops with `O(n)` scratch
/// (one pass of diagonal-weighted accumulators plus one rank-one
/// correction), and only the tiny `n×n` normal system is factored. The
/// algebra is exact: results agree with [`gls`] on the equivalent dense
/// matrix to rounding (ULP-level, not bit-level — the operations associate
/// differently).
///
/// `M` is positive definite **iff** every `dᵢ > 0` and the Sherman–Morrison
/// denominator `t = 1 + rank1·Σ(1/dᵢ) > 0` (eigendecomposition:
/// `M = D^½(I + rank1·vvᵀ)D^½` with `v = D^{−½}𝟙` has eigenvalues 1 and
/// `t`, and `det M = det D · t`). Both conditions are tested exactly;
/// `rank1` may be negative as long as `t` stays positive.
///
/// # Errors
///
/// * All conditions of [`ols`].
/// * [`LinalgError::ShapeMismatch`] if `diag.len() != a.rows()`.
/// * [`LinalgError::NonFinite`] if `rank1` is NaN/∞.
/// * [`LinalgError::NotPositiveDefinite`] if any `dᵢ ≤ 0` (pivot = its
///   index) or `t ≤ 0` (pivot = `m − 1`, where the dense factorization
///   would generically fail).
///
/// # Example
///
/// ```
/// use gps_linalg::{lstsq, Matrix, Vector};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]])?;
/// let b = Vector::from_slice(&[6.0, 9.0, 12.0]);
/// // rank1 = 0 with unit diagonal is plain OLS.
/// let x = lstsq::gls_rank1(&a, &b, 0.0, &[1.0, 1.0, 1.0])?;
/// assert!((x[0] - 3.0).abs() < 1e-10);
/// assert!((x[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn gls_rank1(a: &Matrix, b: &Vector, rank1: f64, diag: &[f64]) -> crate::Result<Vector> {
    let mut scratch = LstsqScratch::new();
    let mut x = Vector::default();
    gls_rank1_into(a, b, rank1, diag, &mut scratch, &mut x)?;
    Ok(x)
}

/// [`gls_rank1`] with caller-provided buffers: writes the solution into
/// `x` and keeps the `n×n` normal equations and the rank-one correction
/// vector in `scratch`, so repeated solves allocate nothing after the
/// first call (and the three-unknown shape allocates nothing at all).
///
/// # Errors
///
/// Same conditions as [`gls_rank1`].
// lint: no_alloc
pub fn gls_rank1_into(
    a: &Matrix,
    b: &Vector,
    rank1: f64,
    diag: &[f64],
    scratch: &mut LstsqScratch,
    x: &mut Vector,
) -> crate::Result<()> {
    check_system(a, b, "gls_rank1")?;
    let (m, n) = a.shape();
    if diag.len() != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, n),
            right: (diag.len(), 1),
            op: "gls_rank1 diagonal",
        });
    }
    if !rank1.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    // Positive-definiteness of M = rank1·𝟙𝟙ᵀ + D, tested exactly: D ≻ 0
    // entry by entry, then the Sherman–Morrison denominator t > 0.
    let mut inv_sum = 0.0;
    for (i, &d) in diag.iter().enumerate() {
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        inv_sum += 1.0 / d;
    }
    let t = 1.0 + rank1 * inv_sum;
    if t <= 0.0 || !t.is_finite() {
        return Err(LinalgError::NotPositiveDefinite { pivot: m - 1 });
    }
    let gamma = rank1 / t;
    if n == 3 {
        let sol = gls3_rank1_core(a, b, gamma, diag)?;
        x.copy_from_slice(&sol);
        return Ok(());
    }
    gls_rank1_core(a, b, gamma, diag, scratch, x)
}

/// Three-unknown core of [`gls_rank1_into`] (the DLG hot shape): scalar
/// accumulators for `AᵀD⁻¹A`, `AᵀD⁻¹b`, `u = AᵀD⁻¹𝟙` and `s = 𝟙ᵀD⁻¹b`,
/// one rank-one correction, then the same Cramer tail as [`ols3`].
///
/// The statement order here is mirrored exactly by
/// `stack::gls3_rank1`, so the two lanes stay bit-identical.
// lint: no_alloc
fn gls3_rank1_core(a: &Matrix, b: &Vector, gamma: f64, diag: &[f64]) -> crate::Result<[f64; 3]> {
    let m = a.rows();
    // Accumulate AᵀD⁻¹A (symmetric), AᵀD⁻¹b, AᵀD⁻¹𝟙 and 𝟙ᵀD⁻¹b.
    let (mut g00, mut g01, mut g02, mut g11, mut g12, mut g22) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut c0, mut c1, mut c2) = (0.0, 0.0, 0.0);
    let (mut u0, mut u1, mut u2) = (0.0, 0.0, 0.0);
    let mut s = 0.0;
    for r in 0..m {
        let row = a.row(r);
        let (x, y, z) = (row[0], row[1], row[2]);
        let bv = b[r];
        let w = 1.0 / diag[r];
        g00 += x * x * w;
        g01 += x * y * w;
        g02 += x * z * w;
        g11 += y * y * w;
        g12 += y * z * w;
        g22 += z * z * w;
        c0 += x * bv * w;
        c1 += y * bv * w;
        c2 += z * bv * w;
        u0 += x * w;
        u1 += y * w;
        u2 += z * w;
        s += bv * w;
    }
    // Sherman–Morrison rank-one correction: G −= γ·uuᵀ, c −= γ·s·u.
    g00 -= gamma * u0 * u0;
    g01 -= gamma * u0 * u1;
    g02 -= gamma * u0 * u2;
    g11 -= gamma * u1 * u1;
    g12 -= gamma * u1 * u2;
    g22 -= gamma * u2 * u2;
    c0 -= gamma * s * u0;
    c1 -= gamma * s * u1;
    c2 -= gamma * s * u2;
    // On the dense path an accumulation overflow surfaces as NonFinite
    // (ols3 re-checks the whitened system); keep that error surface.
    let finite = [g00, g01, g02, g11, g12, g22, c0, c1, c2]
        .iter()
        .all(|v| v.is_finite());
    if !finite {
        return Err(LinalgError::NonFinite);
    }
    // Cramer's rule on the symmetric 3×3 system (same tail as ols3).
    let det = g00 * (g11 * g22 - g12 * g12) - g01 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * g12 - g11 * g02);
    let scale = [g00, g11, g22].into_iter().fold(0.0f64, f64::max);
    if det.abs() <= 1e-13 * scale * scale * scale.max(f64::MIN_POSITIVE) {
        return Err(LinalgError::Singular);
    }
    let x0 = (c0 * (g11 * g22 - g12 * g12) - g01 * (c1 * g22 - g12 * c2)
        + g02 * (c1 * g12 - g11 * c2))
        / det;
    let x1 = (g00 * (c1 * g22 - c2 * g12) - c0 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * c2 - c1 * g02))
        / det;
    let x2 = (g00 * (g11 * c2 - g12 * c1) - g01 * (g01 * c2 - c1 * g02)
        + c0 * (g01 * g12 - g11 * g02))
        / det;
    Ok([x0, x1, x2])
}

/// General-width core of [`gls_rank1_into`]: the same one-pass assembly
/// with the `n×n` lower-triangle gram in scratch, then Cholesky — the
/// structured analogue of [`ols_core`].
// lint: no_alloc
fn gls_rank1_core(
    a: &Matrix,
    b: &Vector,
    gamma: f64,
    diag: &[f64],
    scratch: &mut LstsqScratch,
    x: &mut Vector,
) -> crate::Result<()> {
    let (m, n) = a.shape();
    let LstsqScratch { gram, rank1_u, .. } = scratch;
    gram.resize_zeroed(n, n);
    rank1_u.resize_zeroed(n);
    x.resize_zeroed(n);
    let mut s = 0.0;
    for r in 0..m {
        let row = a.row(r);
        let bv = b[r];
        let w = 1.0 / diag[r];
        for i in 0..n {
            let ai = row[i];
            x[i] += ai * bv * w;
            rank1_u[i] += ai * w;
            // Lower triangle of AᵀD⁻¹A is all the factorization reads.
            for j in 0..=i {
                gram[(i, j)] += ai * row[j] * w;
            }
        }
        s += bv * w;
    }
    // Sherman–Morrison rank-one correction on the lower triangle.
    for i in 0..n {
        let ui = rank1_u[i];
        for j in 0..=i {
            gram[(i, j)] -= gamma * ui * rank1_u[j];
        }
        x[i] -= gamma * s * ui;
    }
    let mut finite = true;
    for i in 0..n {
        finite &= x[i].is_finite();
        for j in 0..=i {
            finite &= gram[(i, j)].is_finite();
        }
    }
    if !finite {
        return Err(LinalgError::NonFinite);
    }
    Cholesky::factor_in_place(gram)?;
    Cholesky::forward_substitute(gram, x.as_mut_slice())?;
    Cholesky::back_substitute(gram, x.as_mut_slice())
}

/// Residual vector `b − A x` for a candidate solution.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on incompatible shapes.
pub fn residual(a: &Matrix, b: &Vector, x: &Vector) -> crate::Result<Vector> {
    let ax = a.matvec(x)?;
    b.check_same_len(&ax, "residual")?;
    Ok(b - &ax)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall_system() -> (Matrix, Vector) {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0],
            &[2.0, -1.0, 1.0],
            &[0.5, 0.5, 2.0],
        ])
        .unwrap();
        let x_true = Vector::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.matvec(&x_true).unwrap();
        (a, b)
    }

    #[test]
    fn ols_recovers_exact_solution() {
        let (a, b) = tall_system();
        let x = ols(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn ols3_agrees_with_general_ols() {
        let (a, mut b) = tall_system();
        b[0] += 0.7;
        b[2] -= 1.3;
        let general = ols(&a, &b).unwrap();
        let fast = ols3(&a, &b).unwrap();
        for k in 0..3 {
            assert!((fast[k] - general[k]).abs() < 1e-9, "x[{k}]");
        }
    }

    #[test]
    fn ols3_rejects_wrong_width_and_singular() {
        let a2 = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert!(matches!(
            ols3(&a2, &Vector::zeros(3)).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        // Rank-deficient: second column is twice the first.
        let dep = Matrix::from_fn(4, 3, |r, c| match c {
            0 => (r + 1) as f64,
            1 => 2.0 * (r + 1) as f64,
            _ => (r * r) as f64,
        });
        assert_eq!(
            ols3(&dep, &Vector::zeros(4)).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn ols_qr_agrees_with_ols() {
        let (a, mut b) = tall_system();
        // Perturb so the system is inconsistent.
        b[0] += 0.7;
        b[3] -= 0.3;
        let x1 = ols(&a, &b).unwrap();
        let x2 = ols_qr(&a, &b).unwrap();
        assert!((&x1 - &x2).norm_inf() < 1e-9);
    }

    #[test]
    fn ols_residual_is_orthogonal_to_columns() {
        let (a, mut b) = tall_system();
        b[1] += 1.0;
        let x = ols(&a, &b).unwrap();
        let r = residual(&a, &b, &x).unwrap();
        let atr = a.transpose_matvec(&r).unwrap();
        assert!(atr.norm_inf() < 1e-9, "Aᵀr = {atr:?}");
    }

    #[test]
    fn gls_with_identity_equals_ols() {
        let (a, mut b) = tall_system();
        b[2] -= 0.5;
        let x_ols = ols(&a, &b).unwrap();
        let x_gls = gls(&a, &b, &Matrix::identity(5)).unwrap();
        assert!((&x_ols - &x_gls).norm_inf() < 1e-10);
    }

    #[test]
    fn gls_explicit_matches_whitened() {
        let (a, mut b) = tall_system();
        b[0] += 2.0;
        // A valid SPD covariance with correlation, like the paper's Ψ.
        let m = Matrix::from_fn(5, 5, |r, c| if r == c { 2.0 } else { 1.0 });
        let x1 = gls(&a, &b, &m).unwrap();
        let x2 = gls_explicit_inverse(&a, &b, &m).unwrap();
        assert!((&x1 - &x2).norm_inf() < 1e-9);
    }

    #[test]
    fn wls_equals_gls_with_diagonal_covariance() {
        let (a, mut b) = tall_system();
        b[4] += 1.5;
        let weights = [1.0, 2.0, 0.5, 4.0, 1.0];
        let x_wls = wls(&a, &b, &weights).unwrap();
        let m = Matrix::from_diagonal(&weights.map(|w| 1.0 / w));
        let x_gls = gls(&a, &b, &m).unwrap();
        assert!((&x_wls - &x_gls).norm_inf() < 1e-9);
    }

    #[test]
    fn wls_downweights_outlier() {
        // y = const model; one wild observation with tiny weight.
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        let b = Vector::from_slice(&[10.0, 10.0, 1000.0]);
        let x = wls(&a, &b, &[1.0, 1.0, 1e-9]).unwrap();
        assert!((x[0] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn wls_rejects_bad_weights() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let b = Vector::zeros(2);
        assert!(wls(&a, &b, &[1.0]).is_err());
        assert!(wls(&a, &b, &[1.0, 0.0]).is_err());
        assert!(wls(&a, &b, &[1.0, -1.0]).is_err());
        assert!(wls(&a, &b, &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn gls_is_blue_for_correlated_noise() {
        // With strongly correlated errors, GLS with the true covariance must
        // not do worse (in exact arithmetic, on average) — here we check the
        // deterministic property that GLS reproduces an exact solution and
        // differs from OLS on an inconsistent one.
        let (a, mut b) = tall_system();
        let m = Matrix::from_fn(5, 5, |r, c| if r == c { 3.0 } else { 2.0 });
        let x_exact = gls(&a, &b, &m).unwrap();
        assert!((x_exact[2] - 3.0).abs() < 1e-9);
        b[0] += 1.0;
        let x_gls = gls(&a, &b, &m).unwrap();
        let x_ols = ols(&a, &b).unwrap();
        assert!((&x_gls - &x_ols).norm_inf() > 1e-6);
    }

    #[test]
    fn solvers_reject_underdetermined() {
        let a = Matrix::zeros(2, 3);
        let b = Vector::zeros(2);
        assert!(matches!(
            ols(&a, &b).unwrap_err(),
            LinalgError::Underdetermined { .. }
        ));
        assert!(ols_qr(&a, &b).is_err());
        assert!(gls(&a, &b, &Matrix::identity(2)).is_err());
    }

    #[test]
    fn solvers_reject_shape_mismatch_and_nonfinite() {
        let a = Matrix::identity(3);
        assert!(ols(&a, &Vector::zeros(2)).is_err());
        let b = Vector::from_slice(&[1.0, f64::NAN, 0.0]);
        assert_eq!(ols(&a, &b).unwrap_err(), LinalgError::NonFinite);
        // Covariance of wrong size.
        assert!(gls(&a, &Vector::zeros(3), &Matrix::identity(2)).is_err());
        assert!(gls_explicit_inverse(&a, &Vector::zeros(3), &Matrix::identity(2)).is_err());
    }

    #[test]
    fn into_variants_match_allocating_paths_across_reuse() {
        // One scratch reused across different shapes and estimators must
        // reproduce the allocating entry points exactly.
        let mut scratch = LstsqScratch::new();
        let mut x = Vector::default();

        let (a, mut b) = tall_system();
        b[0] += 0.7;
        ols_into(&a, &b, &mut scratch, &mut x).unwrap();
        assert!((&x - &ols(&a, &b).unwrap()).norm_inf() == 0.0);

        // Wider system (4 columns) takes the normal-equations path.
        let a4 = Matrix::from_fn(6, 4, |r, c| {
            ((r * 7 + c * 3) % 5) as f64 + if r == c { 4.0 } else { 0.0 }
        });
        let b4 = Vector::from_fn(6, |r| r as f64 - 2.0);
        ols_into(&a4, &b4, &mut scratch, &mut x).unwrap();
        assert!((&x - &ols(&a4, &b4).unwrap()).norm_inf() == 0.0);

        let weights = [1.0, 2.0, 0.5, 4.0, 1.0];
        wls_into(&a, &b, &weights, &mut scratch, &mut x).unwrap();
        assert!((&x - &wls(&a, &b, &weights).unwrap()).norm_inf() == 0.0);

        let m = Matrix::from_fn(5, 5, |r, c| if r == c { 2.0 } else { 1.0 });
        gls_into(&a, &b, &m, GlsStrategy::Whitened, &mut scratch, &mut x).unwrap();
        assert!((&x - &gls(&a, &b, &m).unwrap()).norm_inf() == 0.0);
        gls_into(
            &a,
            &b,
            &m,
            GlsStrategy::ExplicitInverse,
            &mut scratch,
            &mut x,
        )
        .unwrap();
        assert!((&x - &gls_explicit_inverse(&a, &b, &m).unwrap()).norm_inf() == 0.0);
    }

    #[test]
    fn gls_with_strategies_agree() {
        let (a, mut b) = tall_system();
        b[1] -= 0.4;
        let m = Matrix::from_fn(5, 5, |r, c| if r == c { 3.0 } else { 2.0 });
        let x1 = gls_with(&a, &b, &m, GlsStrategy::Whitened).unwrap();
        let x2 = gls_with(&a, &b, &m, GlsStrategy::ExplicitInverse).unwrap();
        assert!((&x1 - &x2).norm_inf() < 1e-9);
        assert_eq!(GlsStrategy::default(), GlsStrategy::Whitened);
    }

    #[test]
    fn into_variants_propagate_errors() {
        let mut scratch = LstsqScratch::new();
        let mut x = Vector::default();
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            ols_into(&a, &Vector::zeros(2), &mut scratch, &mut x).unwrap_err(),
            LinalgError::Underdetermined { .. }
        ));
        let id = Matrix::identity(3);
        assert!(matches!(
            wls_into(
                &id,
                &Vector::zeros(3),
                &[1.0, -1.0, 1.0],
                &mut scratch,
                &mut x
            )
            .unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 0 }
        ));
        assert!(matches!(
            gls_into(
                &id,
                &Vector::zeros(3),
                &Matrix::identity(2),
                GlsStrategy::Whitened,
                &mut scratch,
                &mut x
            )
            .unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    /// Dense rank-one-plus-diagonal covariance for cross-checking.
    fn rank1_dense(rank1: f64, diag: &[f64]) -> Matrix {
        Matrix::from_fn(diag.len(), diag.len(), |r, c| {
            rank1 + if r == c { diag[r] } else { 0.0 }
        })
    }

    #[test]
    fn gls_rank1_matches_dense_gls() {
        let (a, mut b) = tall_system();
        b[0] += 2.0;
        b[3] -= 0.9;
        let diag = [1.0, 2.5, 0.7, 4.0, 1.3];
        for rank1 in [0.0, 0.8, 3.0, -0.1] {
            let dense = gls(&a, &b, &rank1_dense(rank1, &diag)).unwrap();
            let fast = gls_rank1(&a, &b, rank1, &diag).unwrap();
            assert!(
                (&dense - &fast).norm_inf() < 1e-9,
                "rank1={rank1}: {:?}",
                (&dense - &fast).norm_inf()
            );
        }
    }

    #[test]
    fn gls_rank1_general_width_matches_dense_gls() {
        // 4-column system exercises the gram/Cholesky core, not Cramer.
        let a4 = Matrix::from_fn(7, 4, |r, c| {
            ((r * 5 + c * 3) % 7) as f64 + if r == c { 5.0 } else { 0.0 }
        });
        let b4 = Vector::from_fn(7, |r| r as f64 - 3.0);
        let diag: Vec<f64> = (0..7).map(|i| 0.5 + 0.3 * i as f64).collect();
        let dense = gls(&a4, &b4, &rank1_dense(1.7, &diag)).unwrap();
        let fast = gls_rank1(&a4, &b4, 1.7, &diag).unwrap();
        assert!((&dense - &fast).norm_inf() < 1e-9);
    }

    #[test]
    fn gls_rank1_zero_rank1_unit_diag_is_bit_identical_to_ols() {
        // γ = 0 and w = 1 leave every accumulator product untouched, so
        // the structured kernel degenerates to ols3 bit-for-bit.
        let (a, mut b) = tall_system();
        b[2] += 0.3;
        let via_ols = ols3(&a, &b).unwrap();
        let via_rank1 = gls_rank1(&a, &b, 0.0, &[1.0; 5]).unwrap();
        for k in 0..3 {
            assert_eq!(via_rank1[k].to_bits(), via_ols[k].to_bits(), "x[{k}]");
        }
    }

    #[test]
    fn gls_rank1_into_matches_allocating_path_across_reuse() {
        let mut scratch = LstsqScratch::new();
        let mut x = Vector::default();
        let (a, mut b) = tall_system();
        b[1] -= 1.1;
        let diag = [2.0, 1.0, 3.0, 0.5, 1.5];
        gls_rank1_into(&a, &b, 0.6, &diag, &mut scratch, &mut x).unwrap();
        assert!((&x - &gls_rank1(&a, &b, 0.6, &diag).unwrap()).norm_inf() == 0.0);
        // Reuse the same scratch on a wider system.
        let a4 = Matrix::from_fn(6, 4, |r, c| {
            ((r * 7 + c * 3) % 5) as f64 + if r == c { 4.0 } else { 0.0 }
        });
        let b4 = Vector::from_fn(6, |r| r as f64 - 2.0);
        let diag4 = [1.0, 2.0, 1.0, 3.0, 1.0, 2.0];
        gls_rank1_into(&a4, &b4, 0.4, &diag4, &mut scratch, &mut x).unwrap();
        assert!((&x - &gls_rank1(&a4, &b4, 0.4, &diag4).unwrap()).norm_inf() == 0.0);
    }

    #[test]
    fn gls_rank1_rejects_degenerate_input() {
        let (a, b) = tall_system();
        // Wrong diagonal length.
        assert!(matches!(
            gls_rank1(&a, &b, 1.0, &[1.0; 4]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        // Non-finite rank-one weight.
        assert_eq!(
            gls_rank1(&a, &b, f64::NAN, &[1.0; 5]).unwrap_err(),
            LinalgError::NonFinite
        );
        // A non-positive diagonal entry pinpoints its index.
        assert_eq!(
            gls_rank1(&a, &b, 1.0, &[1.0, 1.0, 0.0, 1.0, 1.0]).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 2 }
        );
        assert_eq!(
            gls_rank1(&a, &b, 1.0, &[1.0, 1.0, 1.0, f64::NAN, 1.0]).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 3 }
        );
        // Sherman–Morrison denominator t = 1 + rank1·Σ(1/dᵢ) ≤ 0: the
        // matrix is indefinite even though every diagonal entry is fine.
        // Here Σ(1/dᵢ) = 5, so rank1 = -0.25 gives t = -0.25.
        let err = gls_rank1(&a, &b, -0.25, &[1.0; 5]).unwrap_err();
        assert_eq!(err, LinalgError::NotPositiveDefinite { pivot: 4 });
        // The dense path agrees the matrix is not PD.
        assert!(matches!(
            gls(&a, &b, &rank1_dense(-0.25, &[1.0; 5])).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
        // Underdetermined surfaces before any covariance checks.
        assert!(matches!(
            gls_rank1(&Matrix::zeros(2, 3), &Vector::zeros(2), 1.0, &[1.0; 2]).unwrap_err(),
            LinalgError::Underdetermined { .. }
        ));
    }

    #[test]
    fn gls_rejects_indefinite_covariance() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let b = Vector::zeros(2);
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            gls(&a, &b, &m).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }
}
