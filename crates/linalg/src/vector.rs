use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::LinalgError;

/// A dense column vector of `f64` entries.
///
/// `Vector` is the right-hand-side / solution type for the solvers in this
/// crate. It supports element access by `[]`, the usual arithmetic
/// operators, dot products and norms.
///
/// # Example
///
/// ```
/// use gps_linalg::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.dot(&v), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    ///
    /// # Example
    ///
    /// ```
    /// use gps_linalg::Vector;
    /// let v = Vector::zeros(3);
    /// assert_eq!(v.len(), 3);
    /// assert_eq!(v[1], 0.0);
    /// ```
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector by copying `data`.
    #[must_use]
    pub fn from_slice(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }

    /// Creates a vector of length `n` from a function of the index.
    ///
    /// # Example
    ///
    /// ```
    /// use gps_linalg::Vector;
    /// let v = Vector::from_fn(3, |i| i as f64 * 2.0);
    /// assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0]);
    /// ```
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Resizes the vector in place to `n` entries, all set to zero.
    ///
    /// Reuses the existing heap allocation whenever its capacity suffices,
    /// so resizing a scratch vector inside a hot loop is allocation-free
    /// after warm-up.
    pub fn resize_zeroed(&mut self, n: usize) {
        self.data.clear();
        self.data.resize(n, 0.0);
    }

    /// Makes `self` an entry-for-entry copy of `other`, resizing as needed.
    ///
    /// Reuses the existing allocation when possible (see
    /// [`Vector::resize_zeroed`]).
    pub fn copy_from(&mut self, other: &Vector) {
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Makes `self` an entry-for-entry copy of `slice`, resizing as needed.
    pub fn copy_from_slice(&mut self, slice: &[f64]) {
        self.data.clear();
        self.data.extend_from_slice(slice);
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the entries as a slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns `true` if every entry is finite (no NaN / ±∞).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm. Cheaper than [`Vector::norm`] when the square
    /// is what is needed (e.g. sum of squared residuals, paper eq. 3-32).
    #[must_use]
    pub fn norm_squared(&self) -> f64 {
        self.dot(self)
    }

    /// Maximum absolute entry (L∞ norm). Returns 0 for an empty vector.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Returns a scaled copy `s * self`.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Checks that two vectors have the same length, for fallible APIs.
    pub(crate) fn check_same_len(&self, other: &Vector, op: &'static str) -> crate::Result<()> {
        if self.len() == other.len() {
            Ok(())
        } else {
            Err(LinalgError::ShapeMismatch {
                left: (self.len(), 1),
                right: (other.len(), 1),
                op,
            })
        }
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let v = Vector::from_fn(5, |i| (i * i) as f64);
        assert_eq!(v.as_slice(), &[0.0, 1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn dot_and_norms() {
        let v = Vector::from_slice(&[1.0, -2.0, 2.0]);
        assert_eq!(v.dot(&v), 9.0);
        assert_eq!(v.norm(), 3.0);
        assert_eq!(v.norm_squared(), 9.0);
        assert_eq!(v.norm_inf(), 2.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_length_mismatch_panics() {
        let _ = &Vector::zeros(2) + &Vector::zeros(3);
    }

    #[test]
    fn finite_detection() {
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Vector::from_slice(&[1.0, f64::NAN]).is_finite());
        assert!(!Vector::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn indexing_and_mutation() {
        let mut v = Vector::zeros(2);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        v.as_mut_slice()[0] = 3.0;
        assert_eq!(v.into_vec(), vec![3.0, 7.0]);
    }

    #[test]
    fn collect_from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let total: f64 = (&v).into_iter().sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn display_contains_entries() {
        let v = Vector::from_slice(&[1.5]);
        assert_eq!(v.to_string(), "[1.500000]");
    }
}
