use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{LinalgError, Vector};

/// A dense, row-major matrix of `f64` entries.
///
/// This is the workhorse type of the crate: the design matrix `A` of the
/// paper's eq. 4-9, the Jacobian of the Newton–Raphson iteration
/// (eq. 3-29), and the covariance `M` of eq. 4-22 are all `Matrix` values.
///
/// # Example
///
/// ```
/// use gps_linalg::Matrix;
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Row-major storage: entry `(r, c)` lives at `r * cols + c`.
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Example
    ///
    /// ```
    /// use gps_linalg::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(1, 1)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::EmptyDimension`] if `rows` is empty or the
    /// first row is empty, and [`LinalgError::ShapeMismatch`] if rows have
    /// differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> crate::Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::EmptyDimension);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    left: (1, cols),
                    right: (1, row.len()),
                    op: "from_rows",
                });
            }
            let _ = i;
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a function of `(row, col)`.
    ///
    /// # Example
    ///
    /// ```
    /// use gps_linalg::Matrix;
    /// // Hilbert-like matrix.
    /// let h = Matrix::from_fn(2, 2, |r, c| 1.0 / (r + c + 1) as f64);
    /// assert_eq!(h[(1, 1)], 1.0 / 3.0);
    /// ```
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Reshapes the matrix in place to `rows × cols` with every entry set
    /// to zero.
    ///
    /// Unlike [`Matrix::zeros`], the existing heap allocation is reused
    /// whenever its capacity suffices, so resizing a scratch matrix inside
    /// a hot loop is allocation-free after warm-up.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an entry-for-entry copy of `other`, reshaping as
    /// needed.
    ///
    /// Reuses the existing allocation when possible (see
    /// [`Matrix::resize_zeroed`]).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns `true` if every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` if the matrix is symmetric within `tol` (absolute).
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        Vector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix × matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> crate::Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(r);
                for c in 0..rhs.cols {
                    out_row[c] += a * rhs_row[c];
                }
            }
        }
        Ok(out)
    }

    /// Matrix × vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &Vector) -> crate::Result<Vector> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok(Vector::from_fn(self.rows, |r| {
            self.row(r)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        }))
    }

    /// Computes `Aᵀ A` (the normal-equations Gram matrix) without forming
    /// the transpose explicitly. The result is symmetric positive
    /// semi-definite.
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in (i + 1)..n {
                g[(j, i)] = g[(i, j)];
            }
        }
        g
    }

    /// Computes `Aᵀ v` without forming the transpose explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows() != v.len()`.
    pub fn transpose_matvec(&self, v: &Vector) -> crate::Result<Vector> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "transpose_matvec",
            });
        }
        let mut out = Vector::zeros(self.cols);
        for r in 0..self.rows {
            let s = v[r];
            if s == 0.0 {
                continue;
            }
            let row = self.row(r);
            for c in 0..self.cols {
                out[c] += s * row[c];
            }
        }
        Ok(out)
    }

    /// Scales every entry by `s`, returning a new matrix.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm (square root of the sum of squared entries).
    #[must_use]
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    #[must_use]
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Infinity norm: maximum absolute row sum.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] for singular input.
    pub fn inverse(&self) -> crate::Result<Matrix> {
        crate::LuDecomposition::new(self)?.inverse()
    }

    /// Determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn determinant(&self) -> crate::Result<f64> {
        match crate::LuDecomposition::new(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

/// The default matrix is empty (`0 × 0`) — a convenient initial value for
/// reusable scratch buffers that are reshaped on first use.
impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat2() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = mat2();
        assert_eq!(m.shape(), (2, 2));
        assert!(m.is_square());
        assert_eq!(m[(1, 0)], 3.0);
        assert!(Matrix::zeros(2, 3).row(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_rejects_bad_input() {
        assert_eq!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::EmptyDimension
        );
        assert!(matches!(
            Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = mat2();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = mat2();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn matvec_known_product() {
        let m = mat2();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.matvec(&v).unwrap().as_slice(), &[3.0, 7.0]);
        assert!(m.matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn gram_equals_explicit_ata() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let explicit = a.transpose().matmul(&a).unwrap();
        let g = a.gram();
        assert_eq!(g, explicit);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn transpose_matvec_equals_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let v = Vector::from_slice(&[1.0, -1.0, 2.0]);
        let explicit = a.transpose().matvec(&v).unwrap();
        assert_eq!(a.transpose_matvec(&v).unwrap(), explicit);
        assert!(a.transpose_matvec(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert_eq!(m.norm_frobenius(), 5.0);
        assert_eq!(m.norm_max(), 4.0);
        assert_eq!(m.norm_inf(), 4.0);
    }

    #[test]
    fn swap_rows_works_both_orders() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(2, 0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = mat2();
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = mat2();
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(1, 1)], 3.0);
        assert_eq!((&a * 2.0)[(1, 0)], 6.0);
    }

    #[test]
    fn finite_detection() {
        assert!(mat2().is_finite());
        let mut m = mat2();
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}
