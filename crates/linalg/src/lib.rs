//! From-scratch dense linear algebra for the GPS reproduction.
//!
//! The ICDCS 2010 paper's algorithms reduce to a handful of dense linear
//! algebra primitives on small matrices (a few rows per visible satellite):
//!
//! * the Newton–Raphson baseline solves an over-determined `m × 4` system by
//!   **ordinary least squares** at every iteration (paper eq. 3-26/3-28);
//! * algorithm **DLO** solves one `(m−1) × 3` system by OLS (eq. 4-12);
//! * algorithm **DLG** solves the same system by **general least squares**
//!   with a non-diagonal covariance (eq. 4-21), which needs a symmetric
//!   positive-definite solve (Cholesky).
//!
//! This crate provides exactly those primitives, built from scratch and
//! property-tested: a dense row-major [`Matrix`], a dense [`Vector`],
//! [`LuDecomposition`] with partial pivoting, [`Cholesky`], Householder
//! [`QrDecomposition`], and the high-level [`lstsq`] solvers
//! ([`lstsq::ols`], [`lstsq::wls`], [`lstsq::gls`]).
//!
//! # Example
//!
//! ```
//! use gps_linalg::{Matrix, Vector, lstsq};
//!
//! # fn main() -> Result<(), gps_linalg::LinalgError> {
//! // Fit y = 2x + 1 from three samples.
//! let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
//! let y = Vector::from_slice(&[1.0, 3.0, 5.0]);
//! let beta = lstsq::ols(&a, &y)?;
//! assert!((beta[0] - 2.0).abs() < 1e-12);
//! assert!((beta[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cholesky;
mod eigen;
mod error;
pub mod lstsq;
mod lu;
mod matrix;
mod qr;
pub mod stack;
mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use stack::{SMat, SVec, STACK_M_CAP};
pub use vector::Vector;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
