use crate::{LinalgError, Matrix, Vector};

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// The decomposition is computed once and can then solve any number of
/// right-hand sides, compute the inverse, or the determinant. This is the
/// general-purpose square solver used by the Newton–Raphson baseline when
/// the system is exactly determined (`m = 4` satellites, paper eq. 3-26) and
/// by the GLS path to apply `M⁻¹` (paper eq. 4-21).
///
/// # Example
///
/// ```
/// use gps_linalg::{LuDecomposition, Matrix, Vector};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&Vector::from_slice(&[3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: strictly-lower part holds L (unit diagonal
    /// implied), upper part (incl. diagonal) holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by the determinant.
    perm_sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_TOL: f64 = 1e-13;

impl LuDecomposition {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::EmptyDimension`] if `a` is 0×0.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let scale = a.norm_max().max(f64::MIN_POSITIVE);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k (rows
            // k..n) to the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= SINGULARITY_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let u = lu[(k, c)];
                    lu[(r, c)] -= factor * u;
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> crate::Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu solve",
            });
        }
        // Apply permutation, then forward-substitute L y = P b.
        let mut y = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 1..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Back-substitute U x = y.
        let mut x = y;
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side (column by column).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> crate::Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "lu solve_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let x = self.solve(&b.col(c))?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve_matrix`]; in practice
    /// this cannot fail for a successfully constructed decomposition.
    pub fn inverse(&self) -> crate::Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix (product of U's diagonal times the
    /// permutation sign).
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Rough reciprocal condition estimate `1 / (‖A‖∞ · ‖A⁻¹‖∞)`.
    ///
    /// Useful to detect near-degenerate satellite geometry before trusting a
    /// solution.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::inverse`].
    pub fn rcond_estimate(&self, a: &Matrix) -> crate::Result<f64> {
        let inv = self.inverse()?;
        let denom = a.norm_inf() * inv.norm_inf();
        Ok(if denom == 0.0 { 0.0 } else { 1.0 / denom })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: &Matrix, b: &Vector) -> Vector {
        LuDecomposition::new(a).unwrap().solve(b).unwrap()
    }

    #[test]
    fn solves_known_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]).unwrap();
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        let x = solve(&a, &b);
        // Verify A x == b.
        let r = &a.matvec(&x).unwrap() - &b;
        assert!(r.norm_inf() < 1e-12, "residual {}", r.norm_inf());
        assert!((x[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = solve(&a, &b);
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_non_square_empty_nonfinite() {
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert_eq!(
            LuDecomposition::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::EmptyDimension
        );
        let mut m = Matrix::identity(2);
        m[(0, 0)] = f64::NAN;
        assert_eq!(
            LuDecomposition::new(&m).unwrap_err(),
            LinalgError::NonFinite
        );
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!((det - (-14.0)).abs() < 1e-12);
        // Identity has determinant one.
        let i = Matrix::identity(5);
        assert!((LuDecomposition::new(&i).unwrap().determinant() - 1.0).abs() < 1e-15);
        // Permutation sign: swapping two rows of I gives -1.
        let mut p = Matrix::identity(3);
        p.swap_rows(0, 2);
        assert!((LuDecomposition::new(&p).unwrap().determinant() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn matrix_determinant_of_singular_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = (&prod - &Matrix::identity(2)).norm_max();
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[5.0, 10.0]]).unwrap();
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert_eq!(x, Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap());
    }

    #[test]
    fn solve_shape_mismatch() {
        let lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&Vector::zeros(3)).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn rcond_estimate_sane() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        let rc = lu.rcond_estimate(&a).unwrap();
        assert!((rc - 1.0).abs() < 1e-12);
        // Ill-conditioned matrix has small rcond.
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-10]]).unwrap();
        let lub = LuDecomposition::new(&b).unwrap();
        assert!(lub.rcond_estimate(&b).unwrap() < 1e-8);
    }
}
