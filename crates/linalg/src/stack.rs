//! Stack-allocated const-generic kernels for the hot solve shapes.
//!
//! The paper's positioning systems are tiny — `m ≤ ~12` pseudorange rows,
//! 3–4 unknowns — so the general heap-backed [`crate::Matrix`] path spends
//! a measurable share of every fix on pointer chasing and runtime-dimension
//! bookkeeping. This module provides the same least-squares kernels on
//! fixed-capacity, `Copy`, stack-resident types:
//!
//! * [`SMat<M, N>`] / [`SVec<N>`] — `M`/`N` are **capacities**; the active
//!   row count is a runtime field bounded by the capacity, so one
//!   monomorphization (capacity [`STACK_M_CAP`]) serves every satellite
//!   count the solvers meet.
//! * [`ols3`] / [`ols4`] — normal-equation OLS for the two hot column
//!   counts (direct linearization: 3 unknowns; NR/Bancroft: 4).
//! * [`wls4`] — row-scaled weighted least squares (NR elevation weighting).
//! * [`gls3`] — whitened general least squares (DLG's correlated Ψ).
//! * [`gls3_rank1`] — structured general least squares for the
//!   rank-one-plus-diagonal Ψ via Sherman–Morrison (DLG's `O(m)` lane;
//!   no covariance matrix is built at all).
//! * [`cholesky_factor`] and the substitution kernels underneath them.
//!
//! # Bit-for-bit parity with the heap path
//!
//! Every kernel here performs **the same floating-point operations in the
//! same order** as its heap counterpart in [`crate::lstsq`] /
//! [`crate::Cholesky`] ([`ols3`] mirrors `lstsq::ols3`, [`ols4`] mirrors
//! `ols_into`'s gram + Cholesky chain, [`wls4`] mirrors `wls_into`,
//! [`gls3`] mirrors `gls_into` with [`crate::lstsq::GlsStrategy::Whitened`]).
//! IEEE-754 arithmetic is deterministic, so on identical inputs the stack
//! and heap lanes return bit-identical results and identical errors — a
//! property pinned by the `stack_parity` test suite and relied on by
//! `gps-core`'s solver dispatch (stack lane under the m-cap, heap lane
//! above it, callers can't tell which one ran).

use crate::LinalgError;

/// Maximum row count (satellites) the stack kernels accept. Epochs with
/// more measurements take the heap lane; the cap is sized so a full
/// [`SMat<STACK_M_CAP, 4>`] plus the DLG covariance stay comfortably
/// within a couple of KiB of stack.
pub const STACK_M_CAP: usize = 16;

/// Fixed-capacity row-major matrix: `M` rows × `N` columns of storage,
/// with a runtime active-row count `rows ≤ M`. Columns are always fully
/// active (the hot shapes have exactly 3 or 4 columns, so the column
/// capacity *is* the column count).
///
/// `Copy`: ≤ `16 × 16 × 8` bytes at the largest instantiation used by the
/// solvers, cheap to pass by value and trivially reusable without any
/// warm-up allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SMat<const M: usize, const N: usize> {
    rows: usize,
    data: [[f64; N]; M],
}

impl<const M: usize, const N: usize> SMat<M, N> {
    /// A zeroed matrix with `rows` active rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows > M` (capacity overflow is a caller bug; the
    /// solvers gate on [`STACK_M_CAP`] before building one).
    #[must_use]
    pub fn zeroed(rows: usize) -> Self {
        assert!(rows <= M, "SMat: {rows} rows exceed capacity {M}");
        SMat {
            rows,
            data: [[0.0; N]; M],
        }
    }

    /// Number of active rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (always the full capacity `N`).
    #[must_use]
    pub fn cols(&self) -> usize {
        N
    }

    /// Borrows active row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64; N] {
        assert!(r < self.rows, "SMat: row {r} out of {} active", self.rows);
        &self.data[r]
    }

    /// Mutably borrows active row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64; N] {
        assert!(r < self.rows, "SMat: row {r} out of {} active", self.rows);
        &mut self.data[r]
    }

    /// Borrows the active rows as a slice (bounds-check-free iteration).
    #[must_use]
    pub fn active_rows(&self) -> &[[f64; N]] {
        &self.data[..self.rows]
    }
}

/// Fixed-capacity vector: `N` slots of storage with a runtime active
/// length `len ≤ N`. The stack counterpart of [`crate::Vector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SVec<const N: usize> {
    len: usize,
    data: [f64; N],
}

impl<const N: usize> SVec<N> {
    /// A zeroed vector with `len` active entries.
    ///
    /// # Panics
    ///
    /// Panics if `len > N`.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        assert!(len <= N, "SVec: length {len} exceeds capacity {N}");
        SVec {
            len,
            data: [0.0; N],
        }
    }

    /// Number of active entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no entries are active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the active entries.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data[..self.len]
    }

    /// Mutably borrows the active entries.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data[..self.len]
    }
}

/// Mirror of `lstsq::check_system` on the stack types: same checks, same
/// order, same error values, so the two lanes reject identical inputs
/// identically.
fn check_kernel<const M: usize, const N: usize>(
    a: &SMat<M, N>,
    b: &SVec<M>,
    op: &'static str,
) -> crate::Result<()> {
    let (m, n) = (a.rows, N);
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyDimension);
    }
    if m < n {
        return Err(LinalgError::Underdetermined { rows: m, cols: n });
    }
    if b.len != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, n),
            right: (b.len, 1),
            op,
        });
    }
    let finite_a = a
        .active_rows()
        .iter()
        .all(|row| row.iter().all(|v| v.is_finite()));
    let finite_b = b.as_slice().iter().all(|v| v.is_finite());
    if !finite_a || !finite_b {
        return Err(LinalgError::NonFinite);
    }
    Ok(())
}

/// Stack mirror of [`crate::lstsq::ols3`]: 3-unknown OLS through scalar
/// normal-equation accumulators and Cramer's rule. Bit-identical results
/// and errors on identical inputs.
///
/// # Errors
///
/// Same conditions as [`crate::lstsq::ols3`] ([`LinalgError::Singular`]
/// for rank-deficient geometry).
// lint: no_alloc
pub fn ols3<const M: usize>(a: &SMat<M, 3>, b: &SVec<M>) -> crate::Result<[f64; 3]> {
    check_kernel(a, b, "ols3")?;
    // Accumulate AᵀA (symmetric) and Aᵀb — the same statement order as the
    // heap kernel, so every rounding step matches.
    let (mut g00, mut g01, mut g02, mut g11, mut g12, mut g22) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut c0, mut c1, mut c2) = (0.0, 0.0, 0.0);
    for (row, &w) in a.active_rows().iter().zip(b.as_slice()) {
        let (x, y, z) = (row[0], row[1], row[2]);
        g00 += x * x;
        g01 += x * y;
        g02 += x * z;
        g11 += y * y;
        g12 += y * z;
        g22 += z * z;
        c0 += x * w;
        c1 += y * w;
        c2 += z * w;
    }
    // Cramer's rule on the symmetric 3×3 system.
    let det = g00 * (g11 * g22 - g12 * g12) - g01 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * g12 - g11 * g02);
    let scale = [g00, g11, g22].into_iter().fold(0.0f64, f64::max);
    if det.abs() <= 1e-13 * scale * scale * scale.max(f64::MIN_POSITIVE) {
        return Err(LinalgError::Singular);
    }
    let x0 = (c0 * (g11 * g22 - g12 * g12) - g01 * (c1 * g22 - g12 * c2)
        + g02 * (c1 * g12 - g11 * c2))
        / det;
    let x1 = (g00 * (c1 * g22 - c2 * g12) - c0 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * c2 - c1 * g02))
        / det;
    let x2 = (g00 * (g11 * c2 - g12 * c1) - g01 * (g01 * c2 - c1 * g02)
        + c0 * (g01 * g12 - g11 * g02))
        / det;
    Ok([x0, x1, x2])
}

/// Stack mirror of `lstsq::ols_core` for 4 unknowns: forms the 4×4 normal
/// equations (lower triangle) and `Aᵀb`, then factors and substitutes via
/// the stack Cholesky kernels — the exact operation sequence of the heap
/// `ols_into` path at `n = 4`.
// lint: no_alloc
fn ols4_core<const M: usize>(a: &SMat<M, 4>, b: &SVec<M>) -> crate::Result<[f64; 4]> {
    let mut gram = SMat::<4, 4>::zeroed(4);
    let mut x = [0.0f64; 4];
    for (row, &bv) in a.active_rows().iter().zip(b.as_slice()) {
        for i in 0..4 {
            let ai = row[i];
            x[i] += ai * bv;
            // Lower triangle of AᵀA is all the factorization reads.
            for (gij, &rj) in gram.data[i][..=i].iter_mut().zip(row) {
                *gij += ai * rj;
            }
        }
    }
    cholesky_factor(&mut gram)?;
    cholesky_forward(&gram, &mut x);
    cholesky_back(&gram, &mut x);
    Ok(x)
}

/// Stack mirror of [`crate::lstsq::ols_into`] for the 4-unknown shape
/// (NR Jacobian and Bancroft `B`). Bit-identical results and errors on
/// identical inputs.
///
/// # Errors
///
/// Same conditions as [`crate::lstsq::ols`]
/// ([`LinalgError::NotPositiveDefinite`] for rank-deficient geometry).
// lint: no_alloc
pub fn ols4<const M: usize>(a: &SMat<M, 4>, b: &SVec<M>) -> crate::Result<[f64; 4]> {
    check_kernel(a, b, "ols")?;
    ols4_core(a, b)
}

/// Stack mirror of [`crate::lstsq::wls_into`] for the 4-unknown shape:
/// scales each row of `A` and entry of `b` by `√wᵢ`, then runs the OLS
/// core. Bit-identical results and errors on identical inputs.
///
/// # Errors
///
/// Same conditions as [`crate::lstsq::wls`]: non-positive or non-finite
/// weights surface as [`LinalgError::NotPositiveDefinite`] (pivot 0), a
/// weight-count mismatch as [`LinalgError::ShapeMismatch`].
// lint: no_alloc
pub fn wls4<const M: usize>(
    a: &SMat<M, 4>,
    b: &SVec<M>,
    weights: &[f64],
) -> crate::Result<[f64; 4]> {
    check_kernel(a, b, "wls")?;
    let m = a.rows;
    if weights.len() != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, 4),
            right: (weights.len(), 1),
            op: "wls weights",
        });
    }
    if weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
        return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
    }
    // Scale each row of A and entry of b by sqrt(w), then run OLS.
    let mut scaled_a = SMat::<M, 4>::zeroed(m);
    let mut scaled_b = SVec::<M>::zeroed(m);
    for (r, &w) in weights.iter().enumerate() {
        let s = w.sqrt();
        let (src, dst) = (&a.data[r], &mut scaled_a.data[r]);
        for c in 0..4 {
            dst[c] = src[c] * s;
        }
        scaled_b.data[r] = b.data[r] * s;
    }
    ols4_core(&scaled_a, &scaled_b)
}

/// Stack mirror of [`crate::lstsq::gls_into`] with the whitening strategy
/// for the 3-unknown shape (DLG): factors the covariance in place,
/// half-solves `A` and `b` through the factor, and runs [`ols3`] on the
/// whitened system. Bit-identical results and errors on identical inputs.
///
/// `cov` must carry `a.rows()` active rows; it is overwritten with its
/// Cholesky factor (the same in-place consumption as the heap scratch).
///
/// # Errors
///
/// Same conditions as [`crate::lstsq::gls`]
/// ([`LinalgError::NotPositiveDefinite`] when `cov` is not SPD).
// lint: no_alloc
pub fn gls3<const M: usize, const C: usize>(
    a: &SMat<M, 3>,
    b: &SVec<M>,
    cov: &mut SMat<C, C>,
) -> crate::Result<[f64; 3]> {
    check_kernel(a, b, "gls")?;
    let m = a.rows;
    if cov.rows != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, 3),
            right: (cov.rows, cov.rows),
            op: "gls covariance",
        });
    }
    cholesky_factor(cov)?;
    let mut whitened_a = *a;
    cholesky_forward_columns(cov, &mut whitened_a);
    let mut whitened_b = *b;
    cholesky_forward(cov, whitened_b.as_mut_slice());
    // The heap path re-runs ols3's input checks on the whitened system
    // (overflow during whitening surfaces as NonFinite there); keep that.
    ols3(&whitened_a, &whitened_b)
}

/// Stack mirror of [`crate::lstsq::gls_rank1_into`] for the 3-unknown
/// shape: structured GLS for a rank-one-plus-diagonal covariance
/// `M = rank1·𝟙𝟙ᵀ + diag(d)` via the Sherman–Morrison identity — `O(m)`
/// work and scratch, no covariance matrix materialized at all.
/// Bit-identical results and errors on identical inputs (the heap kernel's
/// validation sequence, accumulator statement order and Cramer tail are
/// reproduced exactly).
///
/// # Errors
///
/// Same conditions as [`crate::lstsq::gls_rank1`]
/// ([`LinalgError::NotPositiveDefinite`] on a non-positive diagonal entry
/// or a non-positive Sherman–Morrison denominator).
// lint: no_alloc
pub fn gls3_rank1<const M: usize>(
    a: &SMat<M, 3>,
    b: &SVec<M>,
    rank1: f64,
    diag: &[f64],
) -> crate::Result<[f64; 3]> {
    check_kernel(a, b, "gls_rank1")?;
    let m = a.rows;
    if diag.len() != m {
        return Err(LinalgError::ShapeMismatch {
            left: (m, 3),
            right: (diag.len(), 1),
            op: "gls_rank1 diagonal",
        });
    }
    if !rank1.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    // Positive-definiteness of M = rank1·𝟙𝟙ᵀ + D, tested exactly: D ≻ 0
    // entry by entry, then the Sherman–Morrison denominator t > 0.
    let mut inv_sum = 0.0;
    for (i, &d) in diag.iter().enumerate() {
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        inv_sum += 1.0 / d;
    }
    let t = 1.0 + rank1 * inv_sum;
    if t <= 0.0 || !t.is_finite() {
        return Err(LinalgError::NotPositiveDefinite { pivot: m - 1 });
    }
    let gamma = rank1 / t;
    // Accumulate AᵀD⁻¹A (symmetric), AᵀD⁻¹b, AᵀD⁻¹𝟙 and 𝟙ᵀD⁻¹b — the
    // same statement order as the heap kernel, so every rounding matches.
    let (mut g00, mut g01, mut g02, mut g11, mut g12, mut g22) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut c0, mut c1, mut c2) = (0.0, 0.0, 0.0);
    let (mut u0, mut u1, mut u2) = (0.0, 0.0, 0.0);
    let mut s = 0.0;
    for (r, &dv) in diag.iter().enumerate() {
        let row = &a.data[r];
        let (x, y, z) = (row[0], row[1], row[2]);
        let bv = b.data[r];
        let w = 1.0 / dv;
        g00 += x * x * w;
        g01 += x * y * w;
        g02 += x * z * w;
        g11 += y * y * w;
        g12 += y * z * w;
        g22 += z * z * w;
        c0 += x * bv * w;
        c1 += y * bv * w;
        c2 += z * bv * w;
        u0 += x * w;
        u1 += y * w;
        u2 += z * w;
        s += bv * w;
    }
    // Sherman–Morrison rank-one correction: G −= γ·uuᵀ, c −= γ·s·u.
    g00 -= gamma * u0 * u0;
    g01 -= gamma * u0 * u1;
    g02 -= gamma * u0 * u2;
    g11 -= gamma * u1 * u1;
    g12 -= gamma * u1 * u2;
    g22 -= gamma * u2 * u2;
    c0 -= gamma * s * u0;
    c1 -= gamma * s * u1;
    c2 -= gamma * s * u2;
    // On the dense path an accumulation overflow surfaces as NonFinite
    // (ols3 re-checks the whitened system); keep that error surface.
    let finite = [g00, g01, g02, g11, g12, g22, c0, c1, c2]
        .iter()
        .all(|v| v.is_finite());
    if !finite {
        return Err(LinalgError::NonFinite);
    }
    // Cramer's rule on the symmetric 3×3 system (same tail as ols3).
    let det = g00 * (g11 * g22 - g12 * g12) - g01 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * g12 - g11 * g02);
    let scale = [g00, g11, g22].into_iter().fold(0.0f64, f64::max);
    if det.abs() <= 1e-13 * scale * scale * scale.max(f64::MIN_POSITIVE) {
        return Err(LinalgError::Singular);
    }
    let x0 = (c0 * (g11 * g22 - g12 * g12) - g01 * (c1 * g22 - g12 * c2)
        + g02 * (c1 * g12 - g11 * c2))
        / det;
    let x1 = (g00 * (c1 * g22 - c2 * g12) - c0 * (g01 * g22 - g12 * g02)
        + g02 * (g01 * c2 - c1 * g02))
        / det;
    let x2 = (g00 * (g11 * c2 - g12 * c1) - g01 * (g01 * c2 - c1 * g02)
        + c0 * (g01 * g12 - g11 * g02))
        / det;
    Ok([x0, x1, x2])
}

/// Stack mirror of [`crate::Cholesky::factor_in_place`] over the active
/// `rows × rows` block: on success the lower triangle holds `L` and the
/// strict upper triangle is zeroed. Same pivot tests, same error values,
/// same operation order as the heap kernel.
///
/// # Errors
///
/// Same conditions as [`crate::Cholesky::factor_in_place`] (the
/// not-square case is impossible by construction here).
// lint: no_alloc
pub fn cholesky_factor<const N: usize>(a: &mut SMat<N, N>) -> crate::Result<()> {
    let n = a.rows;
    if n == 0 {
        return Err(LinalgError::EmptyDimension);
    }
    let finite = a.data[..n]
        .iter()
        .all(|row| row[..n].iter().all(|v| v.is_finite()));
    if !finite {
        return Err(LinalgError::NonFinite);
    }
    for j in 0..n {
        // Diagonal entry. Columns k < j of rows ≥ j already hold L.
        let mut d = a.data[j][j];
        for k in 0..j {
            let v = a.data[j][k];
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let dsqrt = d.sqrt();
        a.data[j][j] = dsqrt;
        // Below-diagonal entries of column j.
        for i in (j + 1)..n {
            let mut s = a.data[i][j];
            for k in 0..j {
                s -= a.data[i][k] * a.data[j][k];
            }
            a.data[i][j] = s / dsqrt;
        }
        // Zero the strict upper triangle of row j so the result is a
        // genuine lower-triangular factor.
        for c in (j + 1)..n {
            a.data[j][c] = 0.0;
        }
    }
    Ok(())
}

/// Stack mirror of [`crate::Cholesky::forward_substitute`]: solves
/// `L y = x` in place over the factor's active dimension. The caller
/// guarantees `x.len() == l.rows()` (enforced by construction in every
/// kernel above; debug-checked here), so the heap path's shape error
/// cannot arise.
// lint: no_alloc
pub fn cholesky_forward<const N: usize>(l: &SMat<N, N>, x: &mut [f64]) {
    let n = l.rows;
    debug_assert!(x.len() >= n, "cholesky_forward: rhs shorter than factor");
    for i in 0..n {
        let row = &l.data[i];
        let mut s = x[i];
        for (j, xv) in x[..i].iter().enumerate() {
            s -= row[j] * xv;
        }
        x[i] = s / row[i];
    }
}

/// Stack mirror of [`crate::Cholesky::back_substitute`]: solves
/// `Lᵀ x = y` in place over the factor's active dimension. Shape
/// preconditions as for [`cholesky_forward`].
// lint: no_alloc
pub fn cholesky_back<const N: usize>(l: &SMat<N, N>, x: &mut [f64]) {
    let n = l.rows;
    debug_assert!(x.len() >= n, "cholesky_back: rhs shorter than factor");
    for i in (0..n).rev() {
        let mut s = x[i];
        for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
            s -= l.data[j][i] * xj;
        }
        x[i] = s / l.data[i][i];
    }
}

/// Stack mirror of [`crate::Cholesky::forward_substitute_matrix`]: the
/// whitening transform `X ← L⁻¹X` across every column of `x`. The caller
/// guarantees `x.rows() == l.rows()` (debug-checked).
// lint: no_alloc
pub fn cholesky_forward_columns<const C: usize, const M: usize, const N: usize>(
    l: &SMat<C, C>,
    x: &mut SMat<M, N>,
) {
    let n = l.rows;
    debug_assert!(x.rows == n, "cholesky_forward_columns: row mismatch");
    for i in 0..n {
        for j in 0..i {
            let lij = l.data[i][j];
            for c in 0..N {
                let v = x.data[j][c];
                x.data[i][c] -= lij * v;
            }
        }
        let d = l.data[i][i];
        for c in 0..N {
            x.data[i][c] /= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smat3(rows: &[[f64; 3]]) -> SMat<STACK_M_CAP, 3> {
        let mut a = SMat::zeroed(rows.len());
        for (r, row) in rows.iter().enumerate() {
            a.row_mut(r).copy_from_slice(row);
        }
        a
    }

    fn svec(vals: &[f64]) -> SVec<STACK_M_CAP> {
        let mut v = SVec::zeroed(vals.len());
        v.as_mut_slice().copy_from_slice(vals);
        v
    }

    #[test]
    fn accessors_and_capacity() {
        let a = SMat::<8, 3>::zeroed(5);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.active_rows().len(), 5);
        let v = SVec::<8>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice().len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_overflow_panics() {
        let _ = SMat::<4, 3>::zeroed(5);
    }

    #[test]
    fn ols3_solves_exact_system() {
        // x = (1, -2, 3) through an overdetermined consistent system.
        let rows = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        let truth = [1.0, -2.0, 3.0];
        let b: Vec<f64> = rows
            .iter()
            .map(|r| r[0] * truth[0] + r[1] * truth[1] + r[2] * truth[2])
            .collect();
        let x = ols3(&smat3(&rows), &svec(&b)).unwrap();
        for (got, want) in x.iter().zip(truth) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn ols4_solves_exact_system() {
        let mut a = SMat::<STACK_M_CAP, 4>::zeroed(5);
        let truth = [2.0, -1.0, 0.5, 4.0];
        let mut b = SVec::<STACK_M_CAP>::zeroed(5);
        let rows = [
            [1.0, 0.0, 0.0, 1.0],
            [0.0, 1.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 1.0],
            [1.0, 1.0, 0.0, 1.0],
            [1.0, 0.0, 1.0, 1.0],
        ];
        for (r, row) in rows.iter().enumerate() {
            a.row_mut(r).copy_from_slice(row);
            b.as_mut_slice()[r] = row.iter().zip(truth).map(|(c, t)| c * t).sum();
        }
        let x = ols4(&a, &b).unwrap();
        for (got, want) in x.iter().zip(truth) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn error_paths_match_heap_semantics() {
        // Underdetermined.
        let a = smat3(&[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]);
        let b = svec(&[1.0, 2.0]);
        assert_eq!(
            ols3(&a, &b).unwrap_err(),
            LinalgError::Underdetermined { rows: 2, cols: 3 }
        );
        // Length mismatch.
        let a = smat3(&[[1.0; 3]; 4]);
        assert!(matches!(
            ols3(&a, &svec(&[1.0; 3])).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        // Non-finite.
        let mut a = smat3(&[[1.0; 3]; 4]);
        a.row_mut(2)[1] = f64::NAN;
        assert_eq!(
            ols3(&a, &svec(&[1.0; 4])).unwrap_err(),
            LinalgError::NonFinite
        );
        // Singular geometry.
        let a = smat3(&[[1.0, 0.0, 0.0]; 4]);
        assert_eq!(
            ols3(&a, &svec(&[1.0; 4])).unwrap_err(),
            LinalgError::Singular
        );
        // Bad weights.
        let mut a4 = SMat::<STACK_M_CAP, 4>::zeroed(4);
        for r in 0..4 {
            a4.row_mut(r)[r] = 1.0;
        }
        let b4 = SVec::<STACK_M_CAP>::zeroed(4);
        assert_eq!(
            wls4(&a4, &b4, &[1.0, -1.0, 1.0, 1.0]).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 0 }
        );
        assert!(matches!(
            wls4(&a4, &b4, &[1.0; 3]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn gls3_identity_covariance_matches_ols3() {
        let rows = [
            [2.0, 1.0, 0.5],
            [0.3, 1.5, -0.2],
            [-1.0, 0.4, 2.0],
            [0.8, -0.6, 1.1],
        ];
        let b = [1.0, -2.0, 0.5, 3.0];
        let a = smat3(&rows);
        let bv = svec(&b);
        let mut cov = SMat::<STACK_M_CAP, STACK_M_CAP>::zeroed(4);
        for r in 0..4 {
            cov.row_mut(r)[r] = 1.0;
        }
        let via_gls = gls3(&a, &bv, &mut cov).unwrap();
        let via_ols = ols3(&a, &bv).unwrap();
        for (g, o) in via_gls.iter().zip(via_ols) {
            assert!((g - o).abs() < 1e-12);
        }
    }

    #[test]
    fn gls3_rank1_zero_rank1_unit_diag_matches_ols3() {
        let rows = [
            [2.0, 1.0, 0.5],
            [0.3, 1.5, -0.2],
            [-1.0, 0.4, 2.0],
            [0.8, -0.6, 1.1],
        ];
        let b = [1.0, -2.0, 0.5, 3.0];
        let a = smat3(&rows);
        let bv = svec(&b);
        let via_rank1 = gls3_rank1(&a, &bv, 0.0, &[1.0; 4]).unwrap();
        let via_ols = ols3(&a, &bv).unwrap();
        for (g, o) in via_rank1.iter().zip(via_ols) {
            assert_eq!(g.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn gls3_rank1_matches_dense_gls3() {
        let rows = [
            [2.0, 1.0, 0.5],
            [0.3, 1.5, -0.2],
            [-1.0, 0.4, 2.0],
            [0.8, -0.6, 1.1],
            [0.2, 2.2, 0.9],
        ];
        let b = [1.0, -2.0, 0.5, 3.0, -0.7];
        let diag = [1.0, 2.0, 0.5, 1.5, 3.0];
        let rank1 = 0.8;
        let a = smat3(&rows);
        let bv = svec(&b);
        let mut cov = SMat::<STACK_M_CAP, STACK_M_CAP>::zeroed(5);
        for (r, &d) in diag.iter().enumerate() {
            for c in 0..5 {
                cov.row_mut(r)[c] = rank1 + if r == c { d } else { 0.0 };
            }
        }
        let dense = gls3(&a, &bv, &mut cov).unwrap();
        let fast = gls3_rank1(&a, &bv, rank1, &diag).unwrap();
        for (d, f) in dense.iter().zip(fast) {
            assert!((d - f).abs() < 1e-12, "dense {d} vs structured {f}");
        }
    }

    #[test]
    fn gls3_rank1_rejects_degenerate_covariance() {
        let a = smat3(&[
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
        ]);
        let b = svec(&[1.0; 4]);
        assert_eq!(
            gls3_rank1(&a, &b, 1.0, &[1.0, -1.0, 1.0, 1.0]).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 1 }
        );
        assert_eq!(
            gls3_rank1(&a, &b, -0.5, &[1.0; 4]).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 3 }
        );
        assert!(matches!(
            gls3_rank1(&a, &b, 1.0, &[1.0; 3]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        assert_eq!(
            gls3_rank1(&a, &b, f64::INFINITY, &[1.0; 4]).unwrap_err(),
            LinalgError::NonFinite
        );
    }

    #[test]
    fn cholesky_factor_rejects_bad_input() {
        assert_eq!(
            cholesky_factor(&mut SMat::<4, 4>::zeroed(0)).unwrap_err(),
            LinalgError::EmptyDimension
        );
        let mut indefinite = SMat::<4, 4>::zeroed(2);
        indefinite.row_mut(0).copy_from_slice(&[1.0, 2.0, 0.0, 0.0]);
        indefinite.row_mut(1).copy_from_slice(&[2.0, 1.0, 0.0, 0.0]);
        assert!(matches!(
            cholesky_factor(&mut indefinite).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
        let mut nan = SMat::<4, 4>::zeroed(1);
        nan.row_mut(0)[0] = f64::NAN;
        assert_eq!(
            cholesky_factor(&mut nan).unwrap_err(),
            LinalgError::NonFinite
        );
    }
}
